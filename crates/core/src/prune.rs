//! Buffer pruning (paper §III-A2, Fig. 4).
//!
//! After the first sampling pass, buffers that were adjusted at most
//! `low` times *and* have no critical neighbour (a FF adjusted at least
//! `critical` times) are removed.  The paper uses `low = 1`, `critical = 5`
//! at 10 000 samples; thresholds scale linearly with the sample count when
//! [`PruneConfig::reference_samples`] is set.

use crate::solve::BufferSpace;
use psbi_timing::SequentialGraph;
use serde::{Deserialize, Serialize};

/// Pruning thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneConfig {
    /// Remove buffers with at most this many tunings…
    pub low: u64,
    /// …unless a neighbour has at least this many tunings.
    pub critical: u64,
    /// Sample count the thresholds are calibrated for (paper: 10 000).
    /// When `Some`, thresholds are scaled by `samples / reference`.
    pub reference_samples: Option<u64>,
}

impl Default for PruneConfig {
    fn default() -> Self {
        Self {
            low: 1,
            critical: 5,
            reference_samples: Some(10_000),
        }
    }
}

impl PruneConfig {
    /// Thresholds effective at `samples` Monte-Carlo samples.
    pub fn effective(&self, samples: u64) -> (u64, u64) {
        match self.reference_samples {
            Some(reference) if reference > 0 => {
                let scale = samples as f64 / reference as f64;
                let low = ((self.low as f64 * scale).round() as u64).max(1);
                let critical = ((self.critical as f64 * scale).round() as u64).max(2);
                (low, critical)
            }
            _ => (self.low, self.critical),
        }
    }
}

/// What pruning did.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneReport {
    /// FFs whose buffers were removed.
    pub removed: Vec<usize>,
    /// Buffers remaining after pruning.
    pub kept: usize,
    /// Effective `low` threshold used.
    pub low: u64,
    /// Effective `critical` threshold used.
    pub critical: u64,
}

/// Prunes rarely-used buffers in place.
///
/// `counts[i]` is the number of samples in which FF `i`'s buffer was
/// adjusted during the first pass.
///
/// # Panics
///
/// Panics if `counts` is not one entry per FF.
pub fn prune(
    sg: &SequentialGraph,
    counts: &[u64],
    space: &mut BufferSpace,
    cfg: &PruneConfig,
    samples: u64,
) -> PruneReport {
    assert_eq!(counts.len(), sg.n_ffs, "one count per FF");
    let (low, critical) = cfg.effective(samples);
    let mut removed = Vec::new();
    for i in 0..sg.n_ffs {
        if !space.has_buffer[i] {
            continue;
        }
        if counts[i] > low {
            continue;
        }
        let near_critical = sg.neighbors(i).any(|j| counts[j] >= critical);
        if !near_critical {
            removed.push(i);
        }
    }
    for &i in &removed {
        space.has_buffer[i] = false;
    }
    PruneReport {
        kept: space.num_buffers(),
        removed,
        low,
        critical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbi_timing::seq::SeqEdge;
    use psbi_variation::CanonicalForm;

    fn chain_graph(n: usize) -> SequentialGraph {
        let edges = (0..n - 1)
            .map(|i| SeqEdge {
                from: i as u32,
                to: (i + 1) as u32,
                max_delay: CanonicalForm::constant(1.0),
                min_delay: CanonicalForm::constant(1.0),
            })
            .collect();
        SequentialGraph::from_parts(
            n,
            edges,
            vec![CanonicalForm::constant(1.0); n],
            vec![CanonicalForm::constant(1.0); n],
        )
    }

    #[test]
    fn fig4_example() {
        // Counts mirroring Fig. 4: a node with count 1 whose neighbours are
        // not critical is pruned; one adjacent to a critical node stays.
        let sg = chain_graph(5);
        // 20 - 5 - 1 - 1 - 1 : the "1" next to "5" (critical) is kept,
        // the middle and last "1"s… middle one neighbours a kept-1 (not
        // critical) and last-1 → pruned; last-1 neighbours middle-1 → pruned.
        let counts = [20, 5, 1, 1, 1];
        let mut space = BufferSpace::floating(5, 20);
        let report = prune(&sg, &counts, &mut space, &PruneConfig::default(), 10_000);
        assert!(space.has_buffer[0]);
        assert!(space.has_buffer[1]);
        assert!(space.has_buffer[2], "adjacent to critical node 1");
        assert!(!space.has_buffer[3]);
        assert!(!space.has_buffer[4]);
        assert_eq!(report.kept, 3);
        assert_eq!(report.removed, vec![3, 4]);
    }

    #[test]
    fn zero_count_always_pruned_without_critical_neighbour() {
        let sg = chain_graph(3);
        let counts = [0, 0, 0];
        let mut space = BufferSpace::floating(3, 20);
        let report = prune(&sg, &counts, &mut space, &PruneConfig::default(), 10_000);
        assert_eq!(report.kept, 0);
    }

    #[test]
    fn heavily_used_buffers_survive() {
        let sg = chain_graph(3);
        let counts = [100, 200, 300];
        let mut space = BufferSpace::floating(3, 20);
        let report = prune(&sg, &counts, &mut space, &PruneConfig::default(), 10_000);
        assert_eq!(report.kept, 3);
        assert!(report.removed.is_empty());
    }

    #[test]
    fn thresholds_scale_with_samples() {
        let cfg = PruneConfig::default();
        assert_eq!(cfg.effective(10_000), (1, 5));
        // At 1 000 samples the critical threshold shrinks but stays >= 2.
        let (low, critical) = cfg.effective(1_000);
        assert_eq!(low, 1);
        assert_eq!(critical, 2);
        // At 100 000 samples thresholds grow.
        assert_eq!(cfg.effective(100_000), (10, 50));
        // Disabled scaling keeps raw values.
        let raw = PruneConfig {
            reference_samples: None,
            ..cfg
        };
        assert_eq!(raw.effective(123), (1, 5));
    }

    #[test]
    fn already_pruned_buffers_are_ignored() {
        let sg = chain_graph(3);
        let counts = [0, 50, 0];
        let mut space = BufferSpace::floating(3, 20);
        space.has_buffer[0] = false;
        let report = prune(&sg, &counts, &mut space, &PruneConfig::default(), 10_000);
        // FF0 was already gone; FF2 survives thanks to critical FF1.
        assert!(!report.removed.contains(&0));
        assert!(space.has_buffer[2]);
        assert_eq!(report.kept, 2);
    }
}
