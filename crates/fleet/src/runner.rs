//! The sharded campaign executor.
//!
//! Jobs are claimed work-stealing style — a shared atomic cursor over the
//! grid, idle workers taking the next unclaimed index — exactly the
//! fixed-chunk discipline `psbi_core::flow` uses for sample chunks, lifted
//! one level up.  Determinism comes from three ingredients:
//!
//! 1. every job's result is a pure function of (spec, job index) — the
//!    flow is bit-reproducible for any thread count, and job `i` always
//!    names the same (circuit, sigma factor) cell;
//! 2. completed records pass through a reorder buffer and are committed to
//!    the journal **in job-index order**, so the journal's bytes never
//!    depend on completion order;
//! 3. wall-clock times stay out of the journal (they live in
//!    [`CampaignOutcome`]).
//!
//! Together: a campaign's journal and canonical report are byte-identical
//! for any worker count, and a mid-campaign kill + resume reproduces the
//! uninterrupted run exactly (pinned by `tests/fleet_determinism.rs`).
//!
//! Circuits of one campaign share a single
//! [`psbi_core::flow::WorkspacePool`], and one flow per circuit serves the
//! whole sigma sweep (calibration cached, timing graph built once).

use crate::error::FleetError;
use crate::journal::{JobRecord, Journal};
use crate::spec::{CampaignSpec, JobSpec};
use psbi_core::flow::{BufferInsertionFlow, InsertionResult, TargetPeriod, WorkspacePool};
use psbi_netlist::Circuit;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Execution knobs for one `run_campaign` invocation.
///
/// These are *runtime* knobs: none of them participates in the spec
/// fingerprint, because none of them may change a result.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Concurrent jobs (0 = all cores).  Total parallelism is
    /// `workers × threads_per_job`.
    pub workers: usize,
    /// Stop after this many *newly executed* jobs (checkpoint test hook
    /// and incremental-run knob); `None` runs to completion.
    pub max_jobs: Option<usize>,
    /// Print per-job progress lines to stderr, plus a periodic summary
    /// line (jobs done / total, quarantines, elapsed, ETA) driven by the
    /// `psbi_obs` metrics registry — the runner arms a path-less registry
    /// if one is not armed already.
    pub progress: bool,
    /// Arm span tracing for this campaign with the given flush
    /// destination (Chrome trace-event JSON — load in Perfetto).
    /// Equivalent to setting `PSBI_TRACE=<path>`; the trace covers
    /// sampling batches, flow passes, solver stages and the fleet job
    /// lifecycle.  Canonical outputs are byte-identical with tracing on
    /// or off (`tests/obs.rs` pins this).
    pub trace: Option<PathBuf>,
    /// Carry incremental solver state across the passes of each job and
    /// across adjacent sweep targets of one circuit (see
    /// `psbi_core::solve`).  Results are bit-identical either way — this
    /// is a performance knob, which is why it lives here and not in the
    /// fingerprinted [`CampaignSpec`].  `PSBI_NO_INCREMENTAL=1` overrides
    /// it process-wide.
    pub incremental: bool,
    /// Dedup identical region subproblems across chips — and, because
    /// the memo table is shared per circuit, across the concurrently
    /// running sweep targets of one circuit's job group (see
    /// `psbi_core::solve::RegionMemo`).  A memo hit is a verified replay
    /// of a pure function, so results are bit-identical either way;
    /// `PSBI_NO_CROSSCHIP=1` overrides it process-wide.
    pub cross_chip: bool,
    /// Fan each chip's independent region searches out on the flow's
    /// region pool (see `psbi_core::solve::SolveRequest::pool`).  Region
    /// results commit in pinned region order, so results are
    /// bit-identical either way; `PSBI_NO_REGION_PARALLEL=1` overrides
    /// it process-wide.
    pub region_parallel: bool,
    /// Prune the per-region support search (dominance, symmetry classes,
    /// bitset covering and cascade bounds — see
    /// `psbi_core::solve::SolveRequest::search_prune`).  The shipped
    /// workloads are bit-identical either way, so this is a performance
    /// knob outside the fingerprinted [`CampaignSpec`];
    /// `PSBI_NO_SEARCH_PRUNE=1` overrides it process-wide.
    pub search_prune: bool,
    /// How many times a panicking job is re-executed before it is
    /// quarantined.  Retries are deterministic: job `i` always re-runs
    /// the same pure function, so a retry either reproduces the panic
    /// (systematic fault → quarantine) or the first panic was transient
    /// injection and the retry's result is the canonical one.
    pub retries: usize,
    /// Run the independent result verifier on every job
    /// (`FlowConfig::verify`).  Canonical outputs are untouched; a
    /// failed verification surfaces as [`FleetError::Verify`] *after*
    /// the campaign completes and every record is journaled.
    pub verify: bool,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            workers: 0,
            max_jobs: None,
            progress: false,
            trace: None,
            incremental: true,
            cross_chip: true,
            region_parallel: true,
            search_prune: true,
            retries: 2,
            verify: false,
        }
    }
}

/// What one `run_campaign` invocation produced.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Committed records, in job order (resumed prefix + newly executed).
    pub records: Vec<JobRecord>,
    /// Jobs replayed from the journal instead of executed.
    pub resumed_jobs: usize,
    /// Jobs executed by this invocation.
    pub executed_jobs: usize,
    /// Grid size.
    pub total_jobs: usize,
    /// Per-job wall time in seconds; `None` for jobs that were resumed
    /// from the journal (or not yet run).  Indexed by job.
    pub job_wall_s: Vec<Option<f64>>,
    /// Per-job incremental-cache counters; `None` for resumed jobs.
    /// Non-canonical, like [`CampaignOutcome::job_wall_s`]: the counters
    /// depend on which targets warmed a flow's state arena first, which
    /// races with worker scheduling — results never do.
    ///
    /// Jobs **resumed from the journal are `None` by design**: the
    /// journal carries only the canonical byte surface, and these
    /// counters are quarantined from it (they differ between cache
    /// modes while the results do not), so an interrupted-and-resumed
    /// campaign cannot recover the diagnostics of jobs a previous
    /// process executed.  Aggregations label themselves "executed jobs"
    /// accordingly (`resumed_diagnostics_quarantined` in the runner
    /// tests pins this contract).
    pub job_diagnostics: Vec<Option<psbi_core::flow::FlowDiagnostics>>,
    /// Peak chip-state slots resident in the shared workspace pool over
    /// this invocation.  With per-circuit reclamation (arenas and the
    /// cross-chip memo are freed when a circuit's last sweep target
    /// commits) this is capped at the concurrently active circuits
    /// instead of the whole campaign.  Non-canonical.
    pub peak_resident_states: u64,
    /// Chip-state slots still resident when this invocation returned
    /// (0 once every circuit's job group completed).  Non-canonical.
    pub final_resident_states: u64,
    /// Wall time of this invocation.
    pub wall_s: f64,
}

impl CampaignOutcome {
    /// Whether every grid cell has a record.
    pub fn complete(&self) -> bool {
        self.records.len() == self.total_jobs
    }
}

/// In-order commit state: the reorder buffer between racing workers and
/// the append-only journal.
struct CommitState {
    journal: Journal,
    /// Next job index to commit.
    next: usize,
    /// Completed jobs waiting for their predecessors (`None` diagnostics
    /// for quarantined jobs — they produced no result).
    parked: BTreeMap<usize, (JobRecord, f64, Option<psbi_core::flow::FlowDiagnostics>)>,
    records: Vec<JobRecord>,
    job_wall_s: Vec<Option<f64>>,
    job_diagnostics: Vec<Option<psbi_core::flow::FlowDiagnostics>>,
    /// Per-job verifier failures, accumulated in commit (= job) order.
    verify_failures: Vec<(usize, String)>,
    error: Option<FleetError>,
}

impl CommitState {
    /// Commits every parked record that has become next-in-line.
    fn drain(&mut self) -> Result<(), FleetError> {
        while let Some((record, wall, diag)) = self.parked.remove(&self.next) {
            let _span = psbi_obs::Span::enter_with("fleet.commit", &[("job", self.next as u64)]);
            if psbi_fault::failpoint!("fleet.commit.before_write", "job" = self.next) {
                // Simulate a crash in the window between claiming the
                // commit slot and writing the record: the journal keeps
                // its valid prefix and resume re-executes this job.
                panic!("injected fault: fleet.commit.before_write");
            }
            self.journal.append(&record)?;
            if let Some(report) = diag.as_ref().and_then(|d| d.verify.as_ref()) {
                if !report.passed {
                    self.verify_failures.push((self.next, report.to_string()));
                }
            }
            self.records.push(record);
            self.job_wall_s[self.next] = Some(wall);
            self.job_diagnostics[self.next] = diag;
            psbi_obs::metrics::counter_add("fleet.jobs.committed", 1);
            self.next += 1;
        }
        Ok(())
    }
}

/// Locks the commit state, recovering from poisoning: the state is a
/// reorder buffer of already-complete values, so a panic while a worker
/// held the lock (e.g. an injected commit fault) leaves it fully
/// consistent — the remaining workers may keep committing.
fn lock_commit<'a>(state: &'a Mutex<CommitState>) -> MutexGuard<'a, CommitState> {
    state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort human-readable panic payload (deterministic for string
/// panics, which is all the fault harness and the flow ever raise).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one job under `catch_unwind` with a bounded retry budget.
///
/// `Ok` is the job's (bit-deterministic) result; `Err` carries the final
/// panic message after the budget is exhausted — the caller quarantines.
/// Unwinding cannot corrupt the flow: workspaces checked out when a
/// panic strikes are simply not returned to the pool, shared mutexes
/// recover from poisoning, and every retry recomputes from the same
/// deterministic inputs.
pub(crate) fn execute_job(
    flow: &BufferInsertionFlow,
    job: &JobSpec,
    retries: usize,
) -> Result<InsertionResult, String> {
    let mut fault = String::new();
    for attempt in 0..=retries {
        let _span = psbi_obs::Span::enter_with(
            "fleet.job.attempt",
            &[("job", job.index as u64), ("attempt", attempt as u64)],
        );
        psbi_obs::metrics::counter_add("fleet.job.attempts", 1);
        if attempt > 0 {
            psbi_obs::metrics::counter_add("fleet.jobs.retried", 1);
        }
        match catch_unwind(AssertUnwindSafe(|| {
            if psbi_fault::failpoint!("fleet.job.panic", "job" = job.index) {
                panic!("injected fault: fleet.job.panic");
            }
            flow.run_target(TargetPeriod::SigmaFactor(job.sigma_factor))
        })) {
            Ok(result) => return Ok(result),
            Err(payload) => fault = panic_message(payload),
        }
    }
    Err(fault)
}

/// Runs a batch of grid jobs sequentially, quarantining past the retry
/// budget, handing each finished [`JobRecord`] to `emit` — the shared
/// execution core of the dispatch worker and the dispatcher's inline
/// fallback, which differ only in where records go (the wire vs the
/// journal).  Jobs are grouped by circuit; each needed circuit is
/// materialised once, served by one flow over the shared `pool`, and its
/// solver state is released when its last batch job finishes.  `emit`'s
/// second argument is the independent verifier's failure report when
/// `verify` is set and the re-check failed (non-canonical — it never
/// reaches the journal); `emit` returning `Ok(false)` stops the batch
/// early (lease expired, connection lost) — remaining jobs are simply
/// not run.
///
/// # Errors
///
/// Circuit materialisation / flow construction failures, and whatever
/// `emit` raises.
pub(crate) fn execute_batch(
    spec: &CampaignSpec,
    jobs: &[JobSpec],
    pool: &Arc<WorkspacePool>,
    retries: usize,
    verify: bool,
    emit: &mut dyn FnMut(JobRecord, Option<String>) -> Result<bool, FleetError>,
) -> Result<(), FleetError> {
    let mut by_circuit: BTreeMap<usize, Vec<&JobSpec>> = BTreeMap::new();
    for job in jobs {
        by_circuit.entry(job.circuit_index).or_default().push(job);
    }
    let mut cfg = spec.flow_config();
    cfg.verify = verify;
    for jobs in by_circuit.into_values() {
        let circuit = jobs[0].circuit.materialize().map_err(FleetError::Circuit)?;
        let flow = BufferInsertionFlow::builder(&circuit, cfg.clone())
            .pool(Arc::clone(pool))
            .build()
            .map_err(|e| FleetError::Circuit(format!("{}: {e}", circuit.name)))?;
        let mut stop = false;
        for job in jobs {
            let _job_span = psbi_obs::Span::enter_with("fleet.job", &[("job", job.index as u64)]);
            let executed = {
                let _timer = psbi_obs::metrics::timer("fleet.job.wall");
                execute_job(&flow, job, retries)
            };
            let (record, verify_failed) = match executed {
                Ok(result) => {
                    let verify_failed = result
                        .diagnostics
                        .verify
                        .as_ref()
                        .filter(|report| !report.passed)
                        .map(ToString::to_string);
                    (JobRecord::from_result(job, &result), verify_failed)
                }
                Err(fault) => {
                    psbi_obs::metrics::counter_add("fleet.jobs.quarantined", 1);
                    (JobRecord::quarantined(job, fault), None)
                }
            };
            psbi_obs::metrics::counter_add("fleet.jobs.executed", 1);
            if !emit(record, verify_failed)? {
                stop = true;
                break;
            }
        }
        flow.release_solver_state();
        if stop {
            break;
        }
    }
    Ok(())
}

/// RAII flush of both obs sinks when `run_campaign` returns (any path):
/// rewrites the trace file and the metrics snapshot if their subsystems
/// are armed, warning on stderr instead of failing the campaign — the
/// canonical journal is already safely on disk by then.
struct FlushObs;

impl Drop for FlushObs {
    fn drop(&mut self) {
        if let Err(e) = psbi_obs::trace::flush() {
            eprintln!("psbi-fleet: warning: trace flush failed: {e}");
        }
        if let Err(e) = psbi_obs::metrics::flush() {
            eprintln!("psbi-fleet: warning: metrics flush failed: {e}");
        }
    }
}

/// Runs (or resumes) `spec` against the journal at `journal_path`.
///
/// Completed jobs found in the journal are never re-executed; the rest are
/// sharded over the worker pool.  See the module docs for the determinism
/// contract.
///
/// # Errors
///
/// Spec validation, circuit materialisation / flow construction failures,
/// journal mismatches and IO errors.
pub fn run_campaign(
    spec: &CampaignSpec,
    journal_path: &std::path::Path,
    opts: &FleetOptions,
) -> Result<CampaignOutcome, FleetError> {
    let t_start = Instant::now();
    if let Some(path) = &opts.trace {
        psbi_obs::trace::arm(path.clone());
    }
    if opts.progress && !psbi_obs::metrics::enabled() {
        // The periodic progress line reads the metrics registry; arm a
        // path-less one (in-process only, nothing written at flush) when
        // the environment has not armed one already.
        psbi_obs::metrics::arm(None);
    }
    let _flush_obs = FlushObs;
    spec.validate()?;
    let jobs = spec.jobs();
    let total = jobs.len();
    let _campaign_span = psbi_obs::Span::enter_with("fleet.campaign", &[("jobs", total as u64)]);
    psbi_obs::metrics::gauge_set("fleet.jobs.total", total as u64);

    let (journal, existing) = Journal::open(journal_path, spec)?;
    let resumed = existing.len();
    // `Journal::open` refuses (FleetError::Corrupt) any journal holding
    // more records than the spec's grid, so `resumed <= total` here; the
    // guard stays as a cheap backstop against future replay changes.
    if resumed > total {
        return Err(FleetError::Corrupt {
            record: total,
            detail: format!("journal holds {resumed} records but the grid has {total} jobs"),
        });
    }
    let end = match opts.max_jobs {
        Some(k) => total.min(resumed + k),
        None => total,
    };
    psbi_obs::metrics::counter_add("fleet.jobs.resumed", resumed as u64);

    let job_wall_s = vec![None; total];
    let job_diagnostics = vec![None; total];
    if resumed >= end {
        return Ok(CampaignOutcome {
            records: existing,
            resumed_jobs: resumed,
            executed_jobs: 0,
            total_jobs: total,
            job_wall_s,
            job_diagnostics,
            peak_resident_states: 0,
            final_resident_states: 0,
            wall_s: t_start.elapsed().as_secs_f64(),
        });
    }

    // Materialise each needed circuit once and build one flow per circuit
    // (timing graph + canonical sampler built once; µT/σT calibration is
    // computed on first use and cached for the rest of the sigma sweep).
    // Every flow checks worker scratch out of one shared pool.
    let mut needed = vec![false; spec.circuits.len()];
    for job in &jobs[resumed..end] {
        needed[job.circuit_index] = true;
    }
    let circuits: Vec<Option<Circuit>> = spec
        .circuits
        .iter()
        .zip(&needed)
        .map(|(c, need)| {
            need.then(|| c.materialize())
                .transpose()
                .map_err(FleetError::Circuit)
        })
        .collect::<Result<_, _>>()?;
    let pool = Arc::new(WorkspacePool::new());
    let mut cfg = spec.flow_config();
    cfg.incremental = opts.incremental;
    cfg.cross_chip = opts.cross_chip;
    cfg.region_parallel = opts.region_parallel;
    cfg.search_prune = opts.search_prune;
    cfg.verify = opts.verify;
    let flows: Vec<Option<BufferInsertionFlow>> = circuits
        .iter()
        .map(|c| {
            c.as_ref()
                .map(|circuit| {
                    BufferInsertionFlow::builder(circuit, cfg.clone())
                        .pool(Arc::clone(&pool))
                        .build()
                        .map_err(|e| FleetError::Circuit(format!("{}: {e}", circuit.name)))
                })
                .transpose()
        })
        .collect::<Result<_, _>>()?;

    // Pending jobs per circuit in this invocation's window: the worker
    // finishing a circuit's last job releases that flow's solver state
    // (per-chip arenas + cross-chip memo) from the shared pool, capping
    // campaign peak memory at the circuits still in flight.
    let mut circuit_pending: Vec<usize> = vec![0; spec.circuits.len()];
    for job in &jobs[resumed..end] {
        circuit_pending[job.circuit_index] += 1;
    }
    let circuit_pending: Vec<AtomicUsize> =
        circuit_pending.into_iter().map(AtomicUsize::new).collect();

    let pending = end - resumed;
    let workers = match opts.workers {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
    .min(pending)
    .max(1);

    let state = Mutex::new(CommitState {
        journal,
        next: resumed,
        parked: BTreeMap::new(),
        records: existing,
        job_wall_s,
        job_diagnostics,
        verify_failures: Vec::new(),
        error: None,
    });
    let cursor = AtomicUsize::new(resumed);
    let failed = AtomicBool::new(false);
    // Stop signal for the periodic progress reporter (set once every
    // worker has been joined, so the final line reflects the last job).
    let progress_done = AtomicBool::new(false);
    // Registry baselines: the counters are process-cumulative, so a
    // second campaign in one process must report its own deltas.
    let committed0 = psbi_obs::metrics::counter_value("fleet.jobs.committed");
    let quarantined0 = psbi_obs::metrics::counter_value("fleet.jobs.quarantined");

    // The scope itself runs under `catch_unwind`: a panic that escapes a
    // worker thread (possible only *outside* the per-job retry harness,
    // e.g. an injected commit fault) must not abort the process — the
    // journal's valid prefix is on disk and resume recovers it.  Workers
    // are joined explicitly so the progress reporter can be told to stop
    // before the scope would otherwise wait on it; a worker panic is
    // re-raised after that signal, preserving the pre-reporter contract.
    let scope_panic = catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                handles.push(scope.spawn(|| loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let j = cursor.fetch_add(1, Ordering::Relaxed);
                    if j >= end {
                        break;
                    }
                    let job = &jobs[j];
                    let Some(flow) = flows[job.circuit_index].as_ref() else {
                        let mut st = lock_commit(&state);
                        st.error.get_or_insert(FleetError::Circuit(format!(
                            "internal: no flow was built for circuit index {}",
                            job.circuit_index
                        )));
                        failed.store(true, Ordering::Relaxed);
                        break;
                    };
                    let _job_span = psbi_obs::Span::enter_with("fleet.job", &[("job", j as u64)]);
                    let t_job = Instant::now();
                    let executed = {
                        let _timer = psbi_obs::metrics::timer("fleet.job.wall");
                        execute_job(flow, job, opts.retries)
                    };
                    let wall = t_job.elapsed().as_secs_f64();
                    psbi_obs::metrics::counter_add("fleet.jobs.executed", 1);
                    // Last pending job of this circuit: reclaim the flow's
                    // warm solver state.  Every `run_target` of the circuit
                    // has returned by the time the counter hits zero, so the
                    // release cannot race a park.  Purely a memory knob —
                    // a resumed invocation simply starts this circuit cold.
                    if circuit_pending[job.circuit_index].fetch_sub(1, Ordering::Relaxed) == 1 {
                        flow.release_solver_state();
                    }
                    let (record, diag) = match executed {
                        Ok(result) => {
                            let record = JobRecord::from_result(job, &result);
                            (record, Some(result.diagnostics))
                        }
                        Err(fault) => {
                            psbi_obs::metrics::counter_add("fleet.jobs.quarantined", 1);
                            (JobRecord::quarantined(job, fault), None)
                        }
                    };
                    if opts.progress {
                        if record.quarantined {
                            eprintln!(
                                "psbi-fleet: job {}/{} {} k={} QUARANTINED after {} attempts: {}",
                                j + 1,
                                total,
                                record.circuit_id,
                                record.sigma_factor,
                                opts.retries + 1,
                                record.fault
                            );
                        } else {
                            eprintln!(
                                "psbi-fleet: job {}/{} {} k={} Y {:.2}% -> {:.2}% ({} buffers, {:.2}s)",
                                j + 1,
                                total,
                                record.circuit_id,
                                record.sigma_factor,
                                record.yield_baseline,
                                record.yield_with_buffers,
                                record.nb,
                                wall
                            );
                        }
                    }
                    let mut st = lock_commit(&state);
                    st.parked.insert(j, (record, wall, diag));
                    if let Err(e) = st.drain() {
                        st.error.get_or_insert(e);
                        failed.store(true, Ordering::Relaxed);
                        break;
                    }
                }));
            }
            if opts.progress {
                scope.spawn(|| {
                    let mut last = Instant::now();
                    while !progress_done.load(Ordering::Relaxed) {
                        std::thread::sleep(std::time::Duration::from_millis(100));
                        if last.elapsed().as_secs_f64() < 2.0 {
                            continue;
                        }
                        last = Instant::now();
                        let committed = psbi_obs::metrics::counter_value("fleet.jobs.committed")
                            .saturating_sub(committed0);
                        let quarantined =
                            psbi_obs::metrics::counter_value("fleet.jobs.quarantined")
                                .saturating_sub(quarantined0);
                        let done = resumed + committed as usize;
                        let elapsed = t_start.elapsed().as_secs_f64();
                        if committed > 0 && done < end {
                            let eta = (end - done) as f64 * elapsed / committed as f64;
                            eprintln!(
                                "psbi-fleet: progress {done}/{total} jobs committed \
                                 ({quarantined} quarantined), {elapsed:.1}s elapsed, \
                                 ETA {eta:.0}s"
                            );
                        } else {
                            eprintln!(
                                "psbi-fleet: progress {done}/{total} jobs committed \
                                 ({quarantined} quarantined), {elapsed:.1}s elapsed"
                            );
                        }
                    }
                });
            }
            let mut worker_panic = None;
            for handle in handles {
                if let Err(payload) = handle.join() {
                    worker_panic.get_or_insert(payload);
                }
            }
            progress_done.store(true, Ordering::Relaxed);
            if let Some(payload) = worker_panic {
                std::panic::resume_unwind(payload);
            }
        })
    }));

    let mut state = state.into_inner().unwrap_or_else(PoisonError::into_inner);
    if let Some(e) = state.error.take() {
        return Err(e);
    }
    if let Err(payload) = scope_panic {
        return Err(FleetError::Worker(panic_message(payload)));
    }
    if !state.verify_failures.is_empty() {
        let detail: Vec<String> = state
            .verify_failures
            .iter()
            .map(|(job, report)| format!("job {job}: {report}"))
            .collect();
        return Err(FleetError::Verify(format!(
            "{} of {} job(s) failed independent verification — {}",
            state.verify_failures.len(),
            state.records.len(),
            detail.join("; ")
        )));
    }
    let executed = state.records.len() - resumed;
    Ok(CampaignOutcome {
        records: state.records,
        resumed_jobs: resumed,
        executed_jobs: executed,
        total_jobs: total,
        job_wall_s: state.job_wall_s,
        job_diagnostics: state.job_diagnostics,
        peak_resident_states: pool.peak_resident_states(),
        final_resident_states: pool.resident_states(),
        wall_s: t_start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "psbi_fleet_runner_test_{tag}_{}",
            std::process::id()
        ))
    }

    fn quick_spec() -> CampaignSpec {
        CampaignSpec {
            samples: 60,
            yield_samples: 120,
            calibration_samples: 120,
            ..CampaignSpec::example()
        }
    }

    #[test]
    fn campaign_runs_resumes_and_is_worker_count_invariant() {
        let spec = quick_spec();
        let path_a = tmp_path("a");
        let path_b = tmp_path("b");
        let path_c = tmp_path("c");
        for p in [&path_a, &path_b, &path_c] {
            let _ = std::fs::remove_file(p);
        }

        // Uninterrupted, 1 worker.
        let one = run_campaign(&spec, &path_a, &FleetOptions::default()).unwrap();
        assert!(one.complete());
        assert_eq!(one.executed_jobs, 4);

        // Uninterrupted, 4 workers: identical journal bytes and records.
        let four = run_campaign(
            &spec,
            &path_b,
            &FleetOptions {
                workers: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(one.records, four.records);
        assert_eq!(
            std::fs::read(&path_a).unwrap(),
            std::fs::read(&path_b).unwrap()
        );

        // Interrupted after 1 job, then resumed: same bytes again.
        let partial = run_campaign(
            &spec,
            &path_c,
            &FleetOptions {
                max_jobs: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!partial.complete());
        assert_eq!(partial.executed_jobs, 1);
        let finished = run_campaign(
            &spec,
            &path_c,
            &FleetOptions {
                workers: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(finished.complete());
        assert_eq!(finished.resumed_jobs, 1);
        assert_eq!(finished.executed_jobs, 3);
        assert_eq!(finished.records, one.records);
        assert_eq!(
            std::fs::read(&path_a).unwrap(),
            std::fs::read(&path_c).unwrap()
        );

        // Re-running a complete campaign executes nothing.
        let noop = run_campaign(&spec, &path_a, &FleetOptions::default()).unwrap();
        assert_eq!(noop.executed_jobs, 0);
        assert_eq!(noop.resumed_jobs, 4);
        assert_eq!(noop.records, one.records);

        for p in [&path_a, &path_b, &path_c] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn arena_reclamation_caps_resident_state_at_active_circuits() {
        // 2 circuits × 2 targets, 1 worker, circuit-major grid: each
        // circuit's arenas (2 per flow, `samples` chip slots each) must
        // be freed when its second target commits, so the pool's peak is
        // ONE circuit's worth — not the whole campaign's — and nothing
        // stays resident at the end.
        let spec = quick_spec();
        let path = tmp_path("reclaim");
        let _ = std::fs::remove_file(&path);
        let outcome = run_campaign(
            &spec,
            &path,
            &FleetOptions {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(outcome.complete());
        let per_circuit = 2 * spec.samples as u64; // A1 + post-prune arena
        assert_eq!(
            outcome.peak_resident_states, per_circuit,
            "peak must be capped at one in-flight circuit"
        );
        assert_eq!(
            outcome.final_resident_states, 0,
            "every circuit's state must be reclaimed after its last job"
        );
        // The cross-chip memo actually fired while it was alive.
        let hits: u64 = outcome
            .job_diagnostics
            .iter()
            .flatten()
            .map(|d| d.total().cross_chip_hits)
            .sum();
        assert!(hits > 0, "campaign never hit the cross-chip memo");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn verify_option_is_byte_neutral_and_populates_reports() {
        // --verify must not change a single canonical byte: the verifier
        // only *re-checks* results.  Its reports land in the (in-memory,
        // non-canonical) diagnostics.
        let spec = quick_spec();
        let path_plain = tmp_path("verify_plain");
        let path_verify = tmp_path("verify_on");
        for p in [&path_plain, &path_verify] {
            let _ = std::fs::remove_file(p);
        }
        let plain = run_campaign(&spec, &path_plain, &FleetOptions::default()).unwrap();
        let verified = run_campaign(
            &spec,
            &path_verify,
            &FleetOptions {
                verify: true,
                workers: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(plain.records, verified.records);
        assert_eq!(
            std::fs::read(&path_plain).unwrap(),
            std::fs::read(&path_verify).unwrap()
        );
        for (j, diag) in verified.job_diagnostics.iter().enumerate() {
            let report = diag
                .as_ref()
                .and_then(|d| d.verify.as_ref())
                .unwrap_or_else(|| panic!("job {j} missing verify report"));
            assert!(report.passed, "job {j}: {report}");
            assert!(report.checks > 0);
        }
        assert!(plain
            .job_diagnostics
            .iter()
            .flatten()
            .all(|d| d.verify.is_none()));
        for p in [&path_plain, &path_verify] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn resumed_diagnostics_quarantined() {
        // Solver-cache counters are quarantined from the journal (they
        // differ between cache modes while the canonical bytes do not),
        // so a resumed invocation CANNOT recover them for jobs a prior
        // process executed: resumed slots stay `None`, executed slots
        // are `Some`, and the aggregate labels itself "executed jobs".
        let spec = quick_spec();
        let path = tmp_path("quarantine");
        let _ = std::fs::remove_file(&path);
        let first = run_campaign(
            &spec,
            &path,
            &FleetOptions {
                max_jobs: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(first.executed_jobs, 1);
        assert!(first.job_diagnostics[0].is_some());
        let resumed = run_campaign(&spec, &path, &FleetOptions::default()).unwrap();
        assert!(resumed.complete());
        assert_eq!(resumed.resumed_jobs, 1);
        assert!(
            resumed.job_diagnostics[0].is_none(),
            "journal-resumed jobs must not fabricate diagnostics"
        );
        for j in 1..resumed.total_jobs {
            assert!(
                resumed.job_diagnostics[j].is_some(),
                "executed job {j} must carry diagnostics"
            );
        }
        let report = crate::CampaignReport::from_outcome(&spec, &resumed);
        assert!(report.text().contains("executed jobs"));
        let timed = report.json(true);
        assert!(timed.contains("\"solver_cache\""));
        let _ = std::fs::remove_file(&path);
    }
}
