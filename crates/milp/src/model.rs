//! Model builder: variables with finite bounds, linear constraints, and the
//! linearisations the insertion flow needs.

use crate::branch::solve_branch_and_bound;
use crate::simplex::{DenseLp, LpOutcome, RowOp};
use serde::{Deserialize, Serialize};

/// Handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VarId(pub usize);

/// Relational operator of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// `≤`
    Le,
    /// `≥`
    Ge,
    /// `=`
    Eq,
}

/// Solve status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Proven optimal.
    Optimal,
    /// Proven infeasible.
    Infeasible,
    /// LP relaxation unbounded (models in this workspace always have finite
    /// bounds, so this indicates a modelling error).
    Unbounded,
    /// Node limit reached with an incumbent; the solution is feasible but
    /// optimality was not proven.
    Feasible,
    /// Node limit reached with no incumbent.
    Unknown,
}

/// Result of a solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Final status.
    pub status: Status,
    /// Variable values (meaningful for `Optimal`/`Feasible`).
    pub values: Vec<f64>,
    /// Objective value.
    pub objective: f64,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
}

impl Solution {
    /// Value of `v` rounded to the nearest integer.
    pub fn int_value(&self, v: VarId) -> i64 {
        self.values[v.0].round() as i64
    }

    /// Value of `v`.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.0]
    }
}

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    #[allow(dead_code)]
    pub name: String,
    pub lo: f64,
    pub hi: f64,
    pub obj: f64,
    pub integer: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct ConsDef {
    pub terms: Vec<(VarId, f64)>,
    pub op: Op,
    pub rhs: f64,
}

/// A mixed-integer linear program.
///
/// All variables must have finite bounds — the flows this crate serves
/// always do, and it keeps the simplex layer simple and robust.
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) cons: Vec<ConsDef>,
    /// Maximum branch-and-bound nodes (default 200 000).
    pub node_limit: usize,
    /// Optional warm-start point (see [`Model::set_warm_start`]).
    pub(crate) warm: Option<Vec<f64>>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self {
            vars: Vec::new(),
            cons: Vec::new(),
            node_limit: 200_000,
            warm: None,
        }
    }

    /// Supplies a known solution as the branch-and-bound's initial
    /// incumbent — the **witness import** half of the bounded solver's
    /// warm-start pair (the export half is simply [`Solution::values`]).
    ///
    /// The point is *verified* before use: bounds, integrality and every
    /// constraint are checked, and a point that fails any check is
    /// silently discarded.  A valid incumbent tightens pruning from node
    /// one; it never changes which points are feasible, so an invalid or
    /// stale witness can only cost the verification sweep, not
    /// correctness.  Callers that need run-to-run reproducibility must
    /// supply the warm start deterministically (or not at all): an
    /// incumbent whose objective ties the optimum is kept in preference
    /// to an equal solution found later by the search.
    pub fn set_warm_start(&mut self, values: Vec<f64>) {
        self.warm = Some(values);
    }

    /// Verifies a warm-start point: length, bounds, integrality and all
    /// constraints within tolerance.  Returns the (integer-snapped) point
    /// and its objective when valid.
    pub(crate) fn verified_warm_start(&self) -> Option<(Vec<f64>, f64)> {
        const TOL: f64 = 1e-6;
        let w = self.warm.as_ref()?;
        if w.len() != self.vars.len() {
            return None;
        }
        let mut snapped = w.clone();
        for (x, v) in snapped.iter_mut().zip(&self.vars) {
            if v.integer {
                let r = x.round();
                if (*x - r).abs() > TOL {
                    return None;
                }
                *x = r;
            }
            if *x < v.lo - TOL || *x > v.hi + TOL {
                return None;
            }
        }
        for c in &self.cons {
            let lhs: f64 = c.terms.iter().map(|(v, coef)| coef * snapped[v.0]).sum();
            let ok = match c.op {
                Op::Le => lhs <= c.rhs + TOL,
                Op::Ge => lhs >= c.rhs - TOL,
                Op::Eq => (lhs - c.rhs).abs() <= TOL,
            };
            if !ok {
                return None;
            }
        }
        let objective: f64 = self.vars.iter().zip(&snapped).map(|(v, x)| v.obj * x).sum();
        Some((snapped, objective))
    }

    /// Adds a variable with bounds `[lo, hi]`, objective coefficient `obj`
    /// and integrality flag.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or `lo > hi`.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        lo: f64,
        hi: f64,
        obj: f64,
        integer: bool,
    ) -> VarId {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo <= hi, "lo must be <= hi");
        let id = VarId(self.vars.len());
        self.vars.push(VarDef {
            name: name.into(),
            lo,
            hi,
            obj,
            integer,
        });
        id
    }

    /// Adds a binary variable (integer in `[0, 1]`).
    pub fn add_binary(&mut self, name: impl Into<String>, obj: f64) -> VarId {
        self.add_var(name, 0.0, 1.0, obj, true)
    }

    /// Adds the constraint `Σ coef·var  op  rhs`.
    pub fn add_cons(&mut self, terms: Vec<(VarId, f64)>, op: Op, rhs: f64) {
        for (v, _) in &terms {
            assert!(v.0 < self.vars.len(), "constraint references unknown var");
        }
        self.cons.push(ConsDef { terms, op, rhs });
    }

    /// Changes the objective coefficient of `v`.
    pub fn set_objective(&mut self, v: VarId, obj: f64) {
        self.vars[v.0].obj = obj;
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_cons(&self) -> usize {
        self.cons.len()
    }

    /// Adds `z ≥ |x − target|` and returns `z` (with objective weight
    /// `weight`).  Minimising `z` therefore minimises the absolute
    /// deviation — the linearisation used by the paper's eqs. (15)/(19).
    pub fn add_abs_deviation(&mut self, x: VarId, target: f64, weight: f64) -> VarId {
        let (lo, hi) = (self.vars[x.0].lo, self.vars[x.0].hi);
        let zhi = (lo - target).abs().max((hi - target).abs());
        let z = self.add_var(format!("|x{}−{target}|", x.0), 0.0, zhi, weight, false);
        // z - x >= -target  and  z + x >= target.
        self.add_cons(vec![(z, 1.0), (x, -1.0)], Op::Ge, -target);
        self.add_cons(vec![(z, 1.0), (x, 1.0)], Op::Ge, target);
        z
    }

    /// Adds the big-M indicator pair `x ≤ c·M` and `−x ≤ c·M` (paper's
    /// eqs. (5)–(6)): when the binary `c` is 0, `x` is forced to 0.
    pub fn add_indicator(&mut self, x: VarId, c: VarId, big_m: f64) {
        assert!(big_m > 0.0, "big-M must be positive");
        self.add_cons(vec![(x, 1.0), (c, -big_m)], Op::Le, 0.0);
        self.add_cons(vec![(x, -1.0), (c, -big_m)], Op::Le, 0.0);
    }

    /// Builds the LP relaxation in shifted computational form
    /// (`y = x − lo ≥ 0`) together with the objective constant.
    pub(crate) fn to_dense_lp(&self, lo_override: &[f64], hi_override: &[f64]) -> (DenseLp, f64) {
        let n = self.vars.len();
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(self.cons.len() + n);
        let mut ops: Vec<RowOp> = Vec::new();
        let mut rhs: Vec<f64> = Vec::new();

        for c in &self.cons {
            let mut row = vec![0.0; n];
            let mut shift = 0.0;
            for (v, coef) in &c.terms {
                row[v.0] += *coef;
                shift += *coef * lo_override[v.0];
            }
            rows.push(row);
            ops.push(match c.op {
                Op::Le => RowOp::Le,
                Op::Ge => RowOp::Ge,
                Op::Eq => RowOp::Eq,
            });
            rhs.push(c.rhs - shift);
        }
        // Upper bounds as explicit rows: y_i <= hi - lo.
        for i in 0..n {
            let span = hi_override[i] - lo_override[i];
            if span.is_finite() {
                let mut row = vec![0.0; n];
                row[i] = 1.0;
                rows.push(row);
                ops.push(RowOp::Le);
                rhs.push(span);
            }
        }
        let cost: Vec<f64> = self.vars.iter().map(|v| v.obj).collect();
        let constant: f64 = self
            .vars
            .iter()
            .enumerate()
            .map(|(i, v)| v.obj * lo_override[i])
            .sum();
        (
            DenseLp {
                n,
                cost,
                rows,
                ops,
                rhs,
            },
            constant,
        )
    }

    /// Solves the LP relaxation (ignoring integrality).
    pub fn solve_lp(&self) -> Solution {
        let lo: Vec<f64> = self.vars.iter().map(|v| v.lo).collect();
        let hi: Vec<f64> = self.vars.iter().map(|v| v.hi).collect();
        let (lp, constant) = self.to_dense_lp(&lo, &hi);
        match lp.solve() {
            LpOutcome::Optimal { x, objective } => Solution {
                status: Status::Optimal,
                values: x.iter().enumerate().map(|(i, y)| y + lo[i]).collect(),
                objective: objective + constant,
                nodes: 1,
            },
            LpOutcome::Infeasible => Solution {
                status: Status::Infeasible,
                values: vec![],
                objective: f64::INFINITY,
                nodes: 1,
            },
            LpOutcome::Unbounded => Solution {
                status: Status::Unbounded,
                values: vec![],
                objective: f64::NEG_INFINITY,
                nodes: 1,
            },
        }
    }

    /// Solves the MILP by branch and bound.
    pub fn solve(&self) -> Solution {
        solve_branch_and_bound(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp_with_shifted_bounds() {
        // min x with x in [-5, 5] and x >= -2 → x = -2.
        let mut m = Model::new();
        let x = m.add_var("x", -5.0, 5.0, 1.0, false);
        m.add_cons(vec![(x, 1.0)], Op::Ge, -2.0);
        let s = m.solve_lp();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.value(x) + 2.0).abs() < 1e-7);
    }

    #[test]
    fn abs_deviation_linearisation() {
        // min |x - 3| with x >= 5 → 2.
        let mut m = Model::new();
        let x = m.add_var("x", -10.0, 10.0, 0.0, false);
        m.add_cons(vec![(x, 1.0)], Op::Ge, 5.0);
        m.add_abs_deviation(x, 3.0, 1.0);
        let s = m.solve_lp();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 2.0).abs() < 1e-6, "obj={}", s.objective);
        assert!((s.value(x) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn abs_deviation_prefers_target() {
        // min |x - 3| unconstrained in [-10, 10] → x = 3.
        let mut m = Model::new();
        let x = m.add_var("x", -10.0, 10.0, 0.0, false);
        m.add_abs_deviation(x, 3.0, 1.0);
        let s = m.solve_lp();
        assert!((s.value(x) - 3.0).abs() < 1e-6);
        assert!(s.objective.abs() < 1e-6);
    }

    #[test]
    fn indicator_forces_zero() {
        // min c with x >= 2 and indicator: c must be 1.
        let mut m = Model::new();
        let x = m.add_var("x", -20.0, 20.0, 0.0, true);
        let c = m.add_binary("c", 1.0);
        m.add_indicator(x, c, 20.0);
        m.add_cons(vec![(x, 1.0)], Op::Ge, 2.0);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert_eq!(s.int_value(c), 1);
        // And with x forced to 0 the objective would be 0:
        let mut m2 = Model::new();
        let x2 = m2.add_var("x", -20.0, 20.0, 0.0, true);
        let c2 = m2.add_binary("c", 1.0);
        m2.add_indicator(x2, c2, 20.0);
        let s2 = m2.solve();
        assert_eq!(s2.int_value(c2), 0);
        assert!(s2.objective.abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "bounds must be finite")]
    fn infinite_bounds_rejected() {
        let mut m = Model::new();
        m.add_var("x", f64::NEG_INFINITY, 0.0, 1.0, false);
    }
}
