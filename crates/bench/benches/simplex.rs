//! P2: the in-workspace LP/MILP solver on problems shaped like the
//! per-region concentration MILPs.

use criterion::{criterion_group, criterion_main, Criterion};
use psbi_milp::{Model, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A region-shaped MILP: `n` integer tunings with indicator binaries, a
/// budget row, difference constraints and |·| objectives.
fn region_milp(n: usize, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Model::new();
    let ks: Vec<_> = (0..n)
        .map(|i| m.add_var(format!("k{i}"), -20.0, 20.0, 0.0, true))
        .collect();
    let mut cterms = Vec::new();
    for (i, &k) in ks.iter().enumerate() {
        let c = m.add_binary(format!("c{i}"), 0.0);
        m.add_indicator(k, c, 20.0);
        cterms.push((c, 1.0));
    }
    m.add_cons(cterms, Op::Le, (n / 3).max(1) as f64);
    for i in 0..n.saturating_sub(1) {
        let w = rng.gen_range(-3i64..6) as f64;
        m.add_cons(vec![(ks[i], 1.0), (ks[i + 1], -1.0)], Op::Le, w);
    }
    for &k in &ks {
        m.add_abs_deviation(k, 0.0, 1.0);
    }
    m
}

fn bench_milp(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp_region");
    for n in [4usize, 8, 12] {
        let m = region_milp(n, 3);
        group.bench_function(format!("solve_n{n}"), |b| b.iter(|| m.solve().status));
    }
    group.finish();

    let mut group = c.benchmark_group("lp_relaxation");
    let m = region_milp(16, 5);
    group.bench_function("solve_lp_n16", |b| b.iter(|| m.solve_lp().status));
    group.finish();
}

criterion_group!(benches, bench_milp);
criterion_main!(benches);
