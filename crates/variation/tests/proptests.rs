//! Property-based tests for canonical-form arithmetic and statistics.

use proptest::prelude::*;
use psbi_variation::{CanonicalForm, Histogram};

fn arb_form() -> impl Strategy<Value = CanonicalForm> {
    (
        -50.0f64..150.0,
        -5.0f64..5.0,
        -5.0f64..5.0,
        -5.0f64..5.0,
        0.0f64..6.0,
    )
        .prop_map(|(m, s0, s1, s2, i)| CanonicalForm::with_parts(m, [s0, s1, s2], i))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Clark's max dominates both means and is commutative in its moments.
    #[test]
    fn max_dominates_and_commutes(a in arb_form(), b in arb_form()) {
        let m1 = a.max(&b);
        let m2 = b.max(&a);
        prop_assert!(m1.mean() >= a.mean().max(b.mean()) - 1e-9);
        prop_assert!((m1.mean() - m2.mean()).abs() < 1e-9);
        prop_assert!((m1.sigma() - m2.sigma()).abs() < 1e-7);
    }

    /// min(A, B) ≤ both means, and min/max bracket the sum correctly:
    /// max + min has the same mean as A + B for Gaussians.
    #[test]
    fn min_max_mean_identity(a in arb_form(), b in arb_form()) {
        let mx = a.max(&b);
        let mn = a.min(&b);
        prop_assert!(mn.mean() <= a.mean().min(b.mean()) + 1e-9);
        // E[max] + E[min] = E[A] + E[B] exactly for any joint distribution.
        prop_assert!(
            (mx.mean() + mn.mean() - a.mean() - b.mean()).abs() < 1e-6,
            "identity violated: {} + {} vs {} + {}",
            mx.mean(), mn.mean(), a.mean(), b.mean()
        );
    }

    /// Addition is exact: means add, variances follow the covariance rule.
    #[test]
    fn add_moments_exact(a in arb_form(), b in arb_form()) {
        let s = a.add(&b);
        prop_assert!((s.mean() - a.mean() - b.mean()).abs() < 1e-9);
        let expect_var = a.variance() + b.variance() + 2.0 * a.covariance(&b);
        prop_assert!((s.variance() - expect_var).abs() < 1e-6);
    }

    /// Quantiles are monotone in q.
    #[test]
    fn quantiles_monotone(a in arb_form(), q1 in 0.01f64..0.99, q2 in 0.01f64..0.99) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(a.quantile(lo) <= a.quantile(hi) + 1e-9);
    }

    /// The best window always covers at least as much as any fixed
    /// zero-anchored candidate, and it contains zero when required.
    #[test]
    fn best_window_is_optimal(
        values in proptest::collection::vec(-25i64..25, 1..60),
        width in 1i64..12,
    ) {
        let h: Histogram = values.iter().copied().collect();
        let (r, covered) = h.best_window(width, true);
        prop_assert!(r <= 0 && r + width >= 0);
        prop_assert_eq!(covered, h.count_in_window(r, width));
        for cand in -width..=0 {
            prop_assert!(covered >= h.count_in_window(cand, width),
                "candidate {cand} beats chosen {r}");
        }
    }
}
