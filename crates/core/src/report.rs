//! Rendering of insertion results as Markdown and CSV.
//!
//! The experiment binaries use these helpers to produce the tables recorded
//! in `EXPERIMENTS.md`; they are exposed publicly so downstream users can
//! log flow outcomes uniformly.

use crate::flow::InsertionResult;
use std::fmt::Write as _;

/// One labelled result (e.g. `("s9234", "muT", result)`).
pub type LabelledResult<'a> = (&'a str, &'a str, &'a InsertionResult);

/// Renders results as a GitHub-flavoured Markdown table with the paper's
/// Table-I columns.
pub fn markdown_table(rows: &[LabelledResult<'_>]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| circuit | target | ns | ng | Nb | Ab | Yo (%) | Y (%) | Yi (pts) | T (s) |"
    );
    let _ = writeln!(out, "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|");
    for (circuit, target, r) in rows {
        let _ = writeln!(
            out,
            "| {circuit} | {target} | {} | {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} |",
            r.n_ffs,
            r.n_gates,
            r.nb,
            r.ab,
            r.yield_baseline,
            r.yield_with_buffers,
            r.improvement,
            r.runtime.total_s
        );
    }
    out
}

/// Renders results as CSV with a header row.
pub fn csv_table(rows: &[LabelledResult<'_>]) -> String {
    let mut out = String::from(
        "circuit,target,ns,ng,nb,ab,yo,y,yi,runtime_s,mu_t,sigma_t,rescued,broken,buffers_before_grouping\n",
    );
    for (circuit, target, r) in rows {
        let _ = writeln!(
            out,
            "{circuit},{target},{},{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.2},{:.2},{},{},{}",
            r.n_ffs,
            r.n_gates,
            r.nb,
            r.ab,
            r.yield_baseline,
            r.yield_with_buffers,
            r.improvement,
            r.runtime.total_s,
            r.mu_t,
            r.sigma_t,
            r.rescued,
            r.broken,
            r.buffers_before_grouping
        );
    }
    out
}

/// One-paragraph human summary of a result.
pub fn summary(r: &InsertionResult) -> String {
    format!(
        "{}: {} buffers (avg range {:.1} steps) lift yield from {:.2}% to {:.2}% \
         (+{:.2} points, {} chips rescued, {} broken) at T = {:.1} ps \
         (muT = {:.1}, sigmaT = {:.1}); flow took {:.2}s.",
        r.circuit,
        r.nb,
        r.ab,
        r.yield_baseline,
        r.yield_with_buffers,
        r.improvement,
        r.rescued,
        r.broken,
        r.period,
        r.mu_t,
        r.sigma_t,
        r.runtime.total_s
    )
}

/// Per-pass incremental-cache and saturation counters as a small Markdown
/// table — the observability surface for cache efficacy and `region_cap`
/// saturation.  Non-canonical (like wall times): the counters legitimately
/// differ between incremental and `PSBI_NO_INCREMENTAL=1` runs.
pub fn solver_diagnostics(r: &InsertionResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| pass | regions | saturated (region_cap) | regions reused | supports rehit | cross-chip hits |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|");
    let d = &r.diagnostics;
    for (pass, p) in [("A1", &d.a1), ("A3", &d.a3), ("B1", &d.b1), ("B2", &d.b2)] {
        let _ = writeln!(
            out,
            "| {pass} | {} | {} | {} | {} | {} |",
            p.regions_total,
            p.regions_saturated,
            p.regions_reused,
            p.supports_rehit,
            p.cross_chip_hits
        );
    }
    let total = d.total();
    let _ = writeln!(
        out,
        "| total | {} | {} | {} | {} | {} |",
        total.regions_total,
        total.regions_saturated,
        total.regions_reused,
        total.supports_rehit,
        total.cross_chip_hits
    );
    out
}

/// Solver-stage wall times (discovery / saturation screen / search /
/// push-MILP) as a Markdown table, read from the process-wide obs
/// histograms `solve.stage.*` — the observability surface behind
/// `BENCH_sampling.json`'s `solver_stages` section.  Wall times are
/// non-canonical by contract.  Requires the metrics registry to be
/// armed (`PSBI_METRICS` or `psbi_obs::metrics::arm`) around the flow
/// run; when disarmed every row renders as zero, because the solver
/// reads no clock at all on the disarmed path.
pub fn solver_stage_times() -> String {
    let snap = psbi_obs::metrics::snapshot();
    let secs = |name: &str| -> f64 {
        snap.histogram(name)
            .map(|h| h.sum as f64 / 1e9)
            .unwrap_or(0.0)
    };
    let mut out = String::new();
    let _ = writeln!(out, "| stage | wall (s) | calls |");
    let _ = writeln!(out, "|---|---:|---:|");
    let mut total_s = 0.0;
    let mut total_calls = 0u64;
    for stage in ["discovery", "screen", "search", "milp"] {
        let name = format!("solve.stage.{stage}");
        let s = secs(&name);
        let calls = snap.histogram(&name).map(|h| h.count).unwrap_or(0);
        total_s += s;
        total_calls += calls;
        let _ = writeln!(out, "| {stage} | {s:.4} | {calls} |");
    }
    let _ = writeln!(out, "| total | {total_s:.4} | {total_calls} |");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{BufferInsertionFlow, FlowConfig, TargetPeriod};
    use psbi_netlist::bench_suite;

    fn sample_result() -> InsertionResult {
        let c = bench_suite::tiny_demo(17);
        let cfg = FlowConfig {
            samples: 60,
            yield_samples: 150,
            calibration_samples: 150,
            threads: 1,
            target: TargetPeriod::SigmaFactor(0.0),
            ..FlowConfig::default()
        };
        BufferInsertionFlow::builder(&c, cfg).build().unwrap().run()
    }

    #[test]
    fn markdown_has_row_per_result() {
        let r = sample_result();
        let table = markdown_table(&[("tiny", "muT", &r), ("tiny", "muT+2s", &r)]);
        assert_eq!(table.lines().count(), 4); // header + separator + 2 rows
        assert!(table.contains("| tiny | muT |"));
        assert!(table.contains("| Nb |"));
    }

    #[test]
    fn csv_is_parseable() {
        let r = sample_result();
        let csv = csv_table(&[("tiny", "muT", &r)]);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let row = lines.next().unwrap();
        assert_eq!(header.split(',').count(), row.split(',').count());
        assert!(row.starts_with("tiny,muT,24,220,"));
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let r = sample_result();
        let s = summary(&r);
        assert!(s.contains("tiny_demo"));
        assert!(s.contains("buffers"));
        assert!(s.contains("yield"));
    }

    #[test]
    fn solver_diagnostics_renders_all_passes() {
        let r = sample_result();
        let table = solver_diagnostics(&r);
        assert_eq!(table.lines().count(), 7); // header + sep + 4 passes + total
        assert!(table.contains("cross-chip hits"));
        for pass in ["A1", "A3", "B1", "B2", "total"] {
            assert!(table.contains(&format!("| {pass} |")), "missing {pass}");
        }
        // The default flow runs incrementally, so the table is not all
        // zeros: at minimum B1/B2 replay A3's decompositions.
        let totals = r.diagnostics.total();
        assert!(totals.regions_reused + totals.supports_rehit > 0);
    }

    #[test]
    fn solver_stage_times_renders_all_stages() {
        let table = psbi_obs::metrics::with_metrics(None, || {
            let _ = sample_result();
            solver_stage_times()
        });
        assert_eq!(table.lines().count(), 7); // header + sep + 4 stages + total
        for stage in ["discovery", "screen", "search", "milp", "total"] {
            assert!(table.contains(&format!("| {stage} |")), "missing {stage}");
        }
        // The flow solved real chips under an armed registry, so the
        // screen stage ran (it is unconditional per chip per pass) and
        // recorded a nonzero call count in its histogram row.
        let screen_row = table
            .lines()
            .find(|l| l.starts_with("| screen |"))
            .expect("screen row");
        let calls: u64 = screen_row
            .trim_end_matches('|')
            .rsplit('|')
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(calls > 0, "screen stage never timed: {table}");
    }
}
