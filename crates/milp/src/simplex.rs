//! Dense two-phase primal simplex.
//!
//! Solves `min c·x` subject to `A x {≤,≥,=} b` and `0 ≤ x` (the model layer
//! shifts general finite bounds into this form).  The implementation is a
//! classic tableau method: phase 1 drives artificial variables to zero,
//! phase 2 optimises the true objective.  Dantzig pricing with a switch to
//! Bland's rule after a fixed number of iterations guards against cycling.

/// Relational operator of a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOp {
    /// `≤`
    Le,
    /// `≥`
    Ge,
    /// `=`
    Eq,
}

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// Optimal solution: values of the structural variables and objective.
    Optimal {
        /// Structural variable values.
        x: Vec<f64>,
        /// Objective value.
        objective: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

const EPS: f64 = 1e-9;
const COST_EPS: f64 = 1e-7;
/// Iterations of Dantzig pricing before switching to Bland's rule.
const BLAND_AFTER: usize = 2_000;
/// Hard iteration limit (the per-region LPs are tiny; hitting this would
/// indicate a bug rather than a hard instance).
const MAX_ITERS: usize = 50_000;

/// A dense LP in computational form.
#[derive(Debug, Clone)]
pub struct DenseLp {
    /// Number of structural (original, already shifted ≥ 0) variables.
    pub n: usize,
    /// Objective coefficients, length `n`.
    pub cost: Vec<f64>,
    /// Constraint rows: coefficient vectors of length `n`.
    pub rows: Vec<Vec<f64>>,
    /// Operators per row.
    pub ops: Vec<RowOp>,
    /// Right-hand sides per row.
    pub rhs: Vec<f64>,
}

impl DenseLp {
    /// Solves the LP.
    ///
    /// # Panics
    ///
    /// Panics if row lengths are inconsistent with `n`.
    pub fn solve(&self) -> LpOutcome {
        let m = self.rows.len();
        let n = self.n;
        for r in &self.rows {
            assert_eq!(r.len(), n, "row length mismatch");
        }

        // Column layout: [structural | slack/surplus | artificial | rhs].
        // Ge and Eq rows need an artificial; Le rows with negative rhs are
        // flipped to Ge first, so count after normalisation.
        let mut norm_rows: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut norm_ops: Vec<RowOp> = Vec::with_capacity(m);
        let mut norm_rhs: Vec<f64> = Vec::with_capacity(m);
        for i in 0..m {
            let mut row = self.rows[i].clone();
            let mut op = self.ops[i];
            let mut b = self.rhs[i];
            if b < 0.0 {
                for v in &mut row {
                    *v = -*v;
                }
                b = -b;
                op = match op {
                    RowOp::Le => RowOp::Ge,
                    RowOp::Ge => RowOp::Le,
                    RowOp::Eq => RowOp::Eq,
                };
            }
            norm_rows.push(row);
            norm_ops.push(op);
            norm_rhs.push(b);
        }
        let mut n_slack = 0usize;
        let mut n_art = 0usize;
        for op in &norm_ops {
            match op {
                RowOp::Le => n_slack += 1,
                RowOp::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                RowOp::Eq => n_art += 1,
            }
        }

        let total = n + n_slack + n_art;
        let width = total + 1; // + rhs column
        let mut t = vec![vec![0.0f64; width]; m];
        let mut basis = vec![0usize; m];
        let mut slack_at = n;
        let mut art_at = n + n_slack;
        let art_start = n + n_slack;

        for i in 0..m {
            t[i][..n].copy_from_slice(&norm_rows[i]);
            t[i][total] = norm_rhs[i];
            match norm_ops[i] {
                RowOp::Le => {
                    t[i][slack_at] = 1.0;
                    basis[i] = slack_at;
                    slack_at += 1;
                }
                RowOp::Ge => {
                    t[i][slack_at] = -1.0;
                    slack_at += 1;
                    t[i][art_at] = 1.0;
                    basis[i] = art_at;
                    art_at += 1;
                }
                RowOp::Eq => {
                    t[i][art_at] = 1.0;
                    basis[i] = art_at;
                    art_at += 1;
                }
            }
        }

        // Phase 1: minimise the sum of artificials.
        if n_art > 0 {
            let mut cost1 = vec![0.0f64; width];
            for c in cost1.iter_mut().take(total).skip(art_start) {
                *c = 1.0;
            }
            // Eliminate basic (artificial) columns from the cost row.
            for i in 0..m {
                if basis[i] >= art_start {
                    let f = cost1[basis[i]];
                    if f != 0.0 {
                        for j in 0..width {
                            cost1[j] -= f * t[i][j];
                        }
                    }
                }
            }
            if !run_simplex(&mut t, &mut cost1, &mut basis, total, None) {
                // Phase 1 is never unbounded (objective bounded below by 0).
                unreachable!("phase 1 cannot be unbounded");
            }
            // -cost1[total] is the phase-1 objective value.
            if -cost1[total] > 1e-7 {
                return LpOutcome::Infeasible;
            }
            // Pivot out any artificial still in the basis (degenerate 0).
            for i in 0..m {
                if basis[i] >= art_start {
                    let mut pivoted = false;
                    for j in 0..art_start {
                        if t[i][j].abs() > EPS {
                            pivot(&mut t, &mut cost1, &mut basis, i, j);
                            pivoted = true;
                            break;
                        }
                    }
                    if !pivoted {
                        // Redundant row: leave the artificial at value 0.
                    }
                }
            }
        }

        // Phase 2: real objective (artificial columns barred).
        let mut cost2 = vec![0.0f64; width];
        cost2[..n].copy_from_slice(&self.cost);
        for i in 0..m {
            let f = cost2[basis[i]];
            if f != 0.0 {
                for j in 0..width {
                    cost2[j] -= f * t[i][j];
                }
            }
        }
        if !run_simplex(&mut t, &mut cost2, &mut basis, total, Some(art_start)) {
            return LpOutcome::Unbounded;
        }

        let mut x = vec![0.0f64; n];
        for i in 0..m {
            if basis[i] < n {
                x[basis[i]] = t[i][total];
            }
        }
        let objective = self.cost.iter().zip(&x).map(|(c, v)| c * v).sum();
        LpOutcome::Optimal { x, objective }
    }
}

/// Runs simplex iterations in place.  Returns `false` on unboundedness.
/// `bar_from`: columns at or beyond this index may not enter (artificials
/// in phase 2).
fn run_simplex(
    t: &mut [Vec<f64>],
    cost: &mut [f64],
    basis: &mut [usize],
    total: usize,
    bar_from: Option<usize>,
) -> bool {
    let m = t.len();
    let bar = bar_from.unwrap_or(total);
    for iter in 0..MAX_ITERS {
        let bland = iter >= BLAND_AFTER;
        // Entering column.
        let mut enter: Option<usize> = None;
        let mut best = -COST_EPS;
        for (j, &c) in cost.iter().enumerate().take(total.min(bar)) {
            if c < -COST_EPS {
                if bland {
                    enter = Some(j);
                    break;
                }
                if c < best {
                    best = c;
                    enter = Some(j);
                }
            }
        }
        let Some(j) = enter else {
            return true; // optimal
        };
        // Ratio test.
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let a = t[i][j];
            if a > EPS {
                let ratio = t[i][total] / a;
                let better = ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS && leave.is_some_and(|l| basis[i] < basis[l]));
                if leave.is_none() || better {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(i) = leave else {
            return false; // unbounded
        };
        pivot_rows(t, cost, i, j);
        basis[i] = j;
    }
    // Iteration limit: treat as optimal-enough; the caller's tolerance
    // checks will catch real trouble.  (Never observed in practice.)
    true
}

fn pivot(t: &mut [Vec<f64>], cost: &mut [f64], basis: &mut [usize], i: usize, j: usize) {
    pivot_rows(t, cost, i, j);
    basis[i] = j;
}

fn pivot_rows(t: &mut [Vec<f64>], cost: &mut [f64], i: usize, j: usize) {
    let width = t[i].len();
    let p = t[i][j];
    debug_assert!(p.abs() > EPS, "pivot on numerical zero");
    let inv = 1.0 / p;
    for v in t[i].iter_mut() {
        *v *= inv;
    }
    // Clean tiny noise on the pivot row.
    t[i][j] = 1.0;
    let pivot_row = t[i].clone();
    for (r, row) in t.iter_mut().enumerate() {
        if r != i {
            let f = row[j];
            if f.abs() > EPS {
                for k in 0..width {
                    row[k] -= f * pivot_row[k];
                }
                row[j] = 0.0;
            }
        }
    }
    let f = cost[j];
    if f.abs() > EPS {
        for k in 0..width {
            cost[k] -= f * pivot_row[k];
        }
        cost[j] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(n: usize, cost: &[f64], rows: &[(&[f64], RowOp, f64)]) -> DenseLp {
        DenseLp {
            n,
            cost: cost.to_vec(),
            rows: rows.iter().map(|(r, _, _)| r.to_vec()).collect(),
            ops: rows.iter().map(|(_, o, _)| *o).collect(),
            rhs: rows.iter().map(|(_, _, b)| *b).collect(),
        }
    }

    fn optimal(out: LpOutcome) -> (Vec<f64>, f64) {
        match out {
            LpOutcome::Optimal { x, objective } => (x, objective),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_maximisation() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → (2, 6), 36.
        let p = lp(
            2,
            &[-3.0, -5.0],
            &[
                (&[1.0, 0.0], RowOp::Le, 4.0),
                (&[0.0, 2.0], RowOp::Le, 12.0),
                (&[3.0, 2.0], RowOp::Le, 18.0),
            ],
        );
        let (x, obj) = optimal(p.solve());
        assert!((x[0] - 2.0).abs() < 1e-7);
        assert!((x[1] - 6.0).abs() < 1e-7);
        assert!((obj + 36.0).abs() < 1e-7);
    }

    #[test]
    fn ge_and_eq_rows() {
        // min x + y s.t. x + y >= 2, x - y = 0 → x = y = 1.
        let p = lp(
            2,
            &[1.0, 1.0],
            &[
                (&[1.0, 1.0], RowOp::Ge, 2.0),
                (&[1.0, -1.0], RowOp::Eq, 0.0),
            ],
        );
        let (x, obj) = optimal(p.solve());
        assert!((x[0] - 1.0).abs() < 1e-7);
        assert!((x[1] - 1.0).abs() < 1e-7);
        assert!((obj - 2.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        // x >= 3 and x <= 1.
        let p = lp(
            1,
            &[1.0],
            &[(&[1.0], RowOp::Ge, 3.0), (&[1.0], RowOp::Le, 1.0)],
        );
        assert_eq!(p.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x with only x >= 0 (implicit): unbounded.
        let p = lp(1, &[-1.0], &[(&[1.0], RowOp::Ge, 0.0)]);
        assert_eq!(p.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // min x s.t. -x <= -3  (i.e. x >= 3).
        let p = lp(1, &[1.0], &[(&[-1.0], RowOp::Le, -3.0)]);
        let (x, obj) = optimal(p.solve());
        assert!((x[0] - 3.0).abs() < 1e-7);
        assert!((obj - 3.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the same vertex.
        let p = lp(
            2,
            &[-1.0, -1.0],
            &[
                (&[1.0, 0.0], RowOp::Le, 1.0),
                (&[0.0, 1.0], RowOp::Le, 1.0),
                (&[1.0, 1.0], RowOp::Le, 2.0),
                (&[2.0, 2.0], RowOp::Le, 4.0),
            ],
        );
        let (_, obj) = optimal(p.solve());
        assert!((obj + 2.0).abs() < 1e-7);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 stated twice; min x → x=0, y=2.
        let p = lp(
            2,
            &[1.0, 0.0],
            &[(&[1.0, 1.0], RowOp::Eq, 2.0), (&[1.0, 1.0], RowOp::Eq, 2.0)],
        );
        let (x, _) = optimal(p.solve());
        assert!(x[0].abs() < 1e-7);
        assert!((x[1] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn zero_rows_and_columns() {
        let p = lp(2, &[0.0, 1.0], &[(&[0.0, 1.0], RowOp::Ge, 1.0)]);
        let (x, obj) = optimal(p.solve());
        assert!((x[1] - 1.0).abs() < 1e-7);
        assert!((obj - 1.0).abs() < 1e-7);
    }
}
