//! `psbi-fleet` — run sharded buffer-insertion campaigns from the shell.
//!
//! ```text
//! psbi-fleet init   [--out campaign.json] [--circuits a,b] [--sigma 0,1,2]
//!                   [--samples N] [--yield-samples N] [--seed S] [--name X]
//! psbi-fleet plan   --spec campaign.json
//! psbi-fleet run    --spec campaign.json --journal c.journal
//!                   [--workers N] [--max-jobs K] [--report out.json]
//!                   [--with-timings] [--quiet] [--progress]
//!                   [--no-incremental] [--no-cross-chip]
//!                   [--no-region-parallel] [--no-search-prune]
//!                   [--retries N] [--verify] [--trace trace.json]
//! psbi-fleet report --spec campaign.json --journal c.journal
//!                   [--json out.json] [--with-timings]
//! psbi-fleet serve  [--addr HOST:PORT] [--max-campaigns N] [--lease-jobs K]
//!                   [--lease-ms MS] [--heartbeat-ms MS]
//!                   [--inline-grace-ms MS] [--once] [--addr-file PATH]
//!                   [--quiet]
//! psbi-fleet worker [--addr HOST:PORT] [--name X] [--backoff-min-ms MS]
//!                   [--backoff-max-ms MS] [--max-idle-ms MS] [--quiet]
//! psbi-fleet submit --spec campaign.json --journal c.journal
//!                   [--addr HOST:PORT] [--retries N] [--verify] [--quiet]
//! ```
//!
//! `serve`/`worker`/`submit` are the distributed front-end: a dispatcher
//! partitions the job grid into leases executed by worker processes and
//! merges their results into the same append-only journal `run` writes —
//! byte-identical for any worker count or kill pattern.  `--addr`
//! defaults to `PSBI_DISPATCH_ADDR` (then 127.0.0.1:7171); `--journal`
//! on `submit` is a **dispatcher-side** path.
//!
//! `--trace` writes a Chrome trace-event JSON file covering the whole
//! campaign (sampling batches, flow passes, solver stages, job
//! lifecycle) — load it at <https://ui.perfetto.dev>.  Unless `--quiet`,
//! progress goes to stderr as one line per finished job plus a periodic
//! summary (jobs committed / total, quarantines, elapsed, ETA) read from
//! the `psbi_obs` metrics registry; `--progress` re-enables it over
//! `--quiet`.  Neither changes a single canonical byte (`PSBI_TRACE` /
//! `PSBI_METRICS` in the README).
//!
//! `run` resumes automatically: jobs already present in the journal are
//! never re-executed, and an interrupted campaign continues exactly where
//! its journal ends (`--max-jobs` bounds how many new jobs one invocation
//! executes, which is also how the CI smoke test simulates a kill).
//!
//! Every failure class maps to a distinct exit code (usage errors are 2):
//! spec=3, io=4, journal=5, circuit=6, corrupt journal=7, worker crash=8,
//! verification failure=9 — see `FleetError::code`.

use psbi_fleet::{
    run_campaign, run_worker, serve, submit_campaign, CampaignReport, CampaignSpec, FleetError,
    FleetOptions, Journal, ServeOptions, SubmitOptions, WorkerOptions,
};
use psbi_netlist::bench_suite::CircuitRef;
use std::path::PathBuf;
use std::process::ExitCode;

/// Simple `--key value` / `--flag` scanner (mirrors `psbi_bench::Args`,
/// which the fleet crate cannot depend on without a cycle).
struct Args {
    raw: Vec<String>,
}

impl Args {
    fn from_env() -> Self {
        Self::from_vec(std::env::args().skip(2).collect())
    }

    fn from_vec(raw: Vec<String>) -> Self {
        Self { raw }
    }

    fn get<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        let flag = format!("--{key}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
    }

    fn has(&self, key: &str) -> bool {
        let flag = format!("--{key}");
        self.raw.iter().any(|a| a == &flag)
    }

    fn list(&self, key: &str) -> Option<Vec<String>> {
        self.get::<String>(key)
            .map(|s| s.split(',').map(|x| x.trim().to_string()).collect())
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "psbi-fleet: sharded multi-circuit campaign runner\n\
         \n\
         usage:\n\
         \x20 psbi-fleet init   [--out campaign.json] [--circuits a,b] [--sigma 0,1,2]\n\
         \x20                   [--samples N] [--yield-samples N] [--seed S] [--name X]\n\
         \x20 psbi-fleet plan   --spec campaign.json\n\
         \x20 psbi-fleet run    --spec campaign.json --journal c.journal\n\
         \x20                   [--workers N] [--max-jobs K] [--report out.json]\n\
         \x20                   [--with-timings] [--quiet] [--progress]\n\
         \x20                   [--no-incremental] [--no-cross-chip]\n\
         \x20                   [--no-region-parallel] [--no-search-prune]\n\
         \x20                   [--retries N] [--verify] [--trace trace.json]\n\
         \x20 psbi-fleet report --spec campaign.json --journal c.journal\n\
         \x20                   [--json out.json] [--with-timings]\n\
         \x20 psbi-fleet serve  [--addr HOST:PORT] [--max-campaigns N] [--lease-jobs K]\n\
         \x20                   [--lease-ms MS] [--heartbeat-ms MS]\n\
         \x20                   [--inline-grace-ms MS] [--once] [--addr-file PATH] [--quiet]\n\
         \x20 psbi-fleet worker [--addr HOST:PORT] [--name X] [--backoff-min-ms MS]\n\
         \x20                   [--backoff-max-ms MS] [--max-idle-ms MS] [--quiet]\n\
         \x20 psbi-fleet submit --spec campaign.json --journal c.journal\n\
         \x20                   [--addr HOST:PORT] [--retries N] [--verify] [--quiet]\n\
         \n\
         circuits: paper suite names (s9234, ...), demo classes\n\
         (tiny_demo:SEED, small_demo:SEED, medium_demo:SEED) or\n\
         sized:NAME:FFS:GATES:SEED\n\
         \n\
         --addr defaults to PSBI_DISPATCH_ADDR, then 127.0.0.1:7171\n\
         \n\
         exit codes: 2 usage, 3 spec, 4 io, 5 journal, 6 circuit,\n\
         7 corrupt journal, 8 worker crash, 9 verification failure,\n\
         10 dispatch error"
    );
    ExitCode::from(2)
}

fn load_spec(args: &Args) -> Result<CampaignSpec, FleetError> {
    let path: String = args
        .get("spec")
        .ok_or_else(|| FleetError::Spec("--spec <campaign.json> is required".into()))?;
    let text = std::fs::read_to_string(&path).map_err(|e| {
        FleetError::Io(std::io::Error::new(
            e.kind(),
            format!("reading `{path}`: {e}"),
        ))
    })?;
    CampaignSpec::from_json(&text)
}

fn journal_path(args: &Args) -> Result<PathBuf, FleetError> {
    args.get::<String>("journal")
        .map(PathBuf::from)
        .ok_or_else(|| FleetError::Spec("--journal <path> is required".into()))
}

fn cmd_init(args: &Args) -> Result<(), FleetError> {
    let mut spec = CampaignSpec::example();
    if let Some(name) = args.get::<String>("name") {
        spec.name = name;
    }
    if let Some(circuits) = args.list("circuits") {
        spec.circuits = circuits
            .iter()
            .map(|c| CircuitRef::parse(c))
            .collect::<Result<_, _>>()
            .map_err(FleetError::Spec)?;
    }
    if let Some(sigmas) = args.list("sigma") {
        spec.sigma_factors = sigmas
            .iter()
            .map(|s| {
                s.parse::<f64>()
                    .map_err(|_| FleetError::Spec(format!("bad sigma `{s}`")))
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(samples) = args.get("samples") {
        spec.samples = samples;
        spec.calibration_samples = spec.samples.max(300);
    }
    if let Some(ys) = args.get("yield-samples") {
        spec.yield_samples = ys;
    }
    if let Some(seed) = args.get("seed") {
        spec.seed = seed;
    }
    spec.validate()?;
    let out: String = args.get("out").unwrap_or_else(|| "campaign.json".into());
    std::fs::write(&out, spec.to_json()).map_err(|e| {
        FleetError::Io(std::io::Error::new(
            e.kind(),
            format!("writing `{out}`: {e}"),
        ))
    })?;
    println!(
        "wrote `{out}`: {} circuits x {} targets = {} jobs (fingerprint {})",
        spec.circuits.len(),
        spec.sigma_factors.len(),
        spec.jobs().len(),
        spec.fingerprint()
    );
    Ok(())
}

fn cmd_plan(args: &Args) -> Result<(), FleetError> {
    let spec = load_spec(args)?;
    println!(
        "campaign `{}` (fingerprint {}): {} jobs",
        spec.name,
        spec.fingerprint(),
        spec.jobs().len()
    );
    for job in spec.jobs() {
        let size = job.circuit.size().map_or_else(
            || "size unknown".to_string(),
            |(ns, ng)| format!("{ns} FFs, {ng} gates"),
        );
        println!(
            "  job {:>3}: {} ({size}) at T = muT + {}*sigmaT",
            job.index,
            job.circuit.id(),
            job.sigma_factor
        );
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), FleetError> {
    let spec = load_spec(args)?;
    let journal = journal_path(args)?;
    let opts = FleetOptions {
        workers: args.get("workers").unwrap_or(0),
        max_jobs: args.get("max-jobs"),
        // On by default; --quiet silences it, --progress overrides --quiet.
        progress: args.has("progress") || !args.has("quiet"),
        // Results are bit-identical either way; --no-incremental (like
        // PSBI_NO_INCREMENTAL=1) and --no-cross-chip (like
        // PSBI_NO_CROSSCHIP=1) exist for debugging and A/B timing.
        incremental: !args.has("no-incremental"),
        cross_chip: !args.has("no-cross-chip"),
        region_parallel: !args.has("no-region-parallel"),
        search_prune: !args.has("no-search-prune"),
        retries: args.get("retries").unwrap_or(2),
        // PSBI_VERIFY=1 force-enables verification inside the flow even
        // without the flag.
        verify: args.has("verify"),
        // Chrome trace-event output; equivalent to PSBI_TRACE=<path>.
        trace: args.get::<String>("trace").map(PathBuf::from),
    };
    let outcome = run_campaign(&spec, &journal, &opts)?;
    let report = CampaignReport::from_outcome(&spec, &outcome);
    print!("{}", report.text());
    if let Some(out) = args.get::<String>("report") {
        std::fs::write(&out, report.json(args.has("with-timings"))).map_err(|e| {
            FleetError::Io(std::io::Error::new(
                e.kind(),
                format!("writing `{out}`: {e}"),
            ))
        })?;
        println!("report written to `{out}`");
    }
    if !outcome.complete() {
        // Deliberately exit 0: stopping at a checkpoint (--max-jobs) is a
        // successful invocation, and the CI smoke's interrupted leg
        // depends on that.  Failures surface through Err.
        println!(
            "campaign incomplete ({}/{} jobs journaled); run again to resume",
            outcome.records.len(),
            outcome.total_jobs
        );
    }
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), FleetError> {
    let spec = load_spec(args)?;
    let journal = journal_path(args)?;
    let records = Journal::replay(&journal, &spec)?;
    let report = CampaignReport::from_records(&spec, records);
    print!("{}", report.text());
    if let Some(out) = args.get::<String>("json") {
        std::fs::write(&out, report.json(args.has("with-timings"))).map_err(|e| {
            FleetError::Io(std::io::Error::new(
                e.kind(),
                format!("writing `{out}`: {e}"),
            ))
        })?;
        println!("report written to `{out}`");
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), FleetError> {
    let mut opts = ServeOptions::default();
    if let Some(addr) = args.get::<String>("addr") {
        opts.addr = addr;
    }
    if let Some(n) = args.get("max-campaigns") {
        opts.max_campaigns = n;
    }
    if let Some(k) = args.get("lease-jobs") {
        opts.lease_jobs = k;
    }
    if let Some(ms) = args.get("lease-ms") {
        opts.lease_ms = ms;
        opts.heartbeat_ms = (ms / 4).max(1);
    }
    if let Some(ms) = args.get("heartbeat-ms") {
        opts.heartbeat_ms = ms;
    }
    if let Some(ms) = args.get("inline-grace-ms") {
        opts.inline_grace_ms = ms;
    }
    opts.once = args.has("once");
    opts.progress = args.has("progress") || !args.has("quiet");
    opts.addr_file = args.get::<String>("addr-file").map(PathBuf::from);
    serve(opts)
}

fn cmd_worker(args: &Args) -> Result<(), FleetError> {
    let mut opts = WorkerOptions::default();
    if let Some(addr) = args.get::<String>("addr") {
        opts.addr = addr;
    }
    if let Some(name) = args.get::<String>("name") {
        opts.name = name;
    }
    if let Some(ms) = args.get("backoff-min-ms") {
        opts.backoff_min_ms = ms;
    }
    if let Some(ms) = args.get("backoff-max-ms") {
        opts.backoff_max_ms = ms;
    }
    opts.max_idle_ms = args.get("max-idle-ms");
    opts.progress = args.has("progress") || !args.has("quiet");
    run_worker(&opts)
}

fn cmd_submit(args: &Args) -> Result<(), FleetError> {
    let spec_path: String = args
        .get("spec")
        .ok_or_else(|| FleetError::Spec("--spec <campaign.json> is required".into()))?;
    let spec_text = std::fs::read_to_string(&spec_path).map_err(|e| {
        FleetError::Io(std::io::Error::new(
            e.kind(),
            format!("reading `{spec_path}`: {e}"),
        ))
    })?;
    let journal = journal_path(args)?;
    let mut opts = SubmitOptions::default();
    if let Some(addr) = args.get::<String>("addr") {
        opts.addr = addr;
    }
    if let Some(retries) = args.get("retries") {
        opts.retries = retries;
    }
    opts.verify = args.has("verify");
    opts.progress = args.has("progress") || !args.has("quiet");
    let outcome = submit_campaign(&spec_text, &journal.display().to_string(), &opts)?;
    println!(
        "campaign {} complete: {}/{} jobs journaled ({} quarantined, {} resumed)",
        outcome.campaign, outcome.committed, outcome.total, outcome.quarantined, outcome.resumed
    );
    Ok(())
}

fn main() -> ExitCode {
    let command = match std::env::args().nth(1) {
        Some(c) => c,
        None => return usage(),
    };
    let args = Args::from_env();
    let result = match command.as_str() {
        "init" => cmd_init(&args),
        "plan" => cmd_plan(&args),
        "run" => cmd_run(&args),
        "report" => cmd_report(&args),
        "serve" => cmd_serve(&args),
        "worker" => cmd_worker(&args),
        "submit" => cmd_submit(&args),
        "--help" | "-h" | "help" => return usage(),
        other => {
            eprintln!("psbi-fleet: unknown command `{other}`\n");
            return usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // One line per failure, and the exit code names the class so
            // scripts need not parse stderr.
            eprintln!("psbi-fleet: {e}");
            ExitCode::from(e.code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::from_vec(list.iter().map(|s| s.to_string()).collect())
    }

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("psbi_fleet_cli_test_{tag}_{}", std::process::id()))
    }

    #[test]
    fn malformed_spec_json_is_a_spec_error() {
        let path = tmp_path("badspec");
        std::fs::write(&path, "{not json").unwrap();
        let e = cmd_plan(&args(&["--spec", path.to_str().unwrap()])).unwrap_err();
        assert_eq!(e.code(), 3, "unexpected error {e}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_spec_flag_is_a_spec_error() {
        let e = cmd_plan(&args(&[])).unwrap_err();
        assert_eq!(e.code(), 3);
        assert!(e.to_string().contains("--spec"));
    }

    #[test]
    fn unreadable_journal_is_an_io_error() {
        let spec_path = tmp_path("iospec");
        std::fs::write(&spec_path, CampaignSpec::example().to_json()).unwrap();
        let missing = tmp_path("no_such_journal");
        let _ = std::fs::remove_file(&missing);
        let e = cmd_report(&args(&[
            "--spec",
            spec_path.to_str().unwrap(),
            "--journal",
            missing.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert_eq!(e.code(), 4, "unexpected error {e}");
        let _ = std::fs::remove_file(&spec_path);
    }

    #[test]
    fn fingerprint_mismatch_is_a_journal_error() {
        // A journal written for spec A, reported against spec B.
        let spec_a = CampaignSpec::example();
        let mut spec_b = spec_a.clone();
        spec_b.samples += 1;
        let journal_path = tmp_path("fpjournal");
        let _ = std::fs::remove_file(&journal_path);
        let (journal, _) = Journal::open(&journal_path, &spec_a).unwrap();
        drop(journal);
        let spec_path = tmp_path("fpspec");
        std::fs::write(&spec_path, spec_b.to_json()).unwrap();
        let e = cmd_report(&args(&[
            "--spec",
            spec_path.to_str().unwrap(),
            "--journal",
            journal_path.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert_eq!(e.code(), 5, "unexpected error {e}");
        assert!(e.to_string().contains("fingerprint"));
        for p in [&journal_path, &spec_path] {
            let _ = std::fs::remove_file(p);
        }
    }
}
