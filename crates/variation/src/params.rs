//! The process-parameter model used by the paper.
//!
//! Three Gaussian sources of variation affect every transistor: channel
//! length `L`, oxide thickness `t_ox` and threshold voltage `V_th`.  Their
//! relative standard deviations in the paper's experiments are 15.7 %, 5.3 %
//! and 4.4 % of nominal.  Each source is decomposed into a chip-global
//! (die-to-die) component shared by all gates and an independent per-gate
//! (within-die) component; [`VariationModel::global_share`] is the fraction
//! of variance carried by the global component.

use crate::normal::draw_standard_normal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of global variation sources (L, t_ox, V_th).
pub const N_PARAMS: usize = 3;

/// One physical process parameter subject to variation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessParam {
    /// Transistor channel length.
    Length,
    /// Gate-oxide thickness.
    OxideThickness,
    /// Threshold voltage.
    ThresholdVoltage,
}

impl ProcessParam {
    /// All parameters in canonical order (the order of sensitivity arrays).
    pub const ALL: [ProcessParam; N_PARAMS] = [
        ProcessParam::Length,
        ProcessParam::OxideThickness,
        ProcessParam::ThresholdVoltage,
    ];

    /// Index of this parameter in canonical order.
    ///
    /// ```
    /// use psbi_variation::params::ProcessParam;
    /// assert_eq!(ProcessParam::ThresholdVoltage.index(), 2);
    /// ```
    #[inline]
    pub fn index(self) -> usize {
        match self {
            ProcessParam::Length => 0,
            ProcessParam::OxideThickness => 1,
            ProcessParam::ThresholdVoltage => 2,
        }
    }
}

impl std::fmt::Display for ProcessParam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProcessParam::Length => "L",
            ProcessParam::OxideThickness => "t_ox",
            ProcessParam::ThresholdVoltage => "V_th",
        };
        f.write_str(s)
    }
}

/// Statistical description of the manufacturing process.
///
/// ```
/// let m = psbi_variation::VariationModel::paper_defaults();
/// assert!((m.sigma[0] - 0.157).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// Relative standard deviation of each parameter (fraction of nominal),
    /// in [`ProcessParam::ALL`] order.
    pub sigma: [f64; N_PARAMS],
    /// Fraction of each parameter's variance that is chip-global
    /// (die-to-die); the remainder is independent per gate (within-die).
    pub global_share: f64,
}

impl VariationModel {
    /// The paper's experimental setting: σ_L = 15.7 %, σ_tox = 5.3 %,
    /// σ_Vth = 4.4 %, with an even global/local variance split.
    pub fn paper_defaults() -> Self {
        Self {
            sigma: [0.157, 0.053, 0.044],
            global_share: 0.5,
        }
    }

    /// A model with no variation at all; useful for deterministic tests.
    pub fn none() -> Self {
        Self {
            sigma: [0.0; N_PARAMS],
            global_share: 0.5,
        }
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if any σ is negative/non-finite or `global_share`
    /// is outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        for (i, s) in self.sigma.iter().enumerate() {
            if !s.is_finite() || *s < 0.0 {
                return Err(format!("sigma[{i}] must be finite and >= 0, got {s}"));
            }
        }
        if !(0.0..=1.0).contains(&self.global_share) || !self.global_share.is_finite() {
            return Err(format!(
                "global_share must be in [0,1], got {}",
                self.global_share
            ));
        }
        Ok(())
    }

    /// Standard deviation of the global component of parameter `p`.
    #[inline]
    pub fn global_sigma(&self, p: ProcessParam) -> f64 {
        self.sigma[p.index()] * self.global_share.sqrt()
    }

    /// Standard deviation of the per-gate local component of parameter `p`.
    #[inline]
    pub fn local_sigma(&self, p: ProcessParam) -> f64 {
        self.sigma[p.index()] * (1.0 - self.global_share).sqrt()
    }

    /// Draws the chip-global deviations for one manufactured chip.
    pub fn sample_global<R: Rng + ?Sized>(&self, rng: &mut R) -> GlobalSample {
        let mut delta = [0.0; N_PARAMS];
        for d in &mut delta {
            *d = draw_standard_normal(rng);
        }
        GlobalSample { delta }
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// The chip-global (die-to-die) standard-normal deviations of one sample
/// chip, one per [`ProcessParam`].
///
/// These are *normalised* (unit variance); scaling by σ and by the
/// global-share factor happens where sensitivities are applied (see
/// [`crate::canonical::CanonicalForm::evaluate`]).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GlobalSample {
    /// Standard-normal draws in [`ProcessParam::ALL`] order.
    pub delta: [f64; N_PARAMS],
}

impl GlobalSample {
    /// A sample with all global deviations at zero (nominal corner).
    pub fn nominal() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn defaults_match_paper() {
        let m = VariationModel::paper_defaults();
        assert_eq!(m.sigma, [0.157, 0.053, 0.044]);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn variance_split_is_consistent() {
        let m = VariationModel::paper_defaults();
        for p in ProcessParam::ALL {
            let g = m.global_sigma(p);
            let l = m.local_sigma(p);
            let total = (g * g + l * l).sqrt();
            assert!((total - m.sigma[p.index()]).abs() < 1e-12);
        }
    }

    #[test]
    fn validate_rejects_bad_inputs() {
        let mut m = VariationModel::paper_defaults();
        m.sigma[1] = -0.1;
        assert!(m.validate().is_err());
        let mut m = VariationModel::paper_defaults();
        m.global_share = 1.5;
        assert!(m.validate().is_err());
    }

    #[test]
    fn global_sample_moments() {
        let m = VariationModel::paper_defaults();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mut sum = [0.0; N_PARAMS];
        let mut sum2 = [0.0; N_PARAMS];
        for _ in 0..n {
            let g = m.sample_global(&mut rng);
            for i in 0..N_PARAMS {
                sum[i] += g.delta[i];
                sum2[i] += g.delta[i] * g.delta[i];
            }
        }
        for i in 0..N_PARAMS {
            let mean = sum[i] / n as f64;
            let var = sum2[i] / n as f64 - mean * mean;
            assert!(mean.abs() < 0.02);
            assert!((var - 1.0).abs() < 0.05);
        }
    }

    #[test]
    fn param_display_and_index() {
        assert_eq!(ProcessParam::Length.to_string(), "L");
        for (i, p) in ProcessParam::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
