//! Regenerates the paper's Fig. 5: tuning-value histograms of one buffer
//! across the flow stages — (a) scattered after the min-count pass, (b)
//! pushed toward zero with the chosen range window, (c) concentrated
//! toward the average with the reduced final range.
//!
//! ```text
//! cargo run -p psbi-bench --release --bin fig5 -- \
//!     [--circuits s9234] [--samples 2000] [--buffers 3] [--sigma 0]
//! ```

use psbi_bench::{ascii_histogram, run_cell, Args, ExperimentConfig};

fn main() {
    let args = Args::from_env();
    let cfg = ExperimentConfig::parse(&args, &["s9234"]);
    let sigma: f64 = args.get("sigma").unwrap_or(0.0);
    let n_buffers: usize = args.get("buffers").unwrap_or(3);
    let spec = cfg.circuits.first().expect("one circuit");
    let mut flow_cfg = cfg.flow_config(sigma);
    flow_cfg.record_histograms = n_buffers;
    println!(
        "# Fig. 5 reproduction — circuit {}, T = muT + {sigma}*sigmaT, {} samples",
        spec.name, cfg.samples
    );
    let r = run_cell(spec, flow_cfg);
    println!(
        "# period {:.1} ps, step {:.2} ps, {} buffers inserted\n",
        r.period, r.step, r.nb
    );
    for snap in &r.snapshots {
        println!("== buffer at FF {} ==", snap.ff);
        println!("(a) after min-count pass (scattered):");
        print!("{}", ascii_histogram(&snap.scattered, 40));
        println!(
            "(b) after push-to-zero; window [{}, {}]:",
            snap.window.0, snap.window.1
        );
        print!("{}", ascii_histogram(&snap.pushed, 40));
        println!(
            "(c) after concentration toward average; final range [{}, {}] ({} steps):",
            snap.final_range.0,
            snap.final_range.1,
            snap.final_range.1 - snap.final_range.0
        );
        print!("{}", ascii_histogram(&snap.concentrated, 40));
        let spread = |bins: &[(i64, u64)]| -> i64 {
            match (bins.first(), bins.last()) {
                (Some((lo, _)), Some((hi, _))) => hi - lo,
                _ => 0,
            }
        };
        println!(
            "spread: scattered {} -> pushed {} -> concentrated {} steps\n",
            spread(&snap.scattered),
            spread(&snap.pushed),
            spread(&snap.concentrated)
        );
    }
    if r.snapshots.is_empty() {
        println!("no buffers were inserted — try a tighter target (--sigma 0)");
    }
}
