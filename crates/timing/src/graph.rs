//! The gate-level timing graph: canonical delays and pin loads.

use psbi_liberty::Library;
use psbi_netlist::{Circuit, NetlistError, NodeId, NodeKind};
use psbi_variation::{CanonicalForm, VariationModel};

/// Capacitive load assumed for a primary-output pin (fF).
const PO_PIN_CAP: f64 = 2.0;

/// Gate-level timing view of a circuit.
///
/// Holds, for every node, the canonical (statistical) delay of the gate and
/// for every flip-flop its canonical clock-to-Q, setup and hold values.
/// Delays are input-to-output per gate (a single arc per cell — pin-to-pin
/// differences are below the variation granularity the flow needs).
#[derive(Debug, Clone)]
pub struct TimingGraph<'a> {
    /// The underlying circuit.
    pub circuit: &'a Circuit,
    gate_delay: Vec<CanonicalForm>,
    load: Vec<f64>,
    clk_to_q: Vec<CanonicalForm>,
    setup: Vec<CanonicalForm>,
    hold: Vec<CanonicalForm>,
    topo: Vec<NodeId>,
    topo_pos: Vec<u32>,
}

impl<'a> TimingGraph<'a> {
    /// Builds the timing graph.
    ///
    /// # Errors
    ///
    /// Fails when the circuit is malformed ([`Circuit::check`]) or
    /// references cells the library does not define.
    pub fn build(
        circuit: &'a Circuit,
        lib: &Library,
        model: &VariationModel,
    ) -> Result<Self, NetlistError> {
        circuit.check()?;
        circuit.validate_against(lib)?;

        let n = circuit.len();
        // Pin loads: sum of sink input caps plus wire cap per fanout.
        let mut load = vec![0.0f64; n];
        for id in circuit.node_ids() {
            let mut l = 0.0;
            for &sink in circuit.fanouts(id) {
                l += lib.wire_cap_per_fanout;
                l += match &circuit.node(sink).kind {
                    NodeKind::Gate { cell } => lib.cell(cell).expect("validated above").input_cap,
                    NodeKind::FlipFlop { cell } => lib.ff(cell).expect("validated").d_cap,
                    NodeKind::Output => PO_PIN_CAP,
                    NodeKind::Input => 0.0,
                };
            }
            load[id.index()] = l;
        }

        let mut gate_delay = vec![CanonicalForm::constant(0.0); n];
        for id in circuit.node_ids() {
            if let NodeKind::Gate { cell } = &circuit.node(id).kind {
                let c = lib.cell(cell).expect("validated");
                gate_delay[id.index()] = c.delay_canonical(load[id.index()], model);
            }
        }

        let nf = circuit.num_ffs();
        let mut clk_to_q = Vec::with_capacity(nf);
        let mut setup = Vec::with_capacity(nf);
        let mut hold = Vec::with_capacity(nf);
        for &ff in circuit.ff_ids() {
            let NodeKind::FlipFlop { cell } = &circuit.node(ff).kind else {
                unreachable!("ff_ids only contains flip-flops");
            };
            let def = lib.ff(cell).expect("validated");
            clk_to_q.push(def.clk_to_q_canonical(load[ff.index()], model));
            setup.push(def.setup_canonical(model));
            hold.push(def.hold_canonical(model));
        }

        let topo = circuit.topo_combinational()?;
        let mut topo_pos = vec![u32::MAX; n];
        for (i, id) in topo.iter().enumerate() {
            topo_pos[id.index()] = i as u32;
        }

        Ok(Self {
            circuit,
            gate_delay,
            load,
            clk_to_q,
            setup,
            hold,
            topo,
            topo_pos,
        })
    }

    /// Canonical delay of gate `id` (zero for non-gates).
    #[inline]
    pub fn gate_delay(&self, id: NodeId) -> &CanonicalForm {
        &self.gate_delay[id.index()]
    }

    /// Capacitive load driven by node `id` (fF).
    #[inline]
    pub fn load_of(&self, id: NodeId) -> f64 {
        self.load[id.index()]
    }

    /// Canonical clock-to-Q delay of FF `ff_idx` (dense index).
    #[inline]
    pub fn clk_to_q(&self, ff_idx: usize) -> &CanonicalForm {
        &self.clk_to_q[ff_idx]
    }

    /// Canonical setup time of FF `ff_idx`.
    #[inline]
    pub fn setup(&self, ff_idx: usize) -> &CanonicalForm {
        &self.setup[ff_idx]
    }

    /// Canonical hold time of FF `ff_idx`.
    #[inline]
    pub fn hold(&self, ff_idx: usize) -> &CanonicalForm {
        &self.hold[ff_idx]
    }

    /// Gates in combinational topological order.
    #[inline]
    pub fn topo(&self) -> &[NodeId] {
        &self.topo
    }

    /// Position of gate `id` in [`TimingGraph::topo`] (`u32::MAX` otherwise).
    #[inline]
    pub fn topo_pos(&self, id: NodeId) -> u32 {
        self.topo_pos[id.index()]
    }

    /// Number of flip-flops.
    #[inline]
    pub fn num_ffs(&self) -> usize {
        self.clk_to_q.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbi_netlist::bench_format::{parse_bench, EXAMPLE_BENCH};
    use psbi_netlist::bench_suite;

    fn setup_example() -> (Circuit, Library, VariationModel) {
        (
            parse_bench(EXAMPLE_BENCH).unwrap(),
            Library::industry_like(),
            VariationModel::paper_defaults(),
        )
    }

    #[test]
    fn builds_for_example() {
        let (c, lib, model) = setup_example();
        let tg = TimingGraph::build(&c, &lib, &model).unwrap();
        assert_eq!(tg.num_ffs(), 3);
        assert_eq!(tg.topo().len(), c.num_gates());
        // Every gate delay is positive with variation.
        for id in c.node_ids() {
            if c.node(id).kind.is_gate() {
                assert!(tg.gate_delay(id).mean() > 0.0);
                assert!(tg.gate_delay(id).sigma() > 0.0);
            }
        }
    }

    #[test]
    fn loads_accumulate_fanout() {
        let (c, lib, model) = setup_example();
        let tg = TimingGraph::build(&c, &lib, &model).unwrap();
        // F0 drives N1 (INV) and N5 (AND): load = caps + 2 wire segments.
        let f0 = c.by_name("F0").unwrap();
        let expect = lib.cell("INV_X1").unwrap().input_cap
            + lib.cell("AND2_X1").unwrap().input_cap
            + 2.0 * lib.wire_cap_per_fanout;
        assert!((tg.load_of(f0) - expect).abs() < 1e-12);
    }

    #[test]
    fn higher_load_means_higher_delay() {
        let (c, lib, model) = setup_example();
        let tg = TimingGraph::build(&c, &lib, &model).unwrap();
        // N5 (AND2) drives two sinks; N3 (NOR2) drives one.
        let n5 = c.by_name("N5").unwrap();
        assert!(tg.load_of(n5) > 0.0);
    }

    #[test]
    fn ff_quantities_present() {
        let (c, lib, model) = setup_example();
        let tg = TimingGraph::build(&c, &lib, &model).unwrap();
        for i in 0..tg.num_ffs() {
            assert!(tg.clk_to_q(i).mean() > 0.0);
            assert!(tg.setup(i).mean() > 0.0);
            assert!(tg.hold(i).mean() > 0.0);
        }
    }

    #[test]
    fn topo_pos_is_consistent() {
        let (c, lib, model) = setup_example();
        let tg = TimingGraph::build(&c, &lib, &model).unwrap();
        for (i, id) in tg.topo().iter().enumerate() {
            assert_eq!(tg.topo_pos(*id), i as u32);
        }
        let f0 = c.by_name("F0").unwrap();
        assert_eq!(tg.topo_pos(f0), u32::MAX);
    }

    #[test]
    fn unknown_cell_fails() {
        let mut c = Circuit::new("bad");
        let a = c.add_input("a");
        let g = c.add_gate("g", "NOT_A_CELL", &[a]);
        c.add_output("o", g);
        let lib = Library::industry_like();
        let model = VariationModel::paper_defaults();
        assert!(TimingGraph::build(&c, &lib, &model).is_err());
    }

    #[test]
    fn builds_for_generated_circuit() {
        let c = bench_suite::small_demo(1);
        let lib = Library::industry_like();
        let model = VariationModel::paper_defaults();
        let tg = TimingGraph::build(&c, &lib, &model).unwrap();
        assert_eq!(tg.num_ffs(), c.num_ffs());
    }
}
