//! Monte-Carlo chip sampling: concrete per-edge delays for one sample.
//!
//! Two samplers produce the same [`SampleTiming`] layout:
//!
//! * [`sample_canonical`] draws each sequential edge's min/max delay from
//!   its canonical form — `O(edges)` per sample, the default mode;
//! * [`GateLevelSampler`] draws every *gate* delay and re-propagates
//!   min/max path delays numerically through the cones — the exact
//!   reference mode (ablation A3 in `DESIGN.md` quantifies the difference).
//!
//! Delays are clamped to be non-negative and `min ≤ max` is enforced (the
//! canonical mode draws the two forms with independent local terms, so rare
//! crossings are possible and physically meaningless).

use crate::graph::TimingGraph;
use crate::seq::SequentialGraph;
use psbi_variation::normal::draw_standard_normal;
use psbi_variation::GlobalSample;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Concrete timing values of one manufactured chip.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleTiming {
    /// Max path delay per sequential edge (same order as
    /// [`SequentialGraph::edges`]).
    pub edge_max: Vec<f64>,
    /// Min path delay per sequential edge.
    pub edge_min: Vec<f64>,
    /// Setup time per FF.
    pub setup: Vec<f64>,
    /// Hold time per FF.
    pub hold: Vec<f64>,
}

impl SampleTiming {
    /// Pre-sizes the buffers for a graph.
    pub fn for_graph(sg: &SequentialGraph) -> Self {
        Self {
            edge_max: vec![0.0; sg.edges.len()],
            edge_min: vec![0.0; sg.edges.len()],
            setup: vec![0.0; sg.n_ffs],
            hold: vec![0.0; sg.n_ffs],
        }
    }
}

/// Draws one chip from the canonical edge forms (fast path).
pub fn sample_canonical<R: Rng + ?Sized>(
    sg: &SequentialGraph,
    globals: &GlobalSample,
    rng: &mut R,
    out: &mut SampleTiming,
) {
    out.edge_max.resize(sg.edges.len(), 0.0);
    out.edge_min.resize(sg.edges.len(), 0.0);
    out.setup.resize(sg.n_ffs, 0.0);
    out.hold.resize(sg.n_ffs, 0.0);
    for (e, edge) in sg.edges.iter().enumerate() {
        let dmax = edge.max_delay.sample(globals, rng).max(0.0);
        let dmin = edge.min_delay.sample(globals, rng).max(0.0);
        out.edge_max[e] = dmax.max(dmin);
        out.edge_min[e] = dmin.min(dmax);
    }
    for i in 0..sg.n_ffs {
        out.setup[i] = sg.setup[i].sample(globals, rng).max(0.0);
        out.hold[i] = sg.hold[i].sample(globals, rng).max(0.0);
    }
}

/// Exact gate-level sampler: draws every gate delay and propagates.
///
/// Holds reusable workspaces; create once per worker thread.
#[derive(Debug)]
pub struct GateLevelSampler {
    gate_val: Vec<f64>,
    clkq_val: Vec<f64>,
    arr_max: Vec<f64>,
    arr_min: Vec<f64>,
    mark: Vec<u32>,
}

impl GateLevelSampler {
    /// Creates workspaces sized for `tg`.
    pub fn new(tg: &TimingGraph<'_>) -> Self {
        let n = tg.circuit.len();
        Self {
            gate_val: vec![0.0; n],
            clkq_val: vec![0.0; tg.num_ffs()],
            arr_max: vec![0.0; n],
            arr_min: vec![0.0; n],
            mark: vec![u32::MAX; n],
        }
    }

    /// Draws one chip at gate level.
    ///
    /// The sequential graph must have been extracted from the same timing
    /// graph (edge order follows its cone traversal).
    pub fn sample<R: Rng + ?Sized>(
        &mut self,
        tg: &TimingGraph<'_>,
        sg: &SequentialGraph,
        globals: &GlobalSample,
        rng: &mut R,
        out: &mut SampleTiming,
    ) {
        let circuit = tg.circuit;
        out.edge_max.resize(sg.edges.len(), 0.0);
        out.edge_min.resize(sg.edges.len(), 0.0);
        out.setup.resize(sg.n_ffs, 0.0);
        out.hold.resize(sg.n_ffs, 0.0);

        for &g in tg.topo() {
            self.gate_val[g.index()] = tg.gate_delay(g).sample(globals, rng).max(0.0);
        }
        for i in 0..sg.n_ffs {
            self.clkq_val[i] = tg.clk_to_q(i).sample(globals, rng).max(0.0);
            out.setup[i] = sg.setup[i].sample(globals, rng).max(0.0);
            out.hold[i] = sg.hold[i].sample(globals, rng).max(0.0);
        }

        self.mark.fill(u32::MAX);
        let mut edge_cursor = 0usize;
        for i in 0..sg.n_ffs {
            let stamp = i as u32;
            let ff_node = circuit.ff_ids()[i];
            self.mark[ff_node.index()] = stamp;
            self.arr_max[ff_node.index()] = self.clkq_val[i];
            self.arr_min[ff_node.index()] = self.clkq_val[i];
            let cone = sg.cones().cone(i);
            for &g in &cone.gates {
                let mut mx = f64::NEG_INFINITY;
                let mut mn = f64::INFINITY;
                for &f in circuit.fanins(g) {
                    if self.mark[f.index()] == stamp {
                        mx = mx.max(self.arr_max[f.index()]);
                        mn = mn.min(self.arr_min[f.index()]);
                    }
                }
                debug_assert!(mx.is_finite(), "cone gate without reachable fanin");
                let d = self.gate_val[g.index()];
                self.arr_max[g.index()] = mx + d;
                self.arr_min[g.index()] = mn + d;
                self.mark[g.index()] = stamp;
            }
            for &(_, driver) in &cone.sinks {
                out.edge_max[edge_cursor] = self.arr_max[driver.index()];
                out.edge_min[edge_cursor] = self.arr_min[driver.index()];
                edge_cursor += 1;
            }
        }
        debug_assert_eq!(edge_cursor, sg.edges.len());
    }
}

/// Draws the global parameter deviations for sample `index` of a run and
/// returns the per-sample RNG for the local terms.
pub fn chip_rng(base_seed: u64, index: u64) -> (GlobalSample, rand::rngs::StdRng) {
    let mut rng = psbi_variation::sample_rng(base_seed, index);
    let mut globals = GlobalSample::default();
    for d in &mut globals.delta {
        *d = draw_standard_normal(&mut rng);
    }
    (globals, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TimingGraph;
    use psbi_liberty::Library;
    use psbi_netlist::bench_suite;
    use psbi_variation::VariationModel;

    struct Fixture {
        circuit: psbi_netlist::Circuit,
        lib: Library,
        model: VariationModel,
    }

    impl Fixture {
        fn new(seed: u64) -> Self {
            Self {
                circuit: bench_suite::tiny_demo(seed),
                lib: Library::industry_like(),
                model: VariationModel::paper_defaults(),
            }
        }
    }

    #[test]
    fn canonical_sampling_respects_order_invariants() {
        let fx = Fixture::new(1);
        let tg = TimingGraph::build(&fx.circuit, &fx.lib, &fx.model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let mut st = SampleTiming::for_graph(&sg);
        for k in 0..50 {
            let (globals, mut rng) = chip_rng(42, k);
            sample_canonical(&sg, &globals, &mut rng, &mut st);
            for e in 0..sg.edges.len() {
                assert!(st.edge_max[e] >= st.edge_min[e]);
                assert!(st.edge_min[e] >= 0.0);
            }
            for i in 0..sg.n_ffs {
                assert!(st.setup[i] > 0.0);
                assert!(st.hold[i] >= 0.0);
            }
        }
    }

    #[test]
    fn gate_level_sampling_matches_structure() {
        let fx = Fixture::new(2);
        let tg = TimingGraph::build(&fx.circuit, &fx.lib, &fx.model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let mut sampler = GateLevelSampler::new(&tg);
        let mut st = SampleTiming::for_graph(&sg);
        let (globals, mut rng) = chip_rng(7, 0);
        sampler.sample(&tg, &sg, &globals, &mut rng, &mut st);
        assert_eq!(st.edge_max.len(), sg.edges.len());
        for e in 0..sg.edges.len() {
            assert!(st.edge_max[e] >= st.edge_min[e] - 1e-9);
        }
    }

    #[test]
    fn canonical_matches_gate_level_statistics() {
        // The canonical (SSTA) edge forms should reproduce the gate-level
        // Monte-Carlo mean and sigma of each edge's max delay within a few
        // percent (Clark's approximation).
        let fx = Fixture::new(3);
        let tg = TimingGraph::build(&fx.circuit, &fx.lib, &fx.model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let n = 20_000usize;
        let mut sampler = GateLevelSampler::new(&tg);
        let mut st = SampleTiming::for_graph(&sg);
        let ne = sg.edges.len();
        let mut sum = vec![0.0; ne];
        let mut sum2 = vec![0.0; ne];
        for k in 0..n {
            let (globals, mut rng) = chip_rng(11, k as u64);
            sampler.sample(&tg, &sg, &globals, &mut rng, &mut st);
            for e in 0..ne {
                sum[e] += st.edge_max[e];
                sum2[e] += st.edge_max[e] * st.edge_max[e];
            }
        }
        for e in 0..ne {
            let mc_mean = sum[e] / n as f64;
            let mc_var = (sum2[e] / n as f64 - mc_mean * mc_mean).max(0.0);
            let canon = &sg.edges[e].max_delay;
            let dm = (canon.mean() - mc_mean).abs() / mc_mean;
            assert!(dm < 0.04, "edge {e}: mean {} vs MC {}", canon.mean(), mc_mean);
            let ds = (canon.sigma() - mc_var.sqrt()).abs() / mc_mean;
            assert!(
                ds < 0.05,
                "edge {e}: sigma {} vs MC {}",
                canon.sigma(),
                mc_var.sqrt()
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let fx = Fixture::new(4);
        let tg = TimingGraph::build(&fx.circuit, &fx.lib, &fx.model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let mut a = SampleTiming::for_graph(&sg);
        let mut b = SampleTiming::for_graph(&sg);
        let (g1, mut r1) = chip_rng(5, 9);
        let (g2, mut r2) = chip_rng(5, 9);
        sample_canonical(&sg, &g1, &mut r1, &mut a);
        sample_canonical(&sg, &g2, &mut r2, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn global_shift_moves_all_edges() {
        // A strongly positive global sample should push essentially every
        // edge above its mean.
        let fx = Fixture::new(5);
        let tg = TimingGraph::build(&fx.circuit, &fx.lib, &fx.model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let mut st = SampleTiming::for_graph(&sg);
        let globals = GlobalSample { delta: [3.0, 3.0, 3.0] };
        let mut rng = psbi_variation::sample_rng(1, 1);
        sample_canonical(&sg, &globals, &mut rng, &mut st);
        let above = (0..sg.edges.len())
            .filter(|&e| st.edge_max[e] > sg.edges[e].max_delay.mean())
            .count();
        assert!(above as f64 > 0.9 * sg.edges.len() as f64);
    }
}
