//! Incremental-solve parity regression: carrying per-chip solver state
//! (region decompositions, support sets, warm witnesses) across the
//! A1→A3→B1→B2 passes — and across adjacent targets of a fleet sweep —
//! must be **bit-invisible**.  Every surface the flow produces is compared
//! with the cache on versus off, at 1 and 8 workers:
//!
//! * full `InsertionResult`s (modulo wall times and the cache's own
//!   counters, which are non-canonical by contract),
//! * fleet journal bytes and canonical report bytes.
//!
//! The `PSBI_NO_INCREMENTAL=1` environment form of the same contract is
//! pinned by the CI determinism job (the env flag is read once per
//! process, so this in-process test uses the equivalent config/option
//! knobs instead).

use psbi::core::flow::{BufferInsertionFlow, FlowConfig, InsertionResult, TargetPeriod};
use psbi::fleet::{run_campaign, CampaignReport, CampaignSpec, FleetOptions};
use psbi::netlist::bench_suite;
use std::path::PathBuf;

/// Strips the non-canonical surfaces: wall times always differ between
/// runs, and the cache counters differ between modes by definition.
fn normalized(mut r: InsertionResult) -> InsertionResult {
    r.runtime = Default::default();
    r.diagnostics = Default::default();
    r
}

#[test]
fn full_flow_is_bit_identical_with_incremental_on_and_off() {
    let circuit = bench_suite::tiny_demo(42);
    let cfg = |threads: usize, incremental: bool| FlowConfig {
        samples: 160,
        yield_samples: 300,
        calibration_samples: 300,
        seed: 2024,
        threads,
        target: TargetPeriod::SigmaFactor(0.0),
        record_histograms: 2,
        incremental,
        ..FlowConfig::default()
    };
    // One warm flow swept over adjacent targets (its state arena carries
    // across run_target calls) versus cold flows, at both worker counts.
    let warm1 = BufferInsertionFlow::new(&circuit, cfg(1, true)).unwrap();
    let warm8 = BufferInsertionFlow::new(&circuit, cfg(8, true)).unwrap();
    let cold1 = BufferInsertionFlow::new(&circuit, cfg(1, false)).unwrap();
    let mut reused = 0u64;
    for k in [0.0, 0.5, 1.0] {
        let target = TargetPeriod::SigmaFactor(k);
        let w1 = warm1.run_target(target);
        let w8 = warm8.run_target(target);
        let c1 = cold1.run_target(target);
        reused += w1.diagnostics.total().regions_reused + w1.diagnostics.total().supports_rehit;
        let reference = normalized(c1);
        assert_eq!(
            normalized(w1),
            reference,
            "incremental (1 worker) diverged from cold at k = {k}"
        );
        assert_eq!(
            normalized(w8),
            reference,
            "incremental (8 workers) diverged from cold at k = {k}"
        );
    }
    assert!(reused > 0, "the warm sweep never exercised the cache");
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "psbi_incremental_parity_{tag}_{}",
        std::process::id()
    ))
}

#[test]
fn fleet_journal_bytes_are_identical_with_incremental_on_and_off() {
    let spec = CampaignSpec {
        samples: 100,
        yield_samples: 200,
        calibration_samples: 200,
        seed: 2024,
        // Adjacent sigma factors so the sweep actually revisits warm
        // state between targets of one circuit.
        sigma_factors: vec![0.0, 0.25, 0.5],
        ..CampaignSpec::example()
    };
    let opts = |workers: usize, incremental: bool| FleetOptions {
        workers,
        incremental,
        ..FleetOptions::default()
    };
    let mut journals: Vec<(PathBuf, Vec<u8>, String)> = Vec::new();
    for (tag, workers, incremental) in [
        ("on_w1", 1, true),
        ("on_w8", 8, true),
        ("off_w1", 1, false),
        ("off_w8", 8, false),
    ] {
        let path = tmp(tag);
        let _ = std::fs::remove_file(&path);
        let outcome =
            run_campaign(&spec, &path, &opts(workers, incremental)).expect("campaign runs");
        assert!(outcome.complete());
        let report = CampaignReport::from_outcome(&spec, &outcome).canonical_json();
        let bytes = std::fs::read(&path).expect("journal written");
        journals.push((path, bytes, report));
    }
    let (_, reference_bytes, reference_report) = &journals[0];
    for (path, bytes, report) in &journals[1..] {
        assert_eq!(
            bytes,
            reference_bytes,
            "journal bytes differ: {}",
            path.display()
        );
        assert_eq!(report, reference_report, "canonical report differs");
    }
    for (path, _, _) in &journals {
        let _ = std::fs::remove_file(path);
    }
}
