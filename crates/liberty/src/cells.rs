//! Cell and flip-flop definitions plus the [`Library`] container.

use psbi_variation::{CanonicalForm, VariationModel, N_PARAMS};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Logic function implemented by a combinational cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CellFunction {
    Inv,
    Buf,
    Nand,
    Nor,
    And,
    Or,
    Xor,
    Xnor,
    Aoi,
    Oai,
    Mux,
}

impl CellFunction {
    /// Canonical upper-case token used by the text format.
    pub fn token(self) -> &'static str {
        match self {
            CellFunction::Inv => "INV",
            CellFunction::Buf => "BUF",
            CellFunction::Nand => "NAND",
            CellFunction::Nor => "NOR",
            CellFunction::And => "AND",
            CellFunction::Or => "OR",
            CellFunction::Xor => "XOR",
            CellFunction::Xnor => "XNOR",
            CellFunction::Aoi => "AOI",
            CellFunction::Oai => "OAI",
            CellFunction::Mux => "MUX",
        }
    }

    /// Parses a token produced by [`CellFunction::token`].
    pub fn from_token(s: &str) -> Option<Self> {
        Some(match s {
            "INV" => CellFunction::Inv,
            "BUF" => CellFunction::Buf,
            "NAND" => CellFunction::Nand,
            "NOR" => CellFunction::Nor,
            "AND" => CellFunction::And,
            "OR" => CellFunction::Or,
            "XOR" => CellFunction::Xor,
            "XNOR" => CellFunction::Xnor,
            "AOI" => CellFunction::Aoi,
            "OAI" => CellFunction::Oai,
            "MUX" => CellFunction::Mux,
            _ => return None,
        })
    }

    /// Whether the function is inverting (useful for logic-level reasoning).
    pub fn inverting(self) -> bool {
        matches!(
            self,
            CellFunction::Inv
                | CellFunction::Nand
                | CellFunction::Nor
                | CellFunction::Xnor
                | CellFunction::Aoi
                | CellFunction::Oai
        )
    }
}

impl std::fmt::Display for CellFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// A combinational standard cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellDef {
    /// Unique cell name, e.g. `NAND2_X1`.
    pub name: String,
    /// Logic function.
    pub function: CellFunction,
    /// Number of data inputs.
    pub inputs: u8,
    /// Load-independent delay component (ps).
    pub intrinsic: f64,
    /// Delay per unit load (ps/fF).
    pub drive: f64,
    /// Input pin capacitance (fF), assumed equal for all inputs.
    pub input_cap: f64,
    /// Dimensionless sensitivities of delay to relative change of each
    /// process parameter, in [`psbi_variation::ProcessParam::ALL`] order.
    pub sens: [f64; N_PARAMS],
}

impl CellDef {
    /// Nominal delay (ps) when driving `load` fF.
    ///
    /// ```
    /// # use psbi_liberty::Library;
    /// let lib = Library::industry_like();
    /// let c = lib.cell("INV_X1").unwrap();
    /// assert!(c.delay(4.0) > c.delay(1.0));
    /// ```
    #[inline]
    pub fn delay(&self, load: f64) -> f64 {
        self.intrinsic + self.drive * load
    }

    /// Canonical first-order delay form under a variation model.
    ///
    /// Global sensitivities carry the die-to-die share of each parameter's
    /// variance; the within-die share of all three parameters is pooled into
    /// the independent term.
    pub fn delay_canonical(&self, load: f64, model: &VariationModel) -> CanonicalForm {
        canonical_of(self.delay(load), &self.sens, model)
    }
}

/// A D flip-flop definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlipFlopDef {
    /// Unique flip-flop name, e.g. `DFF_X1`.
    pub name: String,
    /// Nominal setup time (ps).
    pub setup: f64,
    /// Nominal hold time (ps).
    pub hold: f64,
    /// Load-independent clock-to-Q delay (ps).
    pub clk_to_q: f64,
    /// Clock-to-Q delay per unit load (ps/fF).
    pub drive: f64,
    /// Data pin capacitance (fF).
    pub d_cap: f64,
    /// Clock pin capacitance (fF).
    pub clk_cap: f64,
    /// Delay/constraint sensitivities, as for [`CellDef::sens`].
    pub sens: [f64; N_PARAMS],
}

impl FlipFlopDef {
    /// Nominal clock-to-Q delay (ps) when driving `load` fF.
    #[inline]
    pub fn clk_to_q_delay(&self, load: f64) -> f64 {
        self.clk_to_q + self.drive * load
    }

    /// Canonical clock-to-Q delay form.
    pub fn clk_to_q_canonical(&self, load: f64, model: &VariationModel) -> CanonicalForm {
        canonical_of(self.clk_to_q_delay(load), &self.sens, model)
    }

    /// Canonical setup-time form.
    pub fn setup_canonical(&self, model: &VariationModel) -> CanonicalForm {
        canonical_of(self.setup, &self.sens, model)
    }

    /// Canonical hold-time form.
    pub fn hold_canonical(&self, model: &VariationModel) -> CanonicalForm {
        canonical_of(self.hold, &self.sens, model)
    }
}

/// Builds `nominal · (1 + Σ_p s_p σ_p δ_p)` as a canonical form, splitting
/// each parameter into its global and local components.
fn canonical_of(nominal: f64, sens: &[f64; N_PARAMS], model: &VariationModel) -> CanonicalForm {
    let mut gsens = [0.0; N_PARAMS];
    let mut local_var = 0.0;
    for (i, p) in psbi_variation::ProcessParam::ALL.iter().enumerate() {
        let scale = nominal * sens[i];
        gsens[i] = scale * model.global_sigma(*p);
        let l = scale * model.local_sigma(*p);
        local_var += l * l;
    }
    CanonicalForm::with_parts(nominal, gsens, local_var.sqrt())
}

/// Errors produced when validating a [`Library`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LibraryError {
    /// Two cells or flip-flops share a name.
    DuplicateName(String),
    /// A numeric field is invalid (negative or non-finite).
    InvalidField {
        /// Owning cell name.
        cell: String,
        /// Field name.
        field: &'static str,
    },
    /// The library has no flip-flop, which a sequential flow needs.
    NoFlipFlop,
    /// The library has no combinational cell.
    NoCell,
}

impl std::fmt::Display for LibraryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LibraryError::DuplicateName(n) => write!(f, "duplicate cell name `{n}`"),
            LibraryError::InvalidField { cell, field } => {
                write!(f, "invalid value for field `{field}` of cell `{cell}`")
            }
            LibraryError::NoFlipFlop => write!(f, "library defines no flip-flop"),
            LibraryError::NoCell => write!(f, "library defines no combinational cell"),
        }
    }
}

impl std::error::Error for LibraryError {}

/// A complete cell library.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Library {
    /// Library name.
    pub name: String,
    /// Estimated wire capacitance added per fanout connection (fF).
    pub wire_cap_per_fanout: f64,
    cells: Vec<CellDef>,
    ffs: Vec<FlipFlopDef>,
    #[serde(skip)]
    index: HashMap<String, usize>,
    #[serde(skip)]
    ff_index: HashMap<String, usize>,
}

impl Library {
    /// Creates an empty library.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            wire_cap_per_fanout: 0.0,
            cells: Vec::new(),
            ffs: Vec::new(),
            index: HashMap::new(),
            ff_index: HashMap::new(),
        }
    }

    /// Adds a combinational cell.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::DuplicateName`] if the name is taken and
    /// [`LibraryError::InvalidField`] for non-finite or negative numbers.
    pub fn add_cell(&mut self, cell: CellDef) -> Result<(), LibraryError> {
        validate_num(&cell.name, "intrinsic", cell.intrinsic)?;
        validate_num(&cell.name, "drive", cell.drive)?;
        validate_num(&cell.name, "input_cap", cell.input_cap)?;
        for s in cell.sens {
            // Sensitivities may legitimately be negative; only reject NaN/inf.
            if !s.is_finite() {
                return Err(LibraryError::InvalidField {
                    cell: cell.name,
                    field: "sens",
                });
            }
        }
        if self.index.contains_key(&cell.name) || self.ff_index.contains_key(&cell.name) {
            return Err(LibraryError::DuplicateName(cell.name));
        }
        self.index.insert(cell.name.clone(), self.cells.len());
        self.cells.push(cell);
        Ok(())
    }

    /// Adds a flip-flop definition.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Library::add_cell`].
    pub fn add_ff(&mut self, ff: FlipFlopDef) -> Result<(), LibraryError> {
        validate_num(&ff.name, "setup", ff.setup)?;
        validate_num(&ff.name, "hold", ff.hold)?;
        validate_num(&ff.name, "clk_to_q", ff.clk_to_q)?;
        validate_num(&ff.name, "drive", ff.drive)?;
        validate_num(&ff.name, "d_cap", ff.d_cap)?;
        validate_num(&ff.name, "clk_cap", ff.clk_cap)?;
        if self.index.contains_key(&ff.name) || self.ff_index.contains_key(&ff.name) {
            return Err(LibraryError::DuplicateName(ff.name));
        }
        self.ff_index.insert(ff.name.clone(), self.ffs.len());
        self.ffs.push(ff);
        Ok(())
    }

    /// Looks up a combinational cell by name.
    pub fn cell(&self, name: &str) -> Option<&CellDef> {
        self.index.get(name).map(|&i| &self.cells[i])
    }

    /// Looks up a flip-flop by name.
    pub fn ff(&self, name: &str) -> Option<&FlipFlopDef> {
        self.ff_index.get(name).map(|&i| &self.ffs[i])
    }

    /// All combinational cells.
    pub fn cells(&self) -> &[CellDef] {
        &self.cells
    }

    /// All flip-flop definitions.
    pub fn ffs(&self) -> &[FlipFlopDef] {
        &self.ffs
    }

    /// The default flip-flop (the first defined one).
    pub fn default_ff(&self) -> Option<&FlipFlopDef> {
        self.ffs.first()
    }

    /// Checks library-level invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), LibraryError> {
        if self.cells.is_empty() {
            return Err(LibraryError::NoCell);
        }
        if self.ffs.is_empty() {
            return Err(LibraryError::NoFlipFlop);
        }
        Ok(())
    }

    /// Rebuilds the name indices (needed after deserialisation).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), i))
            .collect();
        self.ff_index = self
            .ffs
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), i))
            .collect();
    }

    /// The built-in "industry-like" library used by all experiments.
    ///
    /// Fourteen cells spanning the usual functions and two drive strengths,
    /// plus one DFF.  Numbers are representative of a mature planar node
    /// (delays of tens of ps, pin caps around 1–2 fF) — only the induced
    /// delay *distributions* matter to the insertion flow.
    pub fn industry_like() -> Self {
        let mut lib = Self::new("industry_like");
        lib.wire_cap_per_fanout = 0.6;
        let cells = [
            // name, function, inputs, intrinsic, drive, input_cap, sens(L, tox, vth)
            (
                "INV_X1",
                CellFunction::Inv,
                1,
                9.0,
                5.5,
                1.0,
                [0.95, 0.40, 0.62],
            ),
            (
                "INV_X2",
                CellFunction::Inv,
                1,
                8.0,
                3.0,
                1.8,
                [0.95, 0.40, 0.62],
            ),
            (
                "BUF_X1",
                CellFunction::Buf,
                1,
                16.0,
                5.0,
                1.0,
                [0.92, 0.38, 0.60],
            ),
            (
                "NAND2_X1",
                CellFunction::Nand,
                2,
                14.0,
                6.5,
                1.2,
                [0.98, 0.42, 0.66],
            ),
            (
                "NAND3_X1",
                CellFunction::Nand,
                3,
                19.0,
                7.5,
                1.3,
                [1.00, 0.43, 0.68],
            ),
            (
                "NOR2_X1",
                CellFunction::Nor,
                2,
                16.0,
                7.0,
                1.2,
                [1.00, 0.42, 0.70],
            ),
            (
                "NOR3_X1",
                CellFunction::Nor,
                3,
                22.0,
                8.5,
                1.3,
                [1.02, 0.44, 0.72],
            ),
            (
                "AND2_X1",
                CellFunction::And,
                2,
                20.0,
                6.0,
                1.1,
                [0.95, 0.40, 0.64],
            ),
            (
                "OR2_X1",
                CellFunction::Or,
                2,
                21.0,
                6.2,
                1.1,
                [0.96, 0.41, 0.66],
            ),
            (
                "XOR2_X1",
                CellFunction::Xor,
                2,
                26.0,
                8.0,
                1.6,
                [1.05, 0.45, 0.72],
            ),
            (
                "XNOR2_X1",
                CellFunction::Xnor,
                2,
                27.0,
                8.0,
                1.6,
                [1.05, 0.45, 0.72],
            ),
            (
                "AOI21_X1",
                CellFunction::Aoi,
                3,
                18.0,
                7.8,
                1.3,
                [1.02, 0.43, 0.70],
            ),
            (
                "OAI21_X1",
                CellFunction::Oai,
                3,
                18.5,
                7.8,
                1.3,
                [1.02, 0.43, 0.70],
            ),
            (
                "MUX2_X1",
                CellFunction::Mux,
                3,
                24.0,
                7.0,
                1.4,
                [1.00, 0.42, 0.68],
            ),
        ];
        for (name, function, inputs, intrinsic, drive, input_cap, sens) in cells {
            lib.add_cell(CellDef {
                name: name.to_string(),
                function,
                inputs,
                intrinsic,
                drive,
                input_cap,
                sens,
            })
            .expect("built-in cells are valid");
        }
        lib.add_ff(FlipFlopDef {
            name: "DFF_X1".to_string(),
            setup: 22.0,
            hold: 6.0,
            clk_to_q: 34.0,
            drive: 6.0,
            d_cap: 1.3,
            clk_cap: 1.1,
            sens: [0.90, 0.40, 0.62],
        })
        .expect("built-in ff is valid");
        lib
    }
}

fn validate_num(cell: &str, field: &'static str, v: f64) -> Result<(), LibraryError> {
    if v.is_finite() && v >= 0.0 {
        Ok(())
    } else {
        Err(LibraryError::InvalidField {
            cell: cell.to_string(),
            field,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_library_is_valid() {
        let lib = Library::industry_like();
        assert!(lib.validate().is_ok());
        assert!(lib.cells().len() >= 10);
        assert_eq!(lib.ffs().len(), 1);
        assert!(lib.cell("NAND2_X1").is_some());
        assert!(lib.ff("DFF_X1").is_some());
        assert!(lib.cell("DFF_X1").is_none());
        assert!(lib.default_ff().is_some());
    }

    #[test]
    fn delay_is_linear_in_load() {
        let lib = Library::industry_like();
        let c = lib.cell("NAND2_X1").unwrap();
        let d0 = c.delay(0.0);
        let d1 = c.delay(1.0);
        let d2 = c.delay(2.0);
        assert!((d2 - d1 - (d1 - d0)).abs() < 1e-12);
        assert_eq!(d0, c.intrinsic);
    }

    #[test]
    fn canonical_mean_matches_nominal() {
        let lib = Library::industry_like();
        let model = VariationModel::paper_defaults();
        for c in lib.cells() {
            let canon = c.delay_canonical(2.0, &model);
            assert!((canon.mean() - c.delay(2.0)).abs() < 1e-12, "{}", c.name);
            assert!(canon.sigma() > 0.0);
            // Relative sigma should be on the order of the parameter sigmas.
            let rel = canon.sigma() / canon.mean();
            assert!(rel > 0.05 && rel < 0.4, "{}: rel sigma {rel}", c.name);
        }
    }

    #[test]
    fn canonical_variance_split_respects_global_share() {
        let lib = Library::industry_like();
        let c = lib.cell("INV_X1").unwrap();
        let mut m = VariationModel::paper_defaults();
        m.global_share = 1.0;
        let canon = c.delay_canonical(1.0, &m);
        assert_eq!(canon.indep(), 0.0);
        m.global_share = 0.0;
        let canon = c.delay_canonical(1.0, &m);
        assert_eq!(canon.sensitivities(), &[0.0; 3]);
        assert!(canon.indep() > 0.0);
    }

    #[test]
    fn no_variation_model_gives_constant() {
        let lib = Library::industry_like();
        let c = lib.cell("INV_X1").unwrap();
        let canon = c.delay_canonical(1.0, &VariationModel::none());
        assert_eq!(canon.sigma(), 0.0);
    }

    #[test]
    fn ff_canonicals() {
        let lib = Library::industry_like();
        let model = VariationModel::paper_defaults();
        let ff = lib.ff("DFF_X1").unwrap();
        assert!((ff.setup_canonical(&model).mean() - 22.0).abs() < 1e-12);
        assert!((ff.hold_canonical(&model).mean() - 6.0).abs() < 1e-12);
        assert!(ff.clk_to_q_canonical(2.0, &model).mean() > ff.clk_to_q);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut lib = Library::industry_like();
        let c = lib.cell("INV_X1").unwrap().clone();
        assert!(matches!(
            lib.add_cell(c),
            Err(LibraryError::DuplicateName(_))
        ));
        let ff = FlipFlopDef {
            name: "INV_X1".into(),
            ..lib.ff("DFF_X1").unwrap().clone()
        };
        assert!(matches!(
            lib.add_ff(ff),
            Err(LibraryError::DuplicateName(_))
        ));
    }

    #[test]
    fn invalid_fields_rejected() {
        let mut lib = Library::new("t");
        let bad = CellDef {
            name: "X".into(),
            function: CellFunction::Inv,
            inputs: 1,
            intrinsic: -1.0,
            drive: 1.0,
            input_cap: 1.0,
            sens: [0.0; 3],
        };
        assert!(matches!(
            lib.add_cell(bad),
            Err(LibraryError::InvalidField { .. })
        ));
    }

    #[test]
    fn empty_library_fails_validation() {
        let lib = Library::new("empty");
        assert_eq!(lib.validate(), Err(LibraryError::NoCell));
    }

    #[test]
    fn function_tokens_round_trip() {
        use CellFunction::*;
        for f in [Inv, Buf, Nand, Nor, And, Or, Xor, Xnor, Aoi, Oai, Mux] {
            assert_eq!(CellFunction::from_token(f.token()), Some(f));
        }
        assert_eq!(CellFunction::from_token("BOGUS"), None);
        assert!(Nand.inverting());
        assert!(!Buf.inverting());
    }
}
