//! Locality-preserving grid placement of flip-flops.
//!
//! The grouping step (paper §III-C, Fig. 6) merges buffers only when the
//! Manhattan distance between their flip-flops is below ten times the
//! minimum flip-flop spacing.  This module assigns grid coordinates to the
//! flip-flops so that sequentially adjacent registers tend to sit close to
//! each other — a BFS over the sequential adjacency graph is laid out in
//! row-major snake order.

use crate::graph::{Circuit, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Flip-flop coordinates (indexed by dense FF index) plus the grid spacing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    coords: Vec<(f64, f64)>,
    /// Minimum spacing between two flip-flops (grid pitch).
    pub spacing: f64,
}

impl Placement {
    /// Places the circuit's flip-flops on a √n × √n grid in BFS order over
    /// the sequential adjacency graph (rows alternate direction so row
    /// breaks stay adjacent).
    pub fn grid(circuit: &Circuit, spacing: f64) -> Self {
        assert!(spacing > 0.0, "spacing must be positive");
        let n = circuit.num_ffs();
        let order = bfs_order(circuit);
        let side = (n as f64).sqrt().ceil() as usize;
        let mut coords = vec![(0.0, 0.0); n];
        for (pos, &ff_idx) in order.iter().enumerate() {
            let row = pos / side.max(1);
            let col_raw = pos % side.max(1);
            // Snake rows: odd rows run right-to-left.
            let col = if row.is_multiple_of(2) {
                col_raw
            } else {
                side - 1 - col_raw
            };
            coords[ff_idx] = (col as f64 * spacing, row as f64 * spacing);
        }
        Self { coords, spacing }
    }

    /// Number of placed flip-flops.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// True when nothing is placed.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Coordinates of FF `i` (dense FF index).
    pub fn coord(&self, i: usize) -> (f64, f64) {
        self.coords[i]
    }

    /// Manhattan distance between FFs `i` and `j`.
    ///
    /// ```
    /// # use psbi_netlist::{bench_suite, Placement};
    /// let c = bench_suite::tiny_demo(1);
    /// let p = Placement::grid(&c, 1.0);
    /// assert_eq!(p.manhattan(3, 3), 0.0);
    /// ```
    pub fn manhattan(&self, i: usize, j: usize) -> f64 {
        let (xi, yi) = self.coords[i];
        let (xj, yj) = self.coords[j];
        (xi - xj).abs() + (yi - yj).abs()
    }
}

/// Dense FF indices in BFS order over sequential adjacency (undirected).
fn bfs_order(circuit: &Circuit) -> Vec<usize> {
    let adj = sequential_adjacency(circuit);
    let n = adj.len();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for start in 0..n {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        let mut q = VecDeque::from([start]);
        while let Some(u) = q.pop_front() {
            order.push(u);
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    q.push_back(v);
                }
            }
        }
    }
    order
}

/// Undirected sequential adjacency between flip-flops: `i` and `j` are
/// adjacent when combinational logic connects `i`'s output to `j`'s input
/// (or vice versa).  Indices are dense FF indices.
pub fn sequential_adjacency(circuit: &Circuit) -> Vec<Vec<usize>> {
    let n = circuit.num_ffs();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    // For each FF sink, walk its input cone through gates to find sources.
    let mut seen = vec![u32::MAX; circuit.len()];
    for (j, &ff) in circuit.ff_ids().iter().enumerate() {
        let mark = j as u32;
        let mut stack: Vec<NodeId> = circuit.fanins(ff).to_vec();
        while let Some(node) = stack.pop() {
            if seen[node.index()] == mark {
                continue;
            }
            seen[node.index()] = mark;
            if circuit.node(node).kind.is_ff() {
                let i = circuit.ff_index(node).expect("ff node has dense index");
                if i != j {
                    adj[j].push(i);
                    adj[i].push(j);
                }
            } else if circuit.node(node).kind.is_gate() {
                stack.extend(circuit.fanins(node).iter().copied());
            }
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite;

    #[test]
    fn grid_has_unique_positions() {
        let c = bench_suite::small_demo(2);
        let p = Placement::grid(&c, 1.0);
        assert_eq!(p.len(), c.num_ffs());
        let mut seen = std::collections::HashSet::new();
        for i in 0..p.len() {
            let (x, y) = p.coord(i);
            assert!(seen.insert((x as i64, y as i64)), "duplicate position");
        }
    }

    #[test]
    fn manhattan_is_a_metric() {
        let c = bench_suite::tiny_demo(3);
        let p = Placement::grid(&c, 2.0);
        for i in 0..p.len().min(6) {
            assert_eq!(p.manhattan(i, i), 0.0);
            for j in 0..p.len().min(6) {
                assert_eq!(p.manhattan(i, j), p.manhattan(j, i));
                for k in 0..p.len().min(6) {
                    assert!(p.manhattan(i, k) <= p.manhattan(i, j) + p.manhattan(j, k) + 1e-9);
                }
            }
        }
    }

    #[test]
    fn sequential_neighbours_are_nearby_on_average() {
        let c = bench_suite::small_demo(4);
        let p = Placement::grid(&c, 1.0);
        let adj = sequential_adjacency(&c);
        let n = p.len();
        // Average distance between adjacent FFs should beat random pairs.
        let mut adj_sum = 0.0;
        let mut adj_cnt = 0usize;
        for (i, list) in adj.iter().enumerate() {
            for &j in list {
                adj_sum += p.manhattan(i, j);
                adj_cnt += 1;
            }
        }
        let mut all_sum = 0.0;
        let mut all_cnt = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                all_sum += p.manhattan(i, j);
                all_cnt += 1;
            }
        }
        let adj_avg = adj_sum / adj_cnt.max(1) as f64;
        let all_avg = all_sum / all_cnt.max(1) as f64;
        assert!(
            adj_avg < all_avg,
            "adjacent avg {adj_avg} should be below global avg {all_avg}"
        );
    }

    #[test]
    fn adjacency_is_symmetric_and_irreflexive() {
        let c = bench_suite::tiny_demo(5);
        let adj = sequential_adjacency(&c);
        for (i, list) in adj.iter().enumerate() {
            assert!(!list.contains(&i));
            for &j in list {
                assert!(adj[j].contains(&i));
            }
        }
    }

    #[test]
    #[should_panic(expected = "spacing must be positive")]
    fn zero_spacing_panics() {
        let c = bench_suite::tiny_demo(1);
        let _ = Placement::grid(&c, 0.0);
    }
}
