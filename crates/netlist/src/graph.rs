//! The circuit graph: nodes (inputs, outputs, gates, flip-flops) with
//! ordered fanins and derived fanouts.
//!
//! Nets are implicit: every gate/FF/input node drives one signal and any
//! number of sinks.  Flip-flops break timing paths; their `D` input is the
//! single fanin and their `Q` output is the node's output signal.  A single
//! global clock is assumed (clock skews are modelled separately in
//! [`crate::skew`]).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of a node inside a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Primary input.
    Input,
    /// Primary output (one fanin, no fanouts).
    Output,
    /// Combinational gate instantiating a library cell.
    Gate {
        /// Library cell name (e.g. `NAND2_X1`).
        cell: String,
    },
    /// Flip-flop instantiating a library sequential cell.
    FlipFlop {
        /// Library flip-flop name (e.g. `DFF_X1`).
        cell: String,
    },
}

impl NodeKind {
    /// True for [`NodeKind::FlipFlop`].
    pub fn is_ff(&self) -> bool {
        matches!(self, NodeKind::FlipFlop { .. })
    }

    /// True for [`NodeKind::Gate`].
    pub fn is_gate(&self) -> bool {
        matches!(self, NodeKind::Gate { .. })
    }
}

/// One node of the circuit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Unique signal name.
    pub name: String,
    /// Node kind.
    pub kind: NodeKind,
}

/// Errors raised by circuit construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A node name is used twice.
    DuplicateName(String),
    /// A referenced node does not exist.
    UnknownNode(String),
    /// A flip-flop's data input was connected twice.
    DataAlreadyConnected(String),
    /// Structural violation (wrong fanin count etc.).
    Malformed {
        /// Offending node name.
        node: String,
        /// Description of the violation.
        reason: String,
    },
    /// The combinational logic contains a cycle (not broken by a FF).
    CombinationalCycle {
        /// Name of a node on the cycle.
        witness: String,
    },
    /// A cell name could not be resolved against the library.
    UnknownCell {
        /// Offending node name.
        node: String,
        /// The unresolved cell name.
        cell: String,
    },
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetlistError::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            NetlistError::UnknownNode(n) => write!(f, "unknown node `{n}`"),
            NetlistError::DataAlreadyConnected(n) => {
                write!(f, "flip-flop `{n}` data input connected twice")
            }
            NetlistError::Malformed { node, reason } => {
                write!(f, "malformed node `{node}`: {reason}")
            }
            NetlistError::CombinationalCycle { witness } => {
                write!(f, "combinational cycle through `{witness}`")
            }
            NetlistError::UnknownCell { node, cell } => {
                write!(f, "node `{node}` references unknown cell `{cell}`")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// A gate-level sequential circuit.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Circuit {
    /// Design name.
    pub name: String,
    nodes: Vec<Node>,
    fanins: Vec<Vec<NodeId>>,
    fanouts: Vec<Vec<NodeId>>,
    by_name: HashMap<String, NodeId>,
    ffs: Vec<NodeId>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        assert!(
            !self.by_name.contains_key(&node.name),
            "duplicate node name `{}` (use try_* constructors for fallible insertion)",
            node.name
        );
        let id = NodeId(self.nodes.len() as u32);
        self.by_name.insert(node.name.clone(), id);
        if node.kind.is_ff() {
            self.ffs.push(id);
        }
        self.nodes.push(node);
        self.fanins.push(Vec::new());
        self.fanouts.push(Vec::new());
        id
    }

    /// Adds a primary input.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        self.push_node(Node {
            name: name.into(),
            kind: NodeKind::Input,
        })
    }

    /// Adds a primary output driven by `driver`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or an out-of-range driver.
    pub fn add_output(&mut self, name: impl Into<String>, driver: NodeId) -> NodeId {
        let id = self.push_node(Node {
            name: name.into(),
            kind: NodeKind::Output,
        });
        self.wire(driver, id);
        id
    }

    /// Adds a combinational gate with ordered fanins.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or out-of-range fanins.
    pub fn add_gate(&mut self, name: impl Into<String>, cell: &str, fanins: &[NodeId]) -> NodeId {
        let id = self.push_node(Node {
            name: name.into(),
            kind: NodeKind::Gate {
                cell: cell.to_string(),
            },
        });
        for &src in fanins {
            self.wire(src, id);
        }
        id
    }

    /// Adds a flip-flop; connect its data input later with
    /// [`Circuit::connect_ff_data`] (registers commonly sit in feedback
    /// loops, so the driver may not exist yet).
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn add_ff(&mut self, name: impl Into<String>, cell: &str) -> NodeId {
        self.push_node(Node {
            name: name.into(),
            kind: NodeKind::FlipFlop {
                cell: cell.to_string(),
            },
        })
    }

    /// Connects the D input of flip-flop `ff` to `driver`.
    ///
    /// # Errors
    ///
    /// Fails if `ff` is not a flip-flop or is already connected.
    pub fn connect_ff_data(&mut self, ff: NodeId, driver: NodeId) -> Result<(), NetlistError> {
        if !self.nodes[ff.index()].kind.is_ff() {
            return Err(NetlistError::Malformed {
                node: self.nodes[ff.index()].name.clone(),
                reason: "connect_ff_data target is not a flip-flop".into(),
            });
        }
        if !self.fanins[ff.index()].is_empty() {
            return Err(NetlistError::DataAlreadyConnected(
                self.nodes[ff.index()].name.clone(),
            ));
        }
        self.wire(driver, ff);
        Ok(())
    }

    fn wire(&mut self, from: NodeId, to: NodeId) {
        assert!(from.index() < self.nodes.len(), "fanin {from} out of range");
        self.fanins[to.index()].push(from);
        self.fanouts[from.index()].push(to);
    }

    /// Number of nodes (all kinds).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the circuit has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Looks a node up by name.
    pub fn by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Ordered fanins of `id` (for a FF: `[D]`).
    pub fn fanins(&self, id: NodeId) -> &[NodeId] {
        &self.fanins[id.index()]
    }

    /// Fanouts of `id`.
    pub fn fanouts(&self, id: NodeId) -> &[NodeId] {
        &self.fanouts[id.index()]
    }

    /// All node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All flip-flop ids in insertion order.
    pub fn ff_ids(&self) -> &[NodeId] {
        &self.ffs
    }

    /// Position of a FF in [`Circuit::ff_ids`], if `id` is a FF.
    pub fn ff_index(&self, id: NodeId) -> Option<usize> {
        // ffs is sorted by construction (push order == id order).
        self.ffs.binary_search(&id).ok()
    }

    /// Number of flip-flops (`ns` in the paper's Table I).
    pub fn num_ffs(&self) -> usize {
        self.ffs.len()
    }

    /// Number of combinational gates (`ng` in the paper's Table I).
    pub fn num_gates(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_gate()).count()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Input))
            .count()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Output))
            .count()
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::Malformed`] — a gate with no fanin, a FF without a
    ///   data driver, an output without exactly one driver, an input with
    ///   fanins;
    /// * [`NetlistError::CombinationalCycle`] — a cycle not broken by a FF.
    pub fn check(&self) -> Result<(), NetlistError> {
        for id in self.node_ids() {
            let node = self.node(id);
            let nin = self.fanins(id).len();
            match &node.kind {
                NodeKind::Input => {
                    if nin != 0 {
                        return Err(NetlistError::Malformed {
                            node: node.name.clone(),
                            reason: format!("primary input has {nin} fanins"),
                        });
                    }
                }
                NodeKind::Output => {
                    if nin != 1 {
                        return Err(NetlistError::Malformed {
                            node: node.name.clone(),
                            reason: format!("primary output has {nin} fanins, expected 1"),
                        });
                    }
                }
                NodeKind::Gate { .. } => {
                    if nin == 0 {
                        return Err(NetlistError::Malformed {
                            node: node.name.clone(),
                            reason: "gate has no fanins".into(),
                        });
                    }
                }
                NodeKind::FlipFlop { .. } => {
                    if nin != 1 {
                        return Err(NetlistError::Malformed {
                            node: node.name.clone(),
                            reason: format!("flip-flop has {nin} data fanins, expected 1"),
                        });
                    }
                }
            }
        }
        self.topo_combinational().map(|_| ())
    }

    /// Validates cell references against a library.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] for the first unresolved
    /// reference.
    pub fn validate_against(&self, lib: &psbi_liberty::Library) -> Result<(), NetlistError> {
        for id in self.node_ids() {
            let node = self.node(id);
            match &node.kind {
                NodeKind::Gate { cell } if lib.cell(cell).is_none() => {
                    return Err(NetlistError::UnknownCell {
                        node: node.name.clone(),
                        cell: cell.clone(),
                    });
                }
                NodeKind::FlipFlop { cell } if lib.ff(cell).is_none() => {
                    return Err(NetlistError::UnknownCell {
                        node: node.name.clone(),
                        cell: cell.clone(),
                    });
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Topological order of the *gate* nodes (flip-flops and inputs are
    /// sources, outputs are sinks; edges into FF data pins do not count).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the gates cannot be
    /// ordered.
    pub fn topo_combinational(&self) -> Result<Vec<NodeId>, NetlistError> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        for id in self.node_ids() {
            if self.node(id).kind.is_gate() {
                // Count only gate fanins: inputs and FF outputs are sources.
                indeg[id.index()] = self
                    .fanins(id)
                    .iter()
                    .filter(|f| self.node(**f).kind.is_gate())
                    .count();
                if indeg[id.index()] == 0 {
                    queue.push_back(id);
                }
            }
        }
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for &out in self.fanouts(id) {
                if self.node(out).kind.is_gate() {
                    indeg[out.index()] -= 1;
                    if indeg[out.index()] == 0 {
                        queue.push_back(out);
                    }
                }
            }
        }
        let total_gates = self.num_gates();
        if order.len() != total_gates {
            // Find a witness: any gate with nonzero remaining in-degree.
            let witness = self
                .node_ids()
                .find(|id| self.node(*id).kind.is_gate() && indeg[id.index()] > 0)
                .map(|id| self.node(id).name.clone())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalCycle { witness });
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> Circuit {
        let mut c = Circuit::new("p");
        let a = c.add_input("a");
        let f1 = c.add_ff("f1", "DFF_X1");
        let f2 = c.add_ff("f2", "DFF_X1");
        let g1 = c.add_gate("g1", "INV_X1", &[f1]);
        let g2 = c.add_gate("g2", "NAND2_X1", &[g1, a]);
        c.connect_ff_data(f2, g2).unwrap();
        c.connect_ff_data(f1, a).unwrap();
        c.add_output("o", f2);
        c
    }

    #[test]
    fn builds_and_checks() {
        let c = pipeline();
        assert!(c.check().is_ok());
        assert_eq!(c.num_ffs(), 2);
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.num_inputs(), 1);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.len(), 6);
        assert!(!c.is_empty());
    }

    #[test]
    fn name_lookup_and_fanio() {
        let c = pipeline();
        let g2 = c.by_name("g2").unwrap();
        assert_eq!(c.fanins(g2).len(), 2);
        assert_eq!(c.node(g2).name, "g2");
        let f2 = c.by_name("f2").unwrap();
        assert_eq!(c.fanins(f2), &[g2]);
        assert!(c.by_name("nope").is_none());
    }

    #[test]
    fn ff_index_is_dense() {
        let c = pipeline();
        let ids = c.ff_ids().to_vec();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(c.ff_index(*id), Some(i));
        }
        let a = c.by_name("a").unwrap();
        assert_eq!(c.ff_index(a), None);
    }

    #[test]
    fn topo_order_respects_edges() {
        let c = pipeline();
        let order = c.topo_combinational().unwrap();
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        let g1 = c.by_name("g1").unwrap();
        let g2 = c.by_name("g2").unwrap();
        assert!(pos[&g1] < pos[&g2]);
    }

    #[test]
    fn detects_combinational_cycle() {
        let mut c = Circuit::new("cyc");
        let a = c.add_input("a");
        // g1 and g2 feed each other: a combinational loop.
        let g1 = c.add_gate("g1", "NAND2_X1", &[a]);
        let g2 = c.add_gate("g2", "INV_X1", &[g1]);
        // Manually wire the loop edge g2 -> g1.
        c.fanins[g1.index()].push(g2);
        c.fanouts[g2.index()].push(g1);
        assert!(matches!(
            c.check(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn ff_feedback_is_not_a_cycle() {
        let mut c = Circuit::new("fb");
        let f = c.add_ff("f", "DFF_X1");
        let g = c.add_gate("g", "INV_X1", &[f]);
        c.connect_ff_data(f, g).unwrap();
        assert!(c.check().is_ok());
    }

    #[test]
    fn double_data_connect_fails() {
        let mut c = Circuit::new("d");
        let a = c.add_input("a");
        let f = c.add_ff("f", "DFF_X1");
        c.connect_ff_data(f, a).unwrap();
        assert!(matches!(
            c.connect_ff_data(f, a),
            Err(NetlistError::DataAlreadyConnected(_))
        ));
    }

    #[test]
    fn unconnected_ff_fails_check() {
        let mut c = Circuit::new("u");
        c.add_ff("f", "DFF_X1");
        assert!(matches!(c.check(), Err(NetlistError::Malformed { .. })));
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_name_panics() {
        let mut c = Circuit::new("dup");
        c.add_input("a");
        c.add_input("a");
    }

    #[test]
    fn validate_against_library() {
        let lib = psbi_liberty::Library::industry_like();
        let c = pipeline();
        assert!(c.validate_against(&lib).is_ok());
        let mut bad = Circuit::new("bad");
        let a = bad.add_input("a");
        bad.add_gate("g", "NO_SUCH_CELL", &[a]);
        assert!(matches!(
            bad.validate_against(&lib),
            Err(NetlistError::UnknownCell { .. })
        ));
    }
}
