use super::*;
use psbi_timing::seq::SeqEdge;
use psbi_variation::CanonicalForm;
use std::sync::Arc;

/// Builds a sequential graph with the given directed edges (delays are
/// irrelevant here: tests fill `IntegerConstraints` directly).
fn graph(n: usize, edges: &[(u32, u32)]) -> SequentialGraph {
    let seq_edges: Vec<SeqEdge> = edges
        .iter()
        .map(|(a, b)| SeqEdge {
            from: *a,
            to: *b,
            max_delay: CanonicalForm::constant(100.0),
            min_delay: CanonicalForm::constant(50.0),
        })
        .collect();
    SequentialGraph::from_parts(
        n,
        seq_edges,
        vec![CanonicalForm::constant(10.0); n],
        vec![CanonicalForm::constant(5.0); n],
    )
}

fn constraints(setup: &[i64], hold: &[i64]) -> IntegerConstraints {
    IntegerConstraints {
        setup_bound: setup.to_vec(),
        hold_bound: hold.to_vec(),
    }
}

/// Drives the unified entry point for the cold, stateless case the old
/// positional `solve` signature covered.
fn solve_plain(
    s: &mut SampleSolver,
    sg: &SequentialGraph,
    ic: &IntegerConstraints,
    space: &BufferSpace,
    push: PushObjective,
    opts: &SolverOptions,
) -> SampleResult {
    s.solve(SolveRequest::new(sg, ic.as_view(), space, push, opts))
        .result
}

/// `solve_view_cached`-shaped driver: a shared-epoch request with the
/// chip-state tier attached, counters merged into `diag`.
#[allow(clippy::too_many_arguments)]
fn solve_cached(
    s: &mut SampleSolver,
    sg: &SequentialGraph,
    ic: ConstraintsView<'_>,
    space: &Arc<BufferSpace>,
    push: PushObjective,
    opts: &SolverOptions,
    state: &mut ChipSolveState,
    diag: &mut PassDiagnostics,
) -> SampleResult {
    let out = s.solve(SolveRequest::shared(sg, ic, space, push, opts).state(state));
    diag.merge(&out.diag);
    out.result
}

/// `solve_view_memo`-shaped driver: optional memo / chip-state tiers.
#[allow(clippy::too_many_arguments)]
fn solve_memo(
    s: &mut SampleSolver,
    sg: &SequentialGraph,
    ic: ConstraintsView<'_>,
    space: &Arc<BufferSpace>,
    push: PushObjective,
    opts: &SolverOptions,
    memo: Option<&RegionMemo>,
    state: Option<&mut ChipSolveState>,
    diag: &mut PassDiagnostics,
) -> SampleResult {
    let mut req = SolveRequest::shared(sg, ic, space, push, opts);
    if let Some(m) = memo {
        req = req.memo(m);
    }
    if let Some(st) = state {
        req = req.state(st);
    }
    let out = s.solve(req);
    diag.merge(&out.diag);
    out.result
}

fn check_valid(
    sg: &SequentialGraph,
    ic: &IntegerConstraints,
    space: &BufferSpace,
    r: &SampleResult,
) {
    // Reconstruct the assignment and verify every constraint.
    let mut k = vec![0i64; sg.n_ffs];
    for (ff, v) in &r.tunings {
        assert!(space.has_buffer[*ff as usize], "tuned a bufferless FF");
        let (lo, hi) = space.bounds[*ff as usize];
        assert!(*v >= lo && *v <= hi, "tuning out of window");
        assert_ne!(*v, 0, "zero tunings must not be reported");
        k[*ff as usize] = *v;
    }
    for (e, edge) in sg.edges.iter().enumerate() {
        let (i, j) = (edge.from as usize, edge.to as usize);
        assert!(
            k[i] - k[j] <= ic.setup_bound[e],
            "setup violated on edge {e}: k={k:?}"
        );
        assert!(
            k[j] - k[i] <= ic.hold_bound[e],
            "hold violated on edge {e}: k={k:?}"
        );
    }
}

#[test]
fn no_violation_no_tuning() {
    let sg = graph(3, &[(0, 1), (1, 2)]);
    let ic = constraints(&[5, 3], &[2, 2]);
    let space = BufferSpace::floating(3, 20);
    let mut s = SampleSolver::new();
    let r = solve_plain(
        &mut s,
        &sg,
        &ic,
        &space,
        PushObjective::None,
        &SolverOptions::default(),
    );
    assert!(r.feasible && r.exact);
    assert!(r.tunings.is_empty());
}

#[test]
fn single_violation_needs_one_buffer() {
    let sg = graph(3, &[(0, 1), (1, 2)]);
    // Edge 0: k0 - k1 <= -3 → someone must move.
    let ic = constraints(&[-3, 5], &[5, 5]);
    let space = BufferSpace::floating(3, 20);
    let mut s = SampleSolver::new();
    let r = solve_plain(
        &mut s,
        &sg,
        &ic,
        &space,
        PushObjective::None,
        &SolverOptions::default(),
    );
    assert!(r.feasible && r.exact);
    assert_eq!(r.count(), 1, "tunings: {:?}", r.tunings);
    check_valid(&sg, &ic, &space, &r);
}

#[test]
fn chained_violation_forces_two_buffers() {
    // 0 → 1 → 2.  Setup on (0,1) needs k1 ≥ k0 + 3.  FF0 has no buffer
    // (k0 = 0) so k1 ≥ 3.  Hold on (1,2): k2 − k1 ≤ 0 would allow k2 = 3…
    // make setup on (1,2) force k2 ≥ k1 too: k1 − k2 ≤ 0; and give FF2 a
    // hold constraint on a self-edge… simpler: require k1 ≥ 3 and
    // k1 − k2 ≤ 0 is satisfied by k2 = 0? No: k1 − k2 = 3 > 0.  So k2 must
    // also rise → two buffers.
    let sg = graph(3, &[(0, 1), (1, 2)]);
    let ic = constraints(&[-3, 0], &[10, 10]);
    let mut space = BufferSpace::floating(3, 20);
    space.has_buffer[0] = false;
    let mut s = SampleSolver::new();
    let r = solve_plain(
        &mut s,
        &sg,
        &ic,
        &space,
        PushObjective::None,
        &SolverOptions::default(),
    );
    assert!(r.feasible, "should be fixable");
    assert_eq!(r.count(), 2, "tunings: {:?}", r.tunings);
    check_valid(&sg, &ic, &space, &r);
}

#[test]
fn unfixable_between_bufferless_ffs() {
    let sg = graph(2, &[(0, 1)]);
    let ic = constraints(&[-1], &[5]);
    let mut space = BufferSpace::floating(2, 20);
    space.has_buffer[0] = false;
    space.has_buffer[1] = false;
    let mut s = SampleSolver::new();
    let r = solve_plain(
        &mut s,
        &sg,
        &ic,
        &space,
        PushObjective::None,
        &SolverOptions::default(),
    );
    assert!(!r.feasible);
}

#[test]
fn window_too_small_is_infeasible() {
    let sg = graph(2, &[(0, 1)]);
    // Needs a relative shift of 30 but windows only allow ±10 each (20 total
    // relative shift < 30).
    let ic = constraints(&[-30], &[100]);
    let space = BufferSpace {
        has_buffer: vec![true; 2],
        bounds: vec![(-10, 10); 2],
    };
    let mut s = SampleSolver::new();
    let r = solve_plain(
        &mut s,
        &sg,
        &ic,
        &space,
        PushObjective::None,
        &SolverOptions::default(),
    );
    assert!(!r.feasible);
}

#[test]
fn push_to_zero_minimises_magnitude() {
    let sg = graph(2, &[(0, 1)]);
    // k0 - k1 <= -4: solutions include k1 = 4 or k0 = -4 or splits, but
    // count is 1 either way; |k| must then be exactly 4.
    let ic = constraints(&[-4], &[100]);
    let space = BufferSpace::floating(2, 20);
    let mut s = SampleSolver::new();
    let r = solve_plain(
        &mut s,
        &sg,
        &ic,
        &space,
        PushObjective::ToZero,
        &SolverOptions::default(),
    );
    assert!(r.feasible);
    assert_eq!(r.count(), 1);
    let total: i64 = r.tunings.iter().map(|(_, k)| k.abs()).sum();
    assert_eq!(total, 4);
    check_valid(&sg, &ic, &space, &r);
}

#[test]
fn push_to_targets_hits_target_when_free() {
    let sg = graph(2, &[(0, 1)]);
    // Violated: k0 - k1 <= -2. Target says FF1 should sit at 6.
    let ic = constraints(&[-2], &[100]);
    let space = BufferSpace::floating(2, 20);
    let targets = vec![0.0, 6.0];
    let mut s = SampleSolver::new();
    let r = solve_plain(
        &mut s,
        &sg,
        &ic,
        &space,
        PushObjective::ToTargets(&targets),
        &SolverOptions::default(),
    );
    assert!(r.feasible);
    assert_eq!(r.count(), 1);
    // The single-buffer solution closest to the targets: k1 = 6 is
    // feasible (0 - 6 <= -2) and |6-6| = 0 beats k1 = 2 (|2-6| = 4).
    assert_eq!(r.tunings, vec![(1, 6)]);
}

#[test]
fn hold_violation_fixed_with_negative_delay() {
    let sg = graph(2, &[(0, 1)]);
    // Hold violated: k1 - k0 <= -2 → delay the *launching* clock or advance
    // the capturing one; either way one buffer with |k| = 2.
    let ic = constraints(&[100], &[-2]);
    let space = BufferSpace::floating(2, 20);
    let mut s = SampleSolver::new();
    let r = solve_plain(
        &mut s,
        &sg,
        &ic,
        &space,
        PushObjective::ToZero,
        &SolverOptions::default(),
    );
    assert!(r.feasible);
    assert_eq!(r.count(), 1);
    let total: i64 = r.tunings.iter().map(|(_, k)| k.abs()).sum();
    assert_eq!(total, 2);
    check_valid(&sg, &ic, &space, &r);
}

#[test]
fn asymmetric_windows_respected() {
    let sg = graph(2, &[(0, 1)]);
    let ic = constraints(&[-5], &[100]);
    // FF1 can only go up to +3; FF0 down to -8.  One buffer no longer
    // suffices via FF1 alone (needs +5 > 3), but FF0 at -5 works.
    let space = BufferSpace {
        has_buffer: vec![true; 2],
        bounds: vec![(-8, 2), (-2, 3)],
    };
    let mut s = SampleSolver::new();
    let r = solve_plain(
        &mut s,
        &sg,
        &ic,
        &space,
        PushObjective::ToZero,
        &SolverOptions::default(),
    );
    assert!(r.feasible);
    assert_eq!(r.count(), 1);
    check_valid(&sg, &ic, &space, &r);
    assert_eq!(r.tunings[0].0, 0);
}

#[test]
fn self_loop_edges_are_handled() {
    // A FF feeding itself: k0 - k0 = 0 must satisfy both bounds; if the
    // bound is negative the chip is dead no matter what.
    let sg = graph(1, &[(0, 0)]);
    let ic = constraints(&[-1], &[5]);
    let space = BufferSpace::floating(1, 20);
    let mut s = SampleSolver::new();
    let r = solve_plain(
        &mut s,
        &sg,
        &ic,
        &space,
        PushObjective::None,
        &SolverOptions::default(),
    );
    assert!(!r.feasible, "self-loop violation cannot be tuned away");
}

#[test]
fn matches_reference_milp_on_fixed_cases() {
    type Case = (usize, Vec<(u32, u32)>, Vec<i64>, Vec<i64>);
    let cases: Vec<Case> = vec![
        (3, vec![(0, 1), (1, 2)], vec![-3, 5], vec![5, 5]),
        (
            3,
            vec![(0, 1), (1, 2), (0, 2)],
            vec![-2, -2, 4],
            vec![9, 9, 9],
        ),
        (
            4,
            vec![(0, 1), (1, 2), (2, 3)],
            vec![-1, 0, -1],
            vec![4, 4, 4],
        ),
        (2, vec![(0, 1), (1, 0)], vec![-2, 1], vec![6, 6]),
    ];
    for (n, edges, setup, hold) in cases {
        let sg = graph(n, &edges);
        let ic = constraints(&setup, &hold);
        let space = BufferSpace::floating(n, 10);
        let mut s = SampleSolver::new();
        let fast = solve_plain(
            &mut s,
            &sg,
            &ic,
            &space,
            PushObjective::ToZero,
            &SolverOptions::default(),
        );
        let slow = s.solve_reference_milp(&sg, &ic, &space, PushObjective::ToZero);
        assert_eq!(fast.feasible, slow.feasible, "feasibility mismatch");
        if fast.feasible {
            assert_eq!(
                fast.count(),
                slow.count(),
                "count mismatch: fast {:?} slow {:?}",
                fast.tunings,
                slow.tunings
            );
            let fsum: i64 = fast.tunings.iter().map(|(_, k)| k.abs()).sum();
            let ssum: i64 = slow.tunings.iter().map(|(_, k)| k.abs()).sum();
            assert_eq!(fsum, ssum, "magnitude mismatch");
            check_valid(&sg, &ic, &space, &fast);
        }
    }
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The specialised solver and the reference MILP agree on
        /// feasibility, buffer count and total magnitude for random small
        /// instances.
        #[test]
        fn specialised_matches_reference(
            n in 3usize..6,
            raw_edges in proptest::collection::vec((0u32..6, 0u32..6), 1..8),
            raw_setup in proptest::collection::vec(-4i64..6, 8),
            raw_hold in proptest::collection::vec(-2i64..6, 8),
            bufferless in proptest::collection::vec(any::<bool>(), 6),
        ) {
            let edges: Vec<(u32, u32)> = raw_edges
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            let m = edges.len();
            let sg = graph(n, &edges);
            let ic = constraints(&raw_setup[..m], &raw_hold[..m]);
            let mut space = BufferSpace::floating(n, 5);
            for (has, off) in space.has_buffer.iter_mut().zip(&bufferless) {
                if *off {
                    *has = false;
                }
            }
            let mut s = SampleSolver::new();
            let fast = solve_plain(&mut s, &sg, &ic, &space, PushObjective::ToZero, &SolverOptions::default());
            let slow = s.solve_reference_milp(&sg, &ic, &space, PushObjective::ToZero);
            prop_assert_eq!(fast.feasible, slow.feasible,
                "feasibility: fast {:?} slow {:?}", fast, slow);
            if fast.feasible {
                prop_assert!(fast.exact);
                prop_assert_eq!(fast.count(), slow.count(),
                    "count: fast {:?} slow {:?}", &fast.tunings, &slow.tunings);
                let fsum: i64 = fast.tunings.iter().map(|(_, k)| k.abs()).sum();
                let ssum: i64 = slow.tunings.iter().map(|(_, k)| k.abs()).sum();
                prop_assert_eq!(fsum, ssum,
                    "magnitude: fast {:?} slow {:?}", &fast.tunings, &slow.tunings);
                check_valid(&sg, &ic, &space, &fast);
            }
        }

        /// The pruned search is bit-identical to the reference B&B —
        /// feasibility, support, witness and exactness — on random
        /// instances, while never visiting more nodes.
        #[test]
        fn pruned_search_matches_reference_bit_for_bit(
            n in 3usize..7,
            raw_edges in proptest::collection::vec((0u32..7, 0u32..7), 1..10),
            raw_setup in proptest::collection::vec(-4i64..6, 10),
            raw_hold in proptest::collection::vec(-2i64..6, 10),
            bufferless in proptest::collection::vec(any::<bool>(), 7),
        ) {
            let edges: Vec<(u32, u32)> = raw_edges
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            let m = edges.len();
            let sg = graph(n, &edges);
            let ic = constraints(&raw_setup[..m], &raw_hold[..m]);
            let mut space = BufferSpace::floating(n, 5);
            for (has, off) in space.has_buffer.iter_mut().zip(&bufferless) {
                if *off {
                    *has = false;
                }
            }
            let opts = SolverOptions::default();
            let ((pruned, pd), (reference, rd)) = solve_both_modes(&sg, &ic, &space, &opts);
            prop_assert_eq!(&pruned, &reference,
                "pruned vs reference diverged: {:?} vs {:?}", pd, rd);
            prop_assert!(pd.search_nodes <= rd.search_nodes,
                "pruned search visited {} nodes, reference {}", pd.search_nodes, rd.search_nodes);
            if pruned.feasible {
                check_valid(&sg, &ic, &space, &pruned);
            }
        }

        /// Cross-pass state never leaks stale answers: a pass sequence
        /// that mutates the insertion space between passes (narrowed
        /// windows as in III-A4, then a pruned buffer as in III-A2, then
        /// shifted constraints as across sweep targets) must match fresh
        /// cold solves at every step, and the mutations must invalidate
        /// the matching cache tier (no stale-support, no stale-region
        /// reuse).
        #[test]
        fn incremental_state_invalidates_on_space_mutations(
            n in 3usize..6,
            raw_edges in proptest::collection::vec((0u32..6, 0u32..6), 1..8),
            raw_setup in proptest::collection::vec(-4i64..6, 8),
            raw_hold in proptest::collection::vec(-2i64..6, 8),
            window_lo in -6i64..0,
            pruned in 0usize..6,
            shift in 1i64..3,
        ) {
            let edges: Vec<(u32, u32)> = raw_edges
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            let m = edges.len();
            let sg = graph(n, &edges);
            let ic = constraints(&raw_setup[..m], &raw_hold[..m]);
            let opts = SolverOptions::default();
            let mut warm = SampleSolver::new();
            let mut cold = SampleSolver::new();
            let mut state = ChipSolveState::new();

            // Pass 1: floating windows (primes the cache).
            let space1 = Arc::new(BufferSpace::floating(n, 6));
            let mut diag = PassDiagnostics::default();
            let got = solve_cached(&mut warm,
                &sg, ic.as_view(), &space1, PushObjective::ToZero, &opts, &mut state, &mut diag);
            let want = cold.solve(SolveRequest::new(&sg, ic.as_view(), &space1, PushObjective::ToZero, &opts)).result;
            prop_assert_eq!(&got, &want, "pass 1 (cold prime)");

            // Pass 2: every window narrowed (bounds changed, has_buffer
            // unchanged) — decompositions may replay, supports must not.
            let mut s2 = BufferSpace::floating(n, 6);
            for b in s2.bounds.iter_mut() {
                *b = (window_lo, window_lo + 6);
            }
            let space2 = Arc::new(s2);
            let mut diag = PassDiagnostics::default();
            let got = solve_cached(&mut warm,
                &sg, ic.as_view(), &space2, PushObjective::ToZero, &opts, &mut state, &mut diag);
            let want = cold.solve(SolveRequest::new(&sg, ic.as_view(), &space2, PushObjective::ToZero, &opts)).result;
            prop_assert_eq!(&got, &want, "pass 2 (narrowed windows)");
            prop_assert_eq!(diag.supports_rehit, 0,
                "changed windows must invalidate every cached support");

            // Pass 3: a buffer pruned (has_buffer changed).  Pruning a
            // *violated endpoint* always lands inside the discovery read
            // set, so nothing may replay — not even decompositions.  (A
            // prune outside the read set legitimately keeps the cache;
            // that path is covered by the equality assertion alone.)
            let mut s3 = (*space2).clone();
            let endpoint = ic
                .setup_bound
                .iter()
                .zip(&ic.hold_bound)
                .position(|(s, h)| *s < 0 || *h < 0)
                .map(|e| edges[e].0 as usize);
            s3.has_buffer[endpoint.unwrap_or(pruned % n)] = false;
            let space3 = Arc::new(s3);
            let mut diag = PassDiagnostics::default();
            let got = solve_cached(&mut warm,
                &sg, ic.as_view(), &space3, PushObjective::ToZero, &opts, &mut state, &mut diag);
            let want = cold.solve(SolveRequest::new(&sg, ic.as_view(), &space3, PushObjective::ToZero, &opts)).result;
            prop_assert_eq!(&got, &want, "pass 3 (pruned buffer)");
            prop_assert_eq!(diag.regions_reused, 0,
                "pruning a violated endpoint must invalidate every cached decomposition");
            prop_assert_eq!(diag.supports_rehit, 0,
                "pruning a violated endpoint must invalidate every cached support");

            // Pass 4: constraints shift (the cross-target case) against
            // the *original* space — stale pass-3 state must not leak.
            let shifted: Vec<i64> = raw_setup[..m].iter().map(|b| b - shift).collect();
            let ic4 = constraints(&shifted, &raw_hold[..m]);
            let mut diag = PassDiagnostics::default();
            let got = solve_cached(&mut warm,
                &sg, ic4.as_view(), &space1, PushObjective::ToZero, &opts, &mut state, &mut diag);
            let want = cold.solve(SolveRequest::new(&sg, ic4.as_view(), &space1, PushObjective::ToZero, &opts)).result;
            prop_assert_eq!(&got, &want, "pass 4 (shifted constraints)");
        }

        /// The cross-chip contract, end to end: (a) region solving is a
        /// pure function — two independent solvers given the same chip
        /// return bitwise-equal results; (b) two *different* chips whose
        /// bounds differ only above the saturation cap produce equal
        /// memo keys, so the second solve replays the first chip's
        /// outcomes through the shared memo and still matches its own
        /// cold solve bit for bit.
        #[test]
        fn equal_memo_keys_produce_bitwise_equal_outcomes(
            n in 3usize..6,
            raw_edges in proptest::collection::vec((0u32..6, 0u32..6), 1..8),
            raw_setup in proptest::collection::vec(-4i64..6, 8),
            raw_hold in proptest::collection::vec(-2i64..6, 8),
            bump in 1i64..5,
        ) {
            let edges: Vec<(u32, u32)> = raw_edges
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            let m = edges.len();
            let sg = graph(n, &edges);
            let ic = constraints(&raw_setup[..m], &raw_hold[..m]);
            // Floating ±2 windows: the saturation cap over any region is
            // at most 4, so every bound ≥ 4 is vacuous and clamps.
            let space = Arc::new(BufferSpace::floating(n, 2));
            let cap = 4i64;
            let opts = SolverOptions::default();

            // (a) purity: independent solvers, bit-equal results.
            let mut s1 = SampleSolver::new();
            let mut s2 = SampleSolver::new();
            let one = s1.solve(SolveRequest::new(&sg, ic.as_view(), &space, PushObjective::ToZero, &opts)).result;
            let two = s2.solve(SolveRequest::new(&sg, ic.as_view(), &space, PushObjective::ToZero, &opts)).result;
            prop_assert_eq!(&one, &two, "region solving must be a pure function");

            // (b) chip B differs from chip A only in vacuous bounds.
            let bumped: Vec<i64> = raw_setup[..m]
                .iter()
                .map(|b| if *b >= cap { *b + bump } else { *b })
                .collect();
            let ic_b = constraints(&bumped, &raw_hold[..m]);
            let memo = RegionMemo::new();
            let mut diag = PassDiagnostics::default();
            let via_a = solve_memo(&mut s1,
                &sg, ic.as_view(), &space, PushObjective::ToZero, &opts,
                Some(&memo), None, &mut diag);
            prop_assert_eq!(&via_a, &one, "memo publish pass must stay cold-identical");
            let published = memo.len();
            let mut diag_b = PassDiagnostics::default();
            let via_b = solve_memo(&mut s2,
                &sg, ic_b.as_view(), &space, PushObjective::ToZero, &opts,
                Some(&memo), None, &mut diag_b);
            let cold_b = s1.solve(SolveRequest::new(&sg, ic_b.as_view(), &space, PushObjective::ToZero, &opts)).result;
            prop_assert_eq!(&via_b, &cold_b, "memo replay must match B's own cold solve");
            if published > 0 {
                // A had regions; B's saturation-equal system must replay
                // them rather than re-search (equal keys ⇒ hits).
                prop_assert!(diag_b.cross_chip_hits > 0,
                    "saturation-equal chips must share memo entries \
                     ({} published, B hit none)", published);
                prop_assert_eq!(memo.len(), published,
                    "B must not mint new keys for a saturation-equal system");
            }
        }

        /// Solutions are always valid assignments within windows.
        #[test]
        fn solutions_always_valid(
            n in 2usize..8,
            raw_edges in proptest::collection::vec((0u32..8, 0u32..8), 1..12),
            raw_setup in proptest::collection::vec(-6i64..8, 12),
            raw_hold in proptest::collection::vec(-3i64..8, 12),
        ) {
            let edges: Vec<(u32, u32)> = raw_edges
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            let m = edges.len();
            let sg = graph(n, &edges);
            let ic = constraints(&raw_setup[..m], &raw_hold[..m]);
            let space = BufferSpace::floating(n, 6);
            let mut s = SampleSolver::new();
            let r = solve_plain(&mut s, &sg, &ic, &space, PushObjective::ToZero, &SolverOptions::default());
            if r.feasible {
                check_valid(&sg, &ic, &space, &r);
            }
        }
    }
}

#[test]
fn outcome_replay_rejects_aliased_surviving_systems() {
    // Vacuous-constraint elision makes the *surviving subset* of a
    // region's constraints vary between passes, so two materialised
    // systems can agree on every bound value positionally while
    // constraining different endpoint pairs.  The replay guard must
    // compare the full (a, b, bound) triples, not just the bounds.
    use super::state::{CachedOutcome, CachedRegion};
    let mut members = vec![0u32, 1, 2];
    members.sort_unstable();
    let region = Region {
        ffs: vec![0, 1, 2],
        members,
        cons: Vec::new(),
        saturated: false,
    };
    let space = BufferSpace::floating(3, 2);
    let mk = |a: u32, b: u32, bound: i64| RegCons { a, b, bound };
    let recorded = vec![mk(0, 1, 2), mk(1, 0, -1)];
    let mut cr = CachedRegion::new(region);
    cr.record(
        &recorded,
        &space,
        Arc::new(CachedOutcome::Feasible {
            count: 1,
            support: vec![1],
            witness: vec![1],
            exact: true,
        }),
    );
    assert!(cr.outcome_replayable(&recorded, &space), "identity replays");
    // Same length, same bound sequence, different surviving endpoints:
    // the (0,1) constraint was elided this pass and (1,2) survived.
    let aliased = vec![mk(1, 2, 2), mk(1, 0, -1)];
    assert!(
        !cr.outcome_replayable(&aliased, &space),
        "an aliased surviving system must not replay"
    );
}

#[test]
fn cross_chip_memo_replays_identical_region_systems() {
    // Two different "chips" with the same violated pattern and bounds
    // produce the same saturation-normalised region system; the second
    // solve — through a *fresh* solver, as a different worker would —
    // must hit the shared memo and still match a cold solve bit for bit.
    let sg = graph(4, &[(0, 1), (1, 2), (2, 3)]);
    let ic = constraints(&[-3, 2, 5], &[6, 6, 6]);
    let space = Arc::new(BufferSpace::floating(4, 20));
    let opts = SolverOptions::default();
    let memo = RegionMemo::new();

    let mut first = SampleSolver::new();
    let mut diag = PassDiagnostics::default();
    let a = solve_memo(
        &mut first,
        &sg,
        ic.as_view(),
        &space,
        PushObjective::ToZero,
        &opts,
        Some(&memo),
        None,
        &mut diag,
    );
    assert_eq!(diag.cross_chip_hits, 0, "first chip must publish, not hit");
    assert!(!memo.is_empty(), "first chip must publish its regions");

    let mut second = SampleSolver::new();
    let mut diag2 = PassDiagnostics::default();
    let b = solve_memo(
        &mut second,
        &sg,
        ic.as_view(),
        &space,
        PushObjective::ToZero,
        &opts,
        Some(&memo),
        None,
        &mut diag2,
    );
    assert!(diag2.cross_chip_hits > 0, "identical system must memo-hit");
    let mut cold = SampleSolver::new();
    let want = cold
        .solve(SolveRequest::new(
            &sg,
            ic.as_view(),
            &space,
            PushObjective::ToZero,
            &opts,
        ))
        .result;
    assert_eq!(a, want);
    assert_eq!(b, want, "memo replay must be bit-identical to cold");

    // A shifted *binding* bound is a different system: no false hit.
    let shifted = constraints(&[-2, 2, 5], &[6, 6, 6]);
    let mut diag3 = PassDiagnostics::default();
    let c = solve_memo(
        &mut second,
        &sg,
        shifted.as_view(),
        &space,
        PushObjective::ToZero,
        &opts,
        Some(&memo),
        None,
        &mut diag3,
    );
    assert_eq!(diag3.cross_chip_hits, 0, "changed bound must miss");
    let want_shifted = cold
        .solve(SolveRequest::new(
            &sg,
            shifted.as_view(),
            &space,
            PushObjective::ToZero,
            &opts,
        ))
        .result;
    assert_eq!(c, want_shifted);
}

#[test]
fn memo_composes_with_per_chip_state() {
    // Chip-state arenas and the memo are independent tiers: a chip whose
    // own state replays skips the memo; a chip whose state was
    // invalidated falls through to the memo (published by another chip)
    // before searching.
    let sg = graph(3, &[(0, 1), (1, 2)]);
    let ic = constraints(&[-3, 5], &[5, 5]);
    let space = Arc::new(BufferSpace::floating(3, 20));
    let opts = SolverOptions::default();
    let memo = RegionMemo::new();
    let mut solver = SampleSolver::new();
    // Chip 1 (fresh state): searches + publishes.
    let mut st1 = ChipSolveState::new();
    let mut diag = PassDiagnostics::default();
    let r1 = solve_memo(
        &mut solver,
        &sg,
        ic.as_view(),
        &space,
        PushObjective::None,
        &opts,
        Some(&memo),
        Some(&mut st1),
        &mut diag,
    );
    assert_eq!(diag.cross_chip_hits, 0);
    // Chip 2 (fresh state, same system): memo hit, recorded into its own
    // state…
    let mut st2 = ChipSolveState::new();
    let mut diag = PassDiagnostics::default();
    let r2 = solve_memo(
        &mut solver,
        &sg,
        ic.as_view(),
        &space,
        PushObjective::None,
        &opts,
        Some(&memo),
        Some(&mut st2),
        &mut diag,
    );
    assert!(diag.cross_chip_hits > 0);
    assert_eq!(diag.supports_rehit, 0);
    // … so the next pass of chip 2 replays from its own state and never
    // consults the memo again.
    let mut diag = PassDiagnostics::default();
    let r3 = solve_memo(
        &mut solver,
        &sg,
        ic.as_view(),
        &space,
        PushObjective::None,
        &opts,
        Some(&memo),
        Some(&mut st2),
        &mut diag,
    );
    assert_eq!(diag.cross_chip_hits, 0);
    assert!(diag.supports_rehit > 0);
    assert_eq!(r1, r2);
    assert_eq!(r2, r3);
}

#[test]
fn tie_breaking_is_pinned_and_cache_replay_matches() {
    // k0 − k1 ≤ −4 admits two optimal single-buffer supports ({0} at −4
    // or {1} at +4).  The pinned DFS order (most-covering endpoint, ties
    // to the lowest region slot, In before Out) must return the same one
    // every time — cold, freshly cached, and replayed.
    let sg = graph(2, &[(0, 1)]);
    let ic = constraints(&[-4], &[100]);
    let space = Arc::new(BufferSpace::floating(2, 20));
    let opts = SolverOptions::default();
    let mut s = SampleSolver::new();
    let cold = s
        .solve(SolveRequest::new(
            &sg,
            ic.as_view(),
            &space,
            PushObjective::None,
            &opts,
        ))
        .result;
    assert_eq!(cold.count(), 1);
    // Lowest-slot tie-break: FF0 is branched In first and accepted.
    assert_eq!(cold.tunings[0].0, 0, "tie must break to the lowest slot");
    let mut state = ChipSolveState::new();
    let mut diag = PassDiagnostics::default();
    let fresh = solve_cached(
        &mut s,
        &sg,
        ic.as_view(),
        &space,
        PushObjective::None,
        &opts,
        &mut state,
        &mut diag,
    );
    assert_eq!(diag.supports_rehit, 0, "first cached solve searches");
    let replayed = solve_cached(
        &mut s,
        &sg,
        ic.as_view(),
        &space,
        PushObjective::None,
        &opts,
        &mut state,
        &mut diag,
    );
    assert!(diag.supports_rehit >= 1, "second solve must replay");
    assert_eq!(cold, fresh);
    assert_eq!(cold, replayed);
}

#[test]
fn cached_outcome_survives_push_objective_changes() {
    // The search outcome is push-independent: an A1-style (count-only)
    // pass primes the cache, and a push-to-zero pass on the same inputs
    // replays the support while still running its own concentration —
    // matching a cold solve bit for bit.
    let sg = graph(3, &[(0, 1), (1, 2), (0, 2)]);
    let ic = constraints(&[-2, -2, 4], &[9, 9, 9]);
    let space = Arc::new(BufferSpace::floating(3, 10));
    let opts = SolverOptions::default();
    let mut s = SampleSolver::new();
    let mut state = ChipSolveState::new();
    let mut diag = PassDiagnostics::default();
    let a1 = solve_cached(
        &mut s,
        &sg,
        ic.as_view(),
        &space,
        PushObjective::None,
        &opts,
        &mut state,
        &mut diag,
    );
    let rehit_before = diag.supports_rehit;
    let a3 = solve_cached(
        &mut s,
        &sg,
        ic.as_view(),
        &space,
        PushObjective::ToZero,
        &opts,
        &mut state,
        &mut diag,
    );
    assert!(diag.supports_rehit > rehit_before, "support must replay");
    let mut cold_solver = SampleSolver::new();
    let cold_a1 = cold_solver
        .solve(SolveRequest::new(
            &sg,
            ic.as_view(),
            &space,
            PushObjective::None,
            &opts,
        ))
        .result;
    let cold_a3 = cold_solver
        .solve(SolveRequest::new(
            &sg,
            ic.as_view(),
            &space,
            PushObjective::ToZero,
            &opts,
        ))
        .result;
    assert_eq!(a1, cold_a1);
    assert_eq!(a3, cold_a3);
}

#[test]
fn oversized_region_falls_back_to_sparsified_witness() {
    // A long chain with one violation; region_cap 2 forces the greedy
    // fallback, which must still produce a valid (if non-minimal) fix.
    let n = 12;
    let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
    let sg = graph(n, &edges);
    let mut setup = vec![6i64; n - 1];
    setup[5] = -3; // violation mid-chain
    let hold = vec![8i64; n - 1];
    let ic = constraints(&setup, &hold);
    let space = BufferSpace::floating(n, 10);
    let opts = SolverOptions {
        region_cap: 2,
        ..SolverOptions::default()
    };
    let mut s = SampleSolver::new();
    let r = solve_plain(&mut s, &sg, &ic, &space, PushObjective::ToZero, &opts);
    assert!(r.feasible);
    assert!(!r.exact, "cap forces the inexact path");
    check_valid(&sg, &ic, &space, &r);
    // Sparsification keeps the fix small even without exact search.
    assert!(r.count() <= 4, "sparsified count {} too large", r.count());
}

#[test]
fn node_cap_fallback_is_still_valid() {
    // Dense mutually-constrained instance with a tiny node budget.
    let n = 8;
    let mut edges = Vec::new();
    for i in 0..n as u32 {
        for j in 0..n as u32 {
            if i != j && (i + j) % 2 == 0 {
                edges.push((i, j));
            }
        }
    }
    let sg = graph(n, &edges);
    let setup: Vec<i64> = (0..edges.len() as i64)
        .map(|e| if e % 5 == 0 { -2 } else { 4 })
        .collect();
    let hold = vec![6i64; edges.len()];
    let ic = constraints(&setup, &hold);
    let space = BufferSpace::floating(n, 12);
    let opts = SolverOptions {
        bb_node_cap: 3,
        ..SolverOptions::default()
    };
    let mut s = SampleSolver::new();
    let r = solve_plain(&mut s, &sg, &ic, &space, PushObjective::None, &opts);
    if r.feasible {
        check_valid(&sg, &ic, &space, &r);
    }
}

/// Runs the same cold request under the pruned search and the reference
/// B&B, returning both results with their search diagnostics.
fn solve_both_modes(
    sg: &SequentialGraph,
    ic: &IntegerConstraints,
    space: &BufferSpace,
    opts: &SolverOptions,
) -> (
    (SampleResult, PassDiagnostics),
    (SampleResult, PassDiagnostics),
) {
    let run = |prune: bool| {
        let mut s = SampleSolver::new();
        let out = s.solve(
            SolveRequest::new(sg, ic.as_view(), space, PushObjective::ToZero, opts)
                .search_prune(prune),
        );
        (out.result, out.diag)
    };
    (run(true), run(false))
}

#[test]
fn search_pruning_parity_on_symmetric_hub() {
    // Six interchangeable leaves hang off a hub whose window is pinned
    // to [0, 0], with every hub→leaf edge violated: the unique fix tunes
    // all six leaves to +3 (the pinned hub merges the leaves into one
    // region but cannot absorb anything itself).  Slots 1..6 form one
    // symmetry class; on a region this small the cascade/covering bounds
    // conclude before the symmetry guards get a turn (the guard-link
    // construction itself is pinned white-box in
    // `symmetry_guard_links_pin_the_lowest_slot_representative`), but the
    // pruned search must still return the canonical outcome bit for bit.
    let n = 7;
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (0, i)).collect();
    let sg = graph(n, &edges);
    let ic = constraints(&vec![-3; n - 1], &vec![100; n - 1]);
    let mut space = BufferSpace::floating(n, 10);
    space.bounds[0] = (0, 0);
    let opts = SolverOptions::default();
    let ((pruned, pd), (reference, rd)) = solve_both_modes(&sg, &ic, &space, &opts);
    assert_eq!(pruned, reference, "pruned search must be bit-identical");
    assert!(pruned.feasible && pruned.exact);
    check_valid(&sg, &ic, &space, &pruned);
    // Golden representative: the canonical support in ascending slot
    // order with the concentrated witness.
    let want: Vec<(u32, i64)> = (1..n as u32).map(|i| (i, 3)).collect();
    assert_eq!(pruned.tunings, want, "class representative drifted");
    assert!(
        pd.search_pruned_bound > 0,
        "the covering/cascade bound must fire: {pd:?}"
    );
    assert_eq!(
        rd.search_pruned_symmetry + rd.search_pruned_dominance,
        0,
        "the reference B&B runs no structural pruning rules"
    );
    assert!(
        pd.search_nodes <= rd.search_nodes,
        "pruned search visited {} nodes, reference {}",
        pd.search_nodes,
        rd.search_nodes
    );
}

#[test]
fn symmetry_guard_links_pin_the_lowest_slot_representative() {
    // White-box pin of the symmetry-class representative rule: six
    // leaves with identical windows hanging off a window-pinned hub are
    // one interchangeable class, so every leaf's In branch must be
    // guarded by exactly the *lower* leaves — the class's lowest slot is
    // the representative and carries no guard itself.  The hub's window
    // differs and its constraint row is not swap-invariant with any
    // leaf, so it gets no guards and guards nobody.
    let m = 7usize;
    let region_ffs: Vec<u32> = (0..m as u32).collect();
    let var_of: Vec<u32> = (0..m as u32).collect();
    let mut cons = Vec::new();
    for i in 1..m as u32 {
        cons.push(RegCons {
            a: 0,
            b: i,
            bound: -3,
        });
        cons.push(RegCons {
            a: i,
            b: 0,
            bound: 100,
        });
    }
    let violated: Vec<usize> = cons
        .iter()
        .enumerate()
        .filter(|(_, c)| c.bound < 0)
        .map(|(i, _)| i)
        .collect();
    let mut bounds = vec![(-10i64, 10); m];
    bounds[0] = (0, 0);
    let mut solver = DiffSolver::new();
    let mut s = search::SupportSearch {
        solver: &mut solver,
        var_of: &var_of,
        region_ffs: &region_ffs,
        cons: &cons,
        violated: &violated,
        bounds: &bounds,
        best: None,
        node_cap: 1_000,
        exact: true,
        prune: true,
        stats: search::SearchStats::default(),
        vars_scratch: Vec::new(),
        slot_scratch: Vec::new(),
        arcs_scratch: Vec::new(),
        bounds_scratch: Vec::new(),
        ps: Default::default(),
    };
    s.prepare_prune();
    for v in 0..m {
        let lo = s.ps.link_start[v] as usize;
        let hi = s.ps.link_start[v + 1] as usize;
        let links = &s.ps.links[lo..hi];
        if v == 0 {
            assert!(links.is_empty(), "the pinned hub must have no guards");
        } else {
            let want: Vec<(u32, bool)> = (1..v as u32).map(|u| (u, true)).collect();
            assert_eq!(
                links,
                &want[..],
                "slot {v}'s In branch must be guarded by every lower class member"
            );
        }
    }
}

#[test]
fn search_pruning_parity_on_cascade_chain() {
    // An equality-tied chain split by one violated edge: every zero-slack
    // edge pins its neighbours together, so fixing the violation drags a
    // whole half-chain along.  The reference B&B proves each too-small
    // subset infeasible one probe at a time; the cascade lower bound
    // (rule 4) prices the drag chain per node and cuts far earlier —
    // with the identical outcome.
    let n = 10;
    let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
    let sg = graph(n, &edges);
    let mut setup = vec![0i64; n - 1];
    let mut hold = vec![0i64; n - 1];
    setup[4] = -4;
    hold[4] = 100;
    let ic = constraints(&setup, &hold);
    let space = BufferSpace::floating(n, 10);
    let opts = SolverOptions::default();
    let ((pruned, pd), (reference, rd)) = solve_both_modes(&sg, &ic, &space, &opts);
    assert_eq!(pruned, reference, "pruned search must be bit-identical");
    assert!(pruned.feasible && pruned.exact);
    check_valid(&sg, &ic, &space, &pruned);
    // Either half-chain shifted by 4 is optimal: five buffers.
    assert_eq!(pruned.count(), 5);
    assert!(
        pd.search_pruned_bound > 0,
        "the cascade/covering bound must fire on the drag chain: {pd:?}"
    );
    assert!(
        pd.search_nodes < rd.search_nodes,
        "pruned search visited {} nodes, reference {}",
        pd.search_nodes,
        rd.search_nodes
    );
}

#[test]
fn search_stats_pruned_total_sums_all_rules() {
    let stats = search::SearchStats {
        nodes: 10,
        pruned_bound: 3,
        pruned_dominance: 2,
        pruned_symmetry: 1,
    };
    assert_eq!(stats.pruned_total(), 6);
}

#[test]
fn sparsified_fallback_support_is_pinned() {
    // Same fixture as `oversized_region_falls_back_to_sparsified_witness`
    // but pinning the exact outcome: the batched drop pass in
    // `sparsify_witness` must keep returning byte-identical tunings to
    // the one-at-a-time reference it replaced.
    let n = 12;
    let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
    let sg = graph(n, &edges);
    let mut setup = vec![6i64; n - 1];
    setup[5] = -3;
    let hold = vec![8i64; n - 1];
    let ic = constraints(&setup, &hold);
    let space = BufferSpace::floating(n, 10);
    let opts = SolverOptions {
        region_cap: 2,
        ..SolverOptions::default()
    };
    let mut s = SampleSolver::new();
    let r = solve_plain(&mut s, &sg, &ic, &space, PushObjective::ToZero, &opts);
    assert!(r.feasible);
    assert!(!r.exact);
    assert_eq!(r.tunings, vec![(6, 3)], "fallback support drifted");
}

#[test]
fn unfixable_cycle_detected_by_global_screen() {
    // Ring 0→1→2→0 with negative total slack: tuning-invariant, dead chip.
    let sg = graph(3, &[(0, 1), (1, 2), (2, 0)]);
    let ic = constraints(&[-2, 0, 1], &[9, 9, 9]); // sum = -1 < 0
    let space = BufferSpace::floating(3, 20);
    let mut s = SampleSolver::new();
    let r = solve_plain(
        &mut s,
        &sg,
        &ic,
        &space,
        PushObjective::None,
        &SolverOptions::default(),
    );
    assert!(!r.feasible, "negative cycle must be unfixable");
    // A ring with non-negative total slack is fixable by rotation.
    let ic = constraints(&[-2, 1, 1], &[9, 9, 9]); // sum = 0
    let r = solve_plain(
        &mut s,
        &sg,
        &ic,
        &space,
        PushObjective::ToZero,
        &SolverOptions::default(),
    );
    assert!(r.feasible, "zero-sum ring is fixable");
    check_valid(&sg, &ic, &space, &r);
}

#[test]
fn region_parallel_commits_in_pinned_region_order() {
    // Two disconnected violated regions give a multi-task round.  The
    // pinned-order contract: a round's outcomes are indexed by task
    // slot, so executing the tasks in any completion order — here
    // literally one by one, in reverse — and committing the reassembled
    // vector must reproduce the one-shot solve bit for bit.
    let sg = graph(4, &[(0, 1), (2, 3)]);
    let ic = constraints(&[-3, -4], &[9, 9]);
    let space = BufferSpace::floating(4, 20);
    let opts = SolverOptions::default();

    let mut reference = SampleSolver::new();
    let want = reference.solve(SolveRequest::new(
        &sg,
        ic.as_view(),
        &space,
        PushObjective::ToZero,
        &opts,
    ));
    assert!(want.result.feasible);

    let mut s = SampleSolver::new();
    let mut session = s.begin(SolveRequest::new(
        &sg,
        ic.as_view(),
        &space,
        PushObjective::ToZero,
        &opts,
    ));
    let mut first_round_tasks = 0;
    while !session.is_done() {
        let tasks = session.plan(&mut s);
        if first_round_tasks == 0 {
            first_round_tasks = tasks.len();
        }
        let mut outcomes: Vec<Option<RegionOutcome>> = vec![None; tasks.len()];
        for i in (0..tasks.len()).rev() {
            let got = s.execute(std::slice::from_ref(&tasks[i]), &space, &opts, None, true);
            outcomes[i] = got.into_iter().next();
        }
        let outcomes: Vec<RegionOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("one outcome per task"))
            .collect();
        session.commit(&mut s, &outcomes);
    }
    assert!(
        first_round_tasks >= 2,
        "expected a multi-region first round, got {first_round_tasks}"
    );
    assert_eq!(session.finish(), want);
}

#[test]
fn region_pool_execution_is_bit_identical_to_inline() {
    // The same request solved inline and fanned out on a wide pool must
    // agree bit for bit — outcome, tunings, and diagnostics.
    let sg = graph(6, &[(0, 1), (2, 3), (4, 5), (1, 2)]);
    let ic = constraints(&[-3, -4, -2, 6], &[9, 9, 9, 9]);
    let space = BufferSpace::floating(6, 20);
    let opts = SolverOptions::default();

    let mut inline = SampleSolver::new();
    let want = inline.solve(SolveRequest::new(
        &sg,
        ic.as_view(),
        &space,
        PushObjective::ToZero,
        &opts,
    ));
    assert!(want.result.feasible);

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .unwrap();
    let mut par = SampleSolver::new();
    let got = par.solve(
        SolveRequest::new(&sg, ic.as_view(), &space, PushObjective::ToZero, &opts).pool(&pool),
    );
    assert_eq!(got, want);
    // A second parallel solve on the same (now multi-scratch) solver
    // stays identical — parked scratches never leak warm state.
    let again = par.solve(
        SolveRequest::new(&sg, ic.as_view(), &space, PushObjective::ToZero, &opts).pool(&pool),
    );
    assert_eq!(again, want);
}
