//! Regression test for a soundness bug found by the
//! `specialised_matches_reference` property test: the SPFA feasibility
//! solver used "relaxation count > V" as its negative-cycle criterion,
//! which falsely reports infeasibility on graphs where a node's distance
//! legitimately improves many times.  The sound criterion is a shortest
//! path reaching V arcs.  This instance is the minimal counterexample.

use psbi_core::group::{Group, Grouping};
use psbi_core::solve::{BufferSpace, PushObjective, SampleSolver, SolveRequest, SolverOptions};
use psbi_core::yield_eval::Deployment;
use psbi_timing::feasibility::DiffSolver;
use psbi_timing::seq::SeqEdge;
use psbi_timing::{IntegerConstraints, SequentialGraph};
use psbi_variation::CanonicalForm;

fn setup() -> (SequentialGraph, IntegerConstraints) {
    let edges = [(0u32, 0u32), (2, 1), (1, 0), (0, 0), (1, 2), (0, 2), (2, 0)];
    let n = 3;
    let seq: Vec<SeqEdge> = edges
        .iter()
        .map(|(a, b)| SeqEdge {
            from: *a,
            to: *b,
            max_delay: CanonicalForm::constant(1.0),
            min_delay: CanonicalForm::constant(1.0),
        })
        .collect();
    let sg = SequentialGraph::from_parts(
        n,
        seq,
        vec![CanonicalForm::constant(1.0); n],
        vec![CanonicalForm::constant(1.0); n],
    );
    let ic = IntegerConstraints {
        setup_bound: vec![0, 2, 0, 0, -2, 0, 1],
        hold_bound: vec![0, 0, 1, 0, 2, 1, 1],
    };
    (sg, ic)
}

#[test]
fn feasible_chip_is_not_reported_dead() {
    let (sg, ic) = setup();
    let grouping = Grouping {
        groups: vec![
            Group {
                members: vec![0],
                lo: -5,
                hi: 5,
                usage: 1,
            },
            Group {
                members: vec![1],
                lo: -5,
                hi: 5,
                usage: 1,
            },
        ],
        dropped: vec![],
        correlated_pairs: 0,
        merged_pairs: 0,
    };
    let dep = Deployment::from_grouping(3, &grouping);
    let mut solver = DiffSolver::new();
    let mut arcs = Vec::new();
    // k = (-1, -2, 0) satisfies every constraint, so this chip passes.
    assert!(dep.chip_passes(&sg, &ic, &mut solver, &mut arcs));
}

#[test]
fn specialised_solver_finds_the_fix() {
    let (sg, ic) = setup();
    let mut space = BufferSpace::floating(3, 5);
    space.has_buffer[2] = false;
    let mut s = SampleSolver::new();
    let fast = s
        .solve(SolveRequest::new(
            &sg,
            ic.as_view(),
            &space,
            PushObjective::ToZero,
            &SolverOptions::default(),
        ))
        .result;
    let slow = s.solve_reference_milp(&sg, &ic, &space, PushObjective::ToZero);
    assert!(fast.feasible && slow.feasible);
    assert_eq!(fast.count(), slow.count());
    let fsum: i64 = fast.tunings.iter().map(|(_, k)| k.abs()).sum();
    let ssum: i64 = slow.tunings.iter().map(|(_, k)| k.abs()).sum();
    assert_eq!(fsum, ssum);
}
