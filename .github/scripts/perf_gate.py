#!/usr/bin/env python3
"""Perf-regression gate for the batched sampling engine.

Compares a fresh ``perf_json`` probe against the committed
``BENCH_sampling.json`` baseline and fails when the batched-vs-scalar
sampling speedup (and, when the probe ran a wide backend, the
SIMD-vs-scalar kernel speedup) drops below the committed floor minus a
noise tolerance.  Ratios rather than absolute times are compared so the
gate is robust to runner hardware differences; the tolerance absorbs
runner noise on top of that.

Usage: perf_gate.py <probe.json> <baseline.json> [tolerance]
"""

import json
import os
import sys


def main() -> int:
    probe_path, baseline_path = sys.argv[1], sys.argv[2]
    tolerance = float(sys.argv[3]) if len(sys.argv) > 3 else 0.20

    with open(probe_path) as f:
        probe = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    checks = []
    notes = []
    failed_baseline = False

    # The committed ratios embed the baseline's kernel backend (an AVX2
    # host's batched_speedup is far above a portable host's), so floors
    # only gate when the probe ran the same backend as the baseline.
    # On a runner with a different ISA the gate reports informationally
    # and passes — failing there would flag hardware, not a regression.
    probe_simd = probe.get("simd", {})
    base_simd = baseline.get("simd", {})
    probe_backend = probe_simd.get("backend")
    base_backend = base_simd.get("backend")
    if probe_backend == base_backend:
        base_speedup = baseline["batched_speedup"]
        checks.append(
            (
                "batched_speedup (batched vs polar-scalar)",
                probe["batched_speedup"],
                base_speedup,
                base_speedup * (1.0 - tolerance),
            )
        )
        if probe_backend != "scalar" and "wide_vs_scalar_speedup" in base_simd:
            base_wide = base_simd["wide_vs_scalar_speedup"]
            checks.append(
                (
                    f"wide_vs_scalar_speedup ({probe_backend} kernels)",
                    probe_simd["wide_vs_scalar_speedup"],
                    base_wide,
                    base_wide * (1.0 - tolerance),
                )
            )
        # Incremental-solve ratios (warm vs cold re-solve): present since
        # the cross-pass state cache landed; older baselines without the
        # section skip the floor rather than fail.
        probe_incr = probe.get("incremental", {})
        base_incr = baseline.get("incremental", {})
        if "pass_resolve_speedup" in probe_incr and "pass_resolve_speedup" in base_incr:
            base_resolve = base_incr["pass_resolve_speedup"]
            checks.append(
                (
                    "incremental pass_resolve_speedup (warm vs cold A3+B1+B2)",
                    probe_incr["pass_resolve_speedup"],
                    base_resolve,
                    base_resolve * (1.0 - tolerance),
                )
            )
        probe_sweep = probe_incr.get("sweep", {})
        base_sweep = base_incr.get("sweep", {})
        if "speedup" in probe_sweep and "speedup" in base_sweep:
            base_sw = base_sweep["speedup"]
            checks.append(
                (
                    "incremental sweep speedup (adjacent-target fleet)",
                    probe_sweep["speedup"],
                    base_sw,
                    base_sw * (1.0 - tolerance),
                )
            )
        # Cross-chip memoisation floor: the adjacent-target warm flow
        # (arenas + region memo) versus a fully cold flow, step1+step2.
        probe_cc = probe.get("cross_chip", {})
        base_cc = baseline.get("cross_chip", {})
        if "warm_step_speedup" in probe_cc and "warm_step_speedup" in base_cc:
            base_step = base_cc["warm_step_speedup"]
            checks.append(
                (
                    "cross_chip warm_step_speedup (warm vs cold step1+step2)",
                    probe_cc["warm_step_speedup"],
                    base_step,
                    base_step * (1.0 - tolerance),
                )
            )
        # Region-parallel search floor: fan-out on vs off at the same
        # thread count.  The ratio tracks host core count more than the
        # kernel backend (a single-core host's honest ratio is ~1.0), so
        # the floor only gates when the probe has at least as many cores
        # as the committed baseline's host — fewer cores would flag
        # hardware, not a regression.
        probe_rp = probe.get("search_parallel", {})
        base_rp = baseline.get("search_parallel", {})
        if "search_parallel_speedup" in probe_rp and "search_parallel_speedup" in base_rp:
            if probe_rp.get("host_cores", 1) >= base_rp.get("host_cores", 1):
                base_par = base_rp["search_parallel_speedup"]
                checks.append(
                    (
                        "search_parallel_speedup (region fan-out on vs off)",
                        probe_rp["search_parallel_speedup"],
                        base_par,
                        base_par * (1.0 - tolerance),
                    )
                )
            else:
                notes.append(
                    f"probe host has {probe_rp.get('host_cores', 1)} cores vs the "
                    f"baseline's {base_rp.get('host_cores', 1)} — search_parallel "
                    f"floor skipped (probe ratio: "
                    f"{probe_rp['search_parallel_speedup']:.3f}x)"
                )
    else:
        notes.append(
            f"probe backend `{probe_backend}` differs from committed baseline "
            f"backend `{base_backend}` — ratios not comparable, floors skipped "
            f"(probe batched_speedup: {probe['batched_speedup']:.3f}x)"
        )

    # Disarmed-observability ceiling: a span+counter site with tracing and
    # metrics off must stay in the low tens of nanoseconds (two relaxed
    # atomic loads).  An absolute bound rather than a ratio — the cost of
    # an uncontended atomic load is essentially hardware-independent, and
    # a ratio against the committed baseline would let a slow creep land
    # one tolerance-width at a time.  100 ns is ~30x the expected cost, so
    # tripping it means a lock, an env read, or an allocation leaked onto
    # the disarmed fast path.
    probe_obs = probe.get("obs", {})
    disarmed_ns = probe_obs.get("disarmed_span_ns")
    if disarmed_ns is not None:
        ok = disarmed_ns <= 100.0
        failed_baseline |= not ok
        notes.append(
            f"disarmed span+counter site: {disarmed_ns:.1f} ns "
            f"(ceiling 100 ns) — {'✅ pass' if ok else '❌ FAIL: the disarmed fast path regressed'}"
        )
    else:
        notes.append(
            "probe has no obs.disarmed_span_ns — disarmed-overhead ceiling skipped"
        )

    # Search-pruning checks.  B&B node counts at one worker are a
    # deterministic function of the workload — no hardware, no noise —
    # so the probe must reproduce the committed counts *exactly* (0%
    # tolerance); any drift means the search or its pruning rules
    # changed and the baseline must be regenerated deliberately.  The
    # committed baseline must also show the pruning rules alive (a
    # nonzero pruned count and a node-reduction ratio above 1).
    probe_sp = probe.get("search_pruning", {})
    base_sp = baseline.get("search_pruning", {})
    if probe_sp and base_sp:
        for field in ("search_nodes", "search_nodes_unpruned"):
            got, committed = probe_sp.get(field), base_sp.get(field)
            ok = got == committed
            failed_baseline |= not ok
            notes.append(
                f"search_pruning.{field}: probe {got} vs committed {committed} "
                f"(exact match required) — "
                f"{'✅ pass' if ok else '❌ FAIL: deterministic node count drifted'}"
            )
    elif probe_sp:
        notes.append(
            "baseline has no search_pruning section — node-count pin skipped "
            f"(probe node_reduction: {probe_sp.get('node_reduction', 0):.3f}x)"
        )
    if base_sp:
        pruned_total = (
            base_sp.get("pruned_bound", 0)
            + base_sp.get("pruned_dominance", 0)
            + base_sp.get("pruned_symmetry", 0)
        )
        if pruned_total <= 0:
            notes.append(
                "baseline search_pruning pruned counters are all 0 — the "
                "committed BENCH must show live pruning rules"
            )
            failed_baseline = True
        if base_sp.get("node_reduction", 0.0) <= 1.0:
            notes.append(
                f"baseline search_pruning.node_reduction is "
                f"{base_sp.get('node_reduction')} — the committed BENCH must "
                "show the pruned search visiting fewer nodes (> 1.0)"
            )
            failed_baseline = True

    # The committed baseline must keep recording live cross-chip memo
    # activity: a regenerated BENCH_sampling.json with a dead memo (zero
    # hits / zero keys) means the dedup path stopped firing and must not
    # land silently.  Hardware-independent, so checked regardless of the
    # probe's backend.
    base_cc = baseline.get("cross_chip")
    if base_cc is not None:
        for field in ("cross_chip_hits", "distinct_keys"):
            if base_cc.get(field, 0) <= 0:
                notes.append(
                    f"baseline cross_chip.{field} is {base_cc.get(field)} — "
                    "the committed BENCH must show a live memo (> 0)"
                )
                failed_baseline = True
        if base_cc.get("hit_rate", 0.0) <= 0.0:
            notes.append(
                "baseline cross_chip.hit_rate is 0 — the committed BENCH "
                "must show a nonzero cross-chip hit rate"
            )
            failed_baseline = True

    lines = [
        "## Sampling perf gate",
        "",
        f"probe backend: `{probe_backend or 'n/a'}`"
        f" (available: {', '.join(probe_simd.get('available', []))})",
        "",
    ]
    for note in notes:
        lines.append(f"> {note}")
        lines.append("")
    if checks:
        lines.append("| metric | probe | committed | floor | delta | status |")
        lines.append("|---|---|---|---|---|---|")
    failed = failed_baseline
    for name, got, committed, floor in checks:
        delta = (got / committed - 1.0) * 100.0
        ok = got >= floor
        failed |= not ok
        lines.append(
            f"| {name} | {got:.3f}x | {committed:.3f}x | {floor:.3f}x "
            f"| {delta:+.1f}% | {'✅ pass' if ok else '❌ FAIL'} |"
        )
    summary = "\n".join(lines) + "\n"
    print(summary)

    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a") as f:
            f.write(summary)

    if failed:
        print(
            f"perf gate FAILED: speedup fell more than {tolerance:.0%} below "
            "the committed floor; if the regression is intentional, re-run "
            "perf_json and commit the refreshed BENCH_sampling.json",
            file=sys.stderr,
        )
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
