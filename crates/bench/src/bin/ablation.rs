//! Ablations A1–A4 from DESIGN.md: quantify each design choice of the flow.
//!
//! ```text
//! cargo run -p psbi-bench --release --bin ablation -- <which> \
//!     [--circuits s9234] [--samples 1000] [--sigma 0]
//! ```
//!
//! `<which>` ∈ `concentrate` (A1), `pruning` (A2), `sampler` (A3),
//! `zero-window` (A4), or `all`.

use psbi_bench::{run_cell, Args, ExperimentConfig};
use psbi_core::flow::{FlowConfig, InsertionResult};
use psbi_core::prune::PruneConfig;
use psbi_netlist::bench_suite::BenchmarkSpec;

fn report(label: &str, r: &InsertionResult) {
    println!(
        "{label:<26} Nb={:<4} Ab={:<6.2} Yo={:<6.2} Y={:<6.2} Yi={:<6.2} broken={:<3} T={:.2}s",
        r.nb,
        r.ab,
        r.yield_baseline,
        r.yield_with_buffers,
        r.improvement,
        r.broken,
        r.runtime.total_s
    );
}

fn run(label: &str, spec: &BenchmarkSpec, cfg: FlowConfig) -> InsertionResult {
    let r = run_cell(spec, cfg);
    report(label, &r);
    r
}

fn main() {
    let args = Args::from_env();
    let which = std::env::args()
        .nth(1)
        .filter(|w| !w.starts_with("--"))
        .unwrap_or_else(|| "all".to_string());
    let cfg = ExperimentConfig::parse(&args, &["s9234"]);
    let sigma: f64 = args.get("sigma").unwrap_or(0.0);
    let spec = cfg.circuits.first().expect("one circuit");
    println!(
        "# Ablation `{which}` — circuit {}, {} samples\n",
        spec.name, cfg.samples
    );

    if which == "concentrate" || which == "all" {
        println!("[A1] value concentration (push-to-zero / concentrate-to-average)");
        run("  with concentration", spec, cfg.flow_config(sigma));
        let mut off = cfg.flow_config(sigma);
        off.concentrate = false;
        let b = run("  without concentration", spec, off);
        println!(
            "  -> expect wider Ab (ranges) without concentration: {:.2} steps\n",
            b.ab
        );
    }
    if which == "pruning" || which == "all" {
        println!("[A2] buffer pruning");
        run("  with pruning", spec, cfg.flow_config(sigma));
        let mut off = cfg.flow_config(sigma);
        off.prune = PruneConfig {
            low: 0,
            critical: u64::MAX,
            reference_samples: None,
        };
        run("  without pruning", spec, off);
        println!("  -> expect more candidate buffers and longer runtime without pruning\n");
    }
    if which == "sampler" || which == "all" {
        println!("[A3] canonical-edge vs exact gate-level sampling");
        run("  canonical (SSTA) edges", spec, cfg.flow_config(sigma));
        let mut gate = cfg.flow_config(sigma);
        gate.gate_level_sampling = true;
        run("  gate-level exact", spec, gate);
        println!("  -> expect agreeing yields/buffer counts, higher runtime at gate level\n");
    }
    if which == "zero-window" || which == "all" {
        // The effect shows at relaxed targets, where rarely-tuned buffers
        // get windows far from zero; evaluate at +2σ unless overridden.
        let s4 = args.get("sigma").unwrap_or(2.0);
        println!("[A4] zero inside the final windows (at +{s4} sigma)");
        let mut free = cfg.flow_config(s4);
        free.force_zero_in_range = false;
        let free = run("  tuned-values-only windows", spec, free);
        let mut zero = cfg.flow_config(s4);
        zero.force_zero_in_range = true;
        let z = run("  windows forced thru 0", spec, zero);
        println!(
            "  -> broken chips {} vs {}; Ab {:.2} vs {:.2}\n",
            free.broken, z.broken, free.ab, z.ab
        );
    }
}
