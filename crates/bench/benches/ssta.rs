//! P4: SSTA extraction and Monte-Carlo sampling throughput — scalar
//! per-sample kernels and the batched SoA engine side by side.

use criterion::{criterion_group, criterion_main, Criterion};
use psbi_liberty::Library;
use psbi_netlist::bench_suite;
use psbi_timing::graph::TimingGraph;
use psbi_timing::sample::{
    chip_rng, sample_canonical, CanonicalBatchSampler, GateLevelSampler, SampleBatch, SampleTiming,
};
use psbi_timing::seq::SequentialGraph;
use psbi_timing::{constraint, ConstraintBatch, IntegerConstraints};
use psbi_variation::VariationModel;

fn bench_ssta(c: &mut Criterion) {
    let circuit = bench_suite::small_demo(1);
    let lib = Library::industry_like();
    let model = VariationModel::paper_defaults();

    c.bench_function("timing_graph_build_small", |b| {
        b.iter(|| {
            TimingGraph::build(&circuit, &lib, &model)
                .unwrap()
                .num_ffs()
        })
    });

    let tg = TimingGraph::build(&circuit, &lib, &model).unwrap();
    c.bench_function("ssta_extract_small", |b| {
        b.iter(|| SequentialGraph::extract(&tg).edges.len())
    });

    let sg = SequentialGraph::extract(&tg);
    let mut st = SampleTiming::for_graph(&sg);
    c.bench_function("sample_canonical_small", |b| {
        let mut k = 0u64;
        b.iter(|| {
            let (globals, mut rng) = chip_rng(9, k);
            k += 1;
            sample_canonical(&sg, &globals, &mut rng, &mut st);
            st.edge_max[0]
        })
    });

    let mut gls = GateLevelSampler::new(&tg);
    c.bench_function("sample_gate_level_small", |b| {
        let mut k = 0u64;
        b.iter(|| {
            let (globals, mut rng) = chip_rng(9, k);
            k += 1;
            gls.sample(&tg, &sg, &globals, &mut rng, &mut st);
            st.edge_max[0]
        })
    });
}

/// The acceptance benchmark for the batched engine: sampling + constraint
/// extraction of 10 000 chips, scalar per-sample path (polar normal
/// draws, with the `SampleTiming`/`IntegerConstraints` reused across
/// chips exactly as the pre-batch flow's worker loops reused them) versus
/// the batched SoA path (reused `SampleBatch`/`ConstraintBatch` in
/// flow-sized chunks, inverse-transform draws).  The batched path must be
/// ≥ 2× the scalar throughput.
fn bench_batched_vs_scalar_sampling(c: &mut Criterion) {
    const SAMPLES: usize = 10_000;
    const CHUNK: usize = 64;
    let circuit = bench_suite::small_demo(1);
    let lib = Library::industry_like();
    let model = VariationModel::paper_defaults();
    let tg = TimingGraph::build(&circuit, &lib, &model).unwrap();
    let sg = SequentialGraph::extract(&tg);
    let skews = vec![0.0; sg.n_ffs];
    // A realistic target period: the first chip's unbuffered minimum.
    let mut st = SampleTiming::for_graph(&sg);
    let (globals, mut rng) = chip_rng(5, 0);
    sample_canonical(&sg, &globals, &mut rng, &mut st);
    let period = constraint::min_period(&sg, &st, &skews).period;
    let step = period / 160.0;

    let mut group = c.benchmark_group("sampling_extraction_10k");
    group.sample_size(10);
    group.bench_function("scalar_per_sample", |b| {
        let mut st = SampleTiming::for_graph(&sg);
        let mut ic = IntegerConstraints::for_graph(&sg);
        b.iter(|| {
            let mut acc = 0i64;
            for k in 0..SAMPLES as u64 {
                let (globals, mut rng) = chip_rng(5, k);
                sample_canonical(&sg, &globals, &mut rng, &mut st);
                ic.build(&sg, &st, &skews, period, step);
                acc = acc.wrapping_add(ic.setup_bound[0]);
            }
            acc
        })
    });
    group.bench_function("batched_soa", |b| {
        let sampler = CanonicalBatchSampler::new(&sg);
        let mut batch = SampleBatch::new();
        let mut cons = ConstraintBatch::new();
        b.iter(|| {
            let mut acc = 0i64;
            let mut lo = 0usize;
            while lo < SAMPLES {
                let len = CHUNK.min(SAMPLES - lo);
                batch.reset(&sg, len);
                sampler.fill(5, lo as u64, &mut batch);
                cons.build_from(&sg, &batch, &skews, period, step);
                acc = acc.wrapping_add(cons.view(0).setup_bound[0]);
                lo += len;
            }
            acc
        })
    });
    group.finish();
}

/// Scalar-vs-SIMD kernel trajectory: the identical chunked fill +
/// extraction loop pinned to every available kernel backend.  All
/// backends produce bit-identical buffers (pinned by the parity tests),
/// so the spread here is pure kernel throughput — the wide backend must
/// clearly beat the fused scalar reference.
fn bench_simd_backends(c: &mut Criterion) {
    const SAMPLES: usize = 10_000;
    const CHUNK: usize = 64;
    let circuit = bench_suite::small_demo(1);
    let lib = Library::industry_like();
    let model = VariationModel::paper_defaults();
    let tg = TimingGraph::build(&circuit, &lib, &model).unwrap();
    let sg = SequentialGraph::extract(&tg);
    let skews = vec![0.0; sg.n_ffs];
    let mut st = SampleTiming::for_graph(&sg);
    let (globals, mut rng) = chip_rng(5, 0);
    sample_canonical(&sg, &globals, &mut rng, &mut st);
    let period = constraint::min_period(&sg, &st, &skews).period;
    let step = period / 160.0;

    let mut group = c.benchmark_group("sampling_kernel_backends_10k");
    group.sample_size(10);
    for backend in psbi_timing::Backend::available() {
        group.bench_function(format!("fill_extract_{}", backend.name()), |b| {
            let sampler = CanonicalBatchSampler::new(&sg);
            let mut batch = SampleBatch::new();
            let mut cons = ConstraintBatch::new();
            b.iter(|| {
                let mut acc = 0i64;
                let mut lo = 0usize;
                while lo < SAMPLES {
                    let len = CHUNK.min(SAMPLES - lo);
                    batch.reset(&sg, len);
                    sampler.fill_with(backend, 5, lo as u64, &mut batch);
                    cons.build_from_with(backend, &sg, &batch, &skews, period, step);
                    acc = acc.wrapping_add(cons.view(0).setup_bound[0]);
                    lo += len;
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ssta,
    bench_batched_vs_scalar_sampling,
    bench_simd_backends
);
criterion_main!(benches);
