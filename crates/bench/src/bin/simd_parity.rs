//! SIMD-parity probe: draws a window of the sample stream into a
//! [`psbi_timing::SampleBatch`], extracts its integer constraints, and
//! dumps every buffer as raw little-endian bytes.
//!
//! ```text
//! cargo run -p psbi-bench --release --bin simd_parity -- \
//!     [--circuit s9234] [--samples 256] [--seed 42] [--out parity.bin]
//! ```
//!
//! The `simd-parity` CI job runs this twice — once on the default
//! (widest) kernel backend and once under `PSBI_FORCE_SCALAR=1` — and
//! `cmp`s the dumps: the batch engine's dispatch contract is that every
//! backend produces **byte-identical** SoA buffers.  The active backend
//! and an FNV-1a digest are printed to stderr so divergences are easy to
//! spot in job logs.

use psbi_bench::Args;
use psbi_liberty::Library;
use psbi_netlist::bench_suite;
use psbi_timing::graph::TimingGraph;
use psbi_timing::sample::{chip_rng, sample_canonical, CanonicalBatchSampler, SampleBatch};
use psbi_timing::seq::SequentialGraph;
use psbi_timing::{constraint, ConstraintBatch, SampleTiming};
use psbi_variation::VariationModel;

/// Chunk size mirroring the flow's parallel work unit.
const CHUNK: usize = 64;

fn push_f64s(out: &mut Vec<u8>, values: &[f64]) {
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn push_i64s(out: &mut Vec<u8>, values: &[i64]) {
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn main() {
    let args = Args::from_env();
    let circuit_name: String = args.get("circuit").unwrap_or_else(|| "s9234".to_string());
    let samples: usize = args.get("samples").unwrap_or(256);
    let seed: u64 = args.get("seed").unwrap_or(42);
    let out_path: String = args.get("out").unwrap_or_else(|| "parity.bin".to_string());

    let spec = bench_suite::by_name(&circuit_name)
        .unwrap_or_else(|| panic!("unknown circuit `{circuit_name}`"));
    let circuit = spec.generate();
    let lib = Library::industry_like();
    let model = VariationModel::paper_defaults();
    let tg = TimingGraph::build(&circuit, &lib, &model).expect("valid circuit");
    let sg = SequentialGraph::extract(&tg);
    let skews = vec![0.0; sg.n_ffs];

    // A realistic period/step (median unbuffered min-period of a probe),
    // so the floored bounds sit near real step boundaries.
    let mut st = SampleTiming::for_graph(&sg);
    let mut periods = Vec::with_capacity(128);
    for k in 0..128u64 {
        let (globals, mut rng) = chip_rng(seed, k);
        sample_canonical(&sg, &globals, &mut rng, &mut st);
        periods.push(constraint::min_period(&sg, &st, &skews).period);
    }
    let period = psbi_variation::mean(&periods);
    let step = period / 160.0;

    let sampler = CanonicalBatchSampler::new(&sg);
    let mut batch = SampleBatch::new();
    let mut cons = ConstraintBatch::new();
    let mut dump = Vec::new();
    let mut lo = 0usize;
    while lo < samples {
        let len = CHUNK.min(samples - lo);
        batch.reset(&sg, len);
        sampler.fill(seed, lo as u64, &mut batch);
        cons.build_from(&sg, &batch, &skews, period, step);
        for row in 0..len {
            let v = batch.view(row);
            push_f64s(&mut dump, v.edge_max);
            push_f64s(&mut dump, v.edge_min);
            push_f64s(&mut dump, v.setup);
            push_f64s(&mut dump, v.hold);
            let c = cons.view(row);
            push_i64s(&mut dump, c.setup_bound);
            push_i64s(&mut dump, c.hold_bound);
        }
        lo += len;
    }
    // Single-chip replay bytes ride along: `fill_one` must reproduce
    // batch rows on every backend, so its output belongs in the parity
    // surface too.
    for index in [0u64, 1, (samples as u64).saturating_sub(1), 99_991] {
        sampler.fill_one(seed, index, &mut st);
        push_f64s(&mut dump, &st.edge_max);
        push_f64s(&mut dump, &st.edge_min);
        push_f64s(&mut dump, &st.setup);
        push_f64s(&mut dump, &st.hold);
    }

    std::fs::write(&out_path, &dump).expect("write parity dump");
    eprintln!(
        "simd_parity: circuit {circuit_name}, {samples} chips, backend {}, \
         {} bytes, fnv1a {:016x} -> {out_path}",
        psbi_timing::simd::active().name(),
        dump.len(),
        psbi_variation::seeding::fnv1a(&dump)
    );
}
