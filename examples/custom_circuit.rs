//! Bring your own design: build a circuit programmatically (or parse an
//! ISCAS89 `.bench` file), supply a custom cell library, and run the flow.
//!
//! ```text
//! cargo run --release --example custom_circuit [path/to/design.bench]
//! ```

use psbi::core::flow::{BufferInsertionFlow, FlowConfig, TargetPeriod};
use psbi::liberty::Library;
use psbi::netlist::bench_format;
use psbi::netlist::Circuit;
use psbi::variation::VariationModel;

/// A hand-built 4-stage ring pipeline with an imbalanced stage.
fn build_pipeline() -> Circuit {
    let mut c = Circuit::new("ring_pipeline");
    let input = c.add_input("in");
    let ffs: Vec<_> = (0..4)
        .map(|i| c.add_ff(format!("r{i}"), "DFF_X1"))
        .collect();
    // Stage 0 -> 1: deliberately deep (the critical stage).
    let mut sig = ffs[0];
    for d in 0..9 {
        sig = c.add_gate(format!("s01_{d}"), "NAND2_X1", &[sig, input]);
    }
    c.connect_ff_data(ffs[1], sig).unwrap();
    // Stage 1 -> 2: shallow.
    let g = c.add_gate("s12_0", "INV_X1", &[ffs[1]]);
    c.connect_ff_data(ffs[2], g).unwrap();
    // Stage 2 -> 3: medium.
    let mut sig = ffs[2];
    for d in 0..4 {
        sig = c.add_gate(format!("s23_{d}"), "NOR2_X1", &[sig, input]);
    }
    c.connect_ff_data(ffs[3], sig).unwrap();
    // Stage 3 -> 0: medium, closing the ring.
    let mut sig = ffs[3];
    for d in 0..4 {
        sig = c.add_gate(format!("s30_{d}"), "AND2_X1", &[sig, input]);
    }
    c.connect_ff_data(ffs[0], sig).unwrap();
    c.add_output("out", ffs[3]);
    c
}

fn main() {
    // Either parse a .bench file from the command line or build in code.
    let circuit = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path).expect("readable .bench file");
            bench_format::parse_bench(&text).expect("valid .bench netlist")
        }
        None => build_pipeline(),
    };
    println!(
        "circuit `{}`: {} FFs, {} gates",
        circuit.name,
        circuit.num_ffs(),
        circuit.num_gates()
    );

    // A custom library: like the built-in one but slower and more variable
    // (stored/loadable via the .plib text format too).
    let lib = Library::industry_like();
    let text = psbi::liberty::to_text(&lib);
    let lib = psbi::liberty::parse(&text).expect("library round-trips");
    let mut model = VariationModel::paper_defaults();
    model.global_share = 0.4; // more within-die variation than default

    let cfg = FlowConfig {
        samples: 600,
        yield_samples: 2_000,
        target: TargetPeriod::SigmaFactor(0.0),
        record_histograms: 1,
        ..FlowConfig::default()
    };
    let flow = BufferInsertionFlow::builder(&circuit, cfg)
        .library(lib)
        .model(model)
        .build()
        .expect("valid circuit");
    let r = flow.run();
    println!(
        "mu_T = {:.1} ps; inserted {} buffer(s); yield {:.1}% -> {:.1}%",
        r.mu_t, r.nb, r.yield_baseline, r.yield_with_buffers
    );
    for g in &r.groups {
        println!(
            "  buffer on FFs {:?}, window [{}, {}] steps",
            g.members, g.lo, g.hi
        );
    }
    if let Some(s) = r.snapshots.first() {
        println!(
            "most-used buffer (FF {}): final range [{}, {}]",
            s.ff, s.final_range.0, s.final_range.1
        );
    }
}
