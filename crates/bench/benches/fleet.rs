//! Fleet overhead: a 2-circuit × 2-target campaign through
//! `psbi_fleet::run_campaign` (journaling, in-order commit, shared
//! workspace pool, per-circuit flow reuse) versus the same four jobs as
//! back-to-back `BufferInsertionFlow::run()` calls with nothing shared.
//! The campaign's journal replay path is measured separately (a complete
//! journal makes `run_campaign` a pure resume no-op).

use criterion::{criterion_group, criterion_main, Criterion};
use psbi_core::flow::{BufferInsertionFlow, FlowConfig, TargetPeriod};
use psbi_fleet::{run_campaign, CampaignSpec, FleetOptions};
use psbi_netlist::bench_suite::CircuitRef;

fn quick_spec() -> CampaignSpec {
    CampaignSpec {
        name: "bench".into(),
        circuits: vec![
            CircuitRef::parse("tiny_demo:1").expect("valid"),
            CircuitRef::parse("tiny_demo:2").expect("valid"),
        ],
        sigma_factors: vec![0.0, 2.0],
        samples: 60,
        yield_samples: 120,
        calibration_samples: 120,
        threads_per_job: 1,
        ..CampaignSpec::default()
    }
}

fn bench_fleet(c: &mut Criterion) {
    let spec = quick_spec();
    let journal =
        std::env::temp_dir().join(format!("psbi_fleet_bench_{}.journal", std::process::id()));
    let opts = FleetOptions {
        workers: 1,
        ..FleetOptions::default()
    };

    let mut group = c.benchmark_group("fleet_overhead");
    group.sample_size(10);

    group.bench_function("campaign_2x2_tiny", |b| {
        b.iter(|| {
            let _ = std::fs::remove_file(&journal);
            let outcome = run_campaign(&spec, &journal, &opts).expect("campaign runs");
            assert!(outcome.complete());
            outcome.records.len()
        })
    });

    group.bench_function("back_to_back_2x2_tiny", |b| {
        let circuits: Vec<_> = spec
            .circuits
            .iter()
            .map(|c| c.materialize().expect("valid circuit"))
            .collect();
        b.iter(|| {
            let mut buffers = 0usize;
            for circuit in &circuits {
                for k in &spec.sigma_factors {
                    let cfg = FlowConfig {
                        target: TargetPeriod::SigmaFactor(*k),
                        ..spec.flow_config()
                    };
                    let r = BufferInsertionFlow::builder(circuit, cfg)
                        .build()
                        .expect("valid circuit")
                        .run();
                    buffers += r.nb;
                }
            }
            buffers
        })
    });

    // Resume on a complete journal: pure replay, no job executes.
    let _ = std::fs::remove_file(&journal);
    run_campaign(&spec, &journal, &opts).expect("campaign runs");
    group.bench_function("resume_noop_2x2_tiny", |b| {
        b.iter(|| {
            let outcome = run_campaign(&spec, &journal, &opts).expect("replay");
            assert_eq!(outcome.executed_jobs, 0);
            outcome.records.len()
        })
    });
    group.finish();
    let _ = std::fs::remove_file(&journal);
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
