//! Speed binning — the paper's future-work scenario, implemented.
//!
//! The conclusion of the paper names "clock binning" as the open challenge:
//! chips that cannot be rescued at the target period may still be sold in a
//! slower speed grade.  This module classifies every evaluation chip into
//! the fastest bin whose period it meets, with and without the deployed
//! tuning buffers, so the economic effect of buffer insertion across the
//! whole binning table can be quantified.
//!
//! The buffer step δ is a *hardware* property fixed at design time; only
//! the tested period changes per bin, so all bins share the deployment's
//! discretisation.

use crate::yield_eval::Deployment;
use psbi_timing::feasibility::DiffSolver;
use psbi_timing::sample::SampleTiming;
use psbi_timing::{IntegerConstraints, SequentialGraph};
use serde::{Deserialize, Serialize};

/// Outcome of binning one population of chips.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinningReport {
    /// Bin periods in ascending order (ps).
    pub periods: Vec<f64>,
    /// Chips whose fastest passing bin is `periods[i]`, without buffers.
    pub baseline: Vec<usize>,
    /// Chips whose fastest passing bin is `periods[i]`, with buffers.
    pub buffered: Vec<usize>,
    /// Chips failing even the slowest bin, without buffers.
    pub dead_baseline: usize,
    /// Chips failing even the slowest bin, with buffers.
    pub dead_buffered: usize,
    /// Total chips classified.
    pub samples: usize,
}

impl BinningReport {
    /// Average selling period (a proxy for revenue): dead chips count as
    /// the slowest period plus the given scrap penalty.
    pub fn mean_period(&self, buffered: bool, scrap_penalty: f64) -> f64 {
        let (bins, dead) = if buffered {
            (&self.buffered, self.dead_buffered)
        } else {
            (&self.baseline, self.dead_baseline)
        };
        if self.samples == 0 {
            return 0.0;
        }
        let worst = self.periods.last().copied().unwrap_or(0.0) + scrap_penalty;
        let sum: f64 = bins
            .iter()
            .zip(&self.periods)
            .map(|(n, p)| *n as f64 * p)
            .sum::<f64>()
            + dead as f64 * worst;
        sum / self.samples as f64
    }

    /// Chips moved into a *faster or equal* bin by the buffers.
    pub fn upgraded(&self) -> usize {
        // Buffers never slow a chip down per bin (feasible stays feasible
        // only if windows contain a working point, which the evaluator
        // checks per bin), so the upgrade count is the difference of
        // cumulative distributions.
        let mut up = 0usize;
        let mut cum_base = 0usize;
        let mut cum_buf = 0usize;
        for i in 0..self.periods.len() {
            cum_base += self.baseline[i];
            cum_buf += self.buffered[i];
            if cum_buf > cum_base {
                up = up.max(cum_buf - cum_base);
            }
        }
        up
    }
}

/// Classifies chips into speed bins.
///
/// `fill` produces chip `k`'s timing into the provided buffer (the flow
/// supplies its seeded sampler); `skews` and `step` are the design-time
/// clock tree and buffer step.
///
/// # Panics
///
/// Panics if `periods` is empty or not strictly ascending.
pub fn classify<F>(
    sg: &SequentialGraph,
    deployment: &Deployment,
    skews: &[f64],
    periods: &[f64],
    step: f64,
    samples: usize,
    mut fill: F,
) -> BinningReport
where
    F: FnMut(u64, &mut SampleTiming),
{
    assert!(!periods.is_empty(), "need at least one bin");
    assert!(
        periods.windows(2).all(|w| w[0] < w[1]),
        "bin periods must be strictly ascending"
    );
    let mut st = SampleTiming::for_graph(sg);
    let mut ic = IntegerConstraints::for_graph(sg);
    let mut solver = DiffSolver::new();
    let mut arcs = Vec::new();
    let mut report = BinningReport {
        periods: periods.to_vec(),
        baseline: vec![0; periods.len()],
        buffered: vec![0; periods.len()],
        dead_baseline: 0,
        dead_buffered: 0,
        samples,
    };
    for k in 0..samples {
        fill(k as u64, &mut st);
        let mut base_bin = None;
        let mut buf_bin = None;
        for (i, &t) in periods.iter().enumerate() {
            if base_bin.is_some() && buf_bin.is_some() {
                break;
            }
            ic.build(sg, &st, skews, t, step);
            if base_bin.is_none() && ic.feasible_at_zero() {
                base_bin = Some(i);
            }
            if buf_bin.is_none() && deployment.chip_passes(sg, &ic, &mut solver, &mut arcs) {
                buf_bin = Some(i);
            }
        }
        match base_bin {
            Some(i) => report.baseline[i] += 1,
            None => report.dead_baseline += 1,
        }
        match buf_bin {
            Some(i) => report.buffered[i] += 1,
            None => report.dead_buffered += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{Group, Grouping};
    use psbi_timing::sample::{chip_rng, sample_canonical};
    use psbi_timing::seq::SeqEdge;
    use psbi_variation::CanonicalForm;

    fn graph() -> SequentialGraph {
        // Two FFs; one edge with variable delay.
        SequentialGraph::from_parts(
            2,
            vec![SeqEdge {
                from: 0,
                to: 1,
                max_delay: CanonicalForm::with_parts(100.0, [8.0, 0.0, 0.0], 4.0),
                min_delay: CanonicalForm::with_parts(60.0, [5.0, 0.0, 0.0], 2.0),
            }],
            vec![CanonicalForm::constant(10.0); 2],
            vec![CanonicalForm::constant(2.0); 2],
        )
    }

    fn one_buffer_deployment() -> Deployment {
        Deployment::from_grouping(
            2,
            &Grouping {
                groups: vec![Group {
                    members: vec![1],
                    lo: -5,
                    hi: 5,
                    usage: 1,
                }],
                dropped: vec![],
                correlated_pairs: 0,
                merged_pairs: 0,
            },
        )
    }

    #[test]
    fn all_chips_land_in_some_bin_or_die() {
        let sg = graph();
        let dep = one_buffer_deployment();
        let skews = [0.0, -20.0]; // capture clock early → setup pressure
        let report = classify(
            &sg,
            &dep,
            &skews,
            &[100.0, 130.0, 170.0],
            2.0,
            400,
            |k, st| {
                let (g, mut rng) = chip_rng(5, k);
                sample_canonical(&sg, &g, &mut rng, st);
            },
        );
        let base_total: usize = report.baseline.iter().sum::<usize>() + report.dead_baseline;
        let buf_total: usize = report.buffered.iter().sum::<usize>() + report.dead_buffered;
        assert_eq!(base_total, 400);
        assert_eq!(buf_total, 400);
    }

    #[test]
    fn buffers_shift_chips_to_faster_bins() {
        let sg = graph();
        let dep = one_buffer_deployment();
        let skews = [0.0, -20.0];
        let report = classify(
            &sg,
            &dep,
            &skews,
            &[110.0, 140.0, 180.0],
            2.0,
            500,
            |k, st| {
                let (g, mut rng) = chip_rng(9, k);
                sample_canonical(&sg, &g, &mut rng, st);
            },
        );
        // The buffer (window up to +5 steps = +10 ps on the capture clock)
        // relaxes setup, so cumulative counts in fast bins must not drop.
        let mut cb = 0;
        let mut cf = 0;
        for i in 0..report.periods.len() {
            cb += report.baseline[i];
            cf += report.buffered[i];
            assert!(cf >= cb, "bin {i}: buffered {cf} < baseline {cb}");
        }
        assert!(report.dead_buffered <= report.dead_baseline);
        assert!(report.upgraded() > 0, "some chip should upgrade");
        // Mean selling period improves (smaller is better).
        assert!(report.mean_period(true, 50.0) <= report.mean_period(false, 50.0));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bins_panic() {
        let sg = graph();
        let dep = one_buffer_deployment();
        classify(&sg, &dep, &[0.0, 0.0], &[130.0, 110.0], 2.0, 1, |_, _| {});
    }
}
