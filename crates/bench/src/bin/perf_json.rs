//! Perf-trajectory harness: times the batched sampling + constraint
//! extraction engine against the scalar per-sample path and one full flow
//! run on a paper-scale circuit, then writes `BENCH_sampling.json` so
//! future PRs can track throughput regressions.
//!
//! ```text
//! cargo run -p psbi-bench --release --bin perf_json -- \
//!     [--circuit s9234] [--samples 10000] [--flow-samples 1000] \
//!     [--campaign-samples 400] [--seed 42] [--out BENCH_sampling.json]
//! ```
//!
//! Besides the sampling-throughput and flow-stage sections, the output
//! carries a `simd` section — the chunked fill + extraction loop pinned
//! to the fused scalar backend versus the active wide backend
//! (AVX2/NEON/portable), which the `perf-gate` CI job tracks — a
//! `cross_chip` section (adjacent-target warm flow with every solver
//! cache tier on versus a fully cold flow, with the region-memo hit
//! rate and distinct-key count), a `solver_stages` breakdown inside the
//! `flow` section (discovery / saturation-screen / search / MILP
//! seconds), and a `campaign` section: a small 2-circuit × 2-target
//! fleet campaign timed against the same jobs as back-to-back
//! `BufferInsertionFlow::run()` calls, plus the pure journal-replay
//! (resume no-op) time — the fleet subsystem's overhead trajectory.

use psbi_bench::Args;
use psbi_core::flow::{BufferInsertionFlow, FlowConfig, TargetPeriod};
use psbi_fleet::{run_campaign, CampaignSpec, FleetOptions};
use psbi_liberty::Library;
use psbi_netlist::bench_suite;
use psbi_netlist::bench_suite::CircuitRef;
use psbi_timing::graph::TimingGraph;
use psbi_timing::sample::{
    chip_rng, sample_canonical, CanonicalBatchSampler, SampleBatch, SampleTiming,
};
use psbi_timing::seq::SequentialGraph;
use psbi_timing::{constraint, ConstraintBatch, IntegerConstraints};
use psbi_variation::VariationModel;
use std::fmt::Write as _;
use std::time::Instant;

/// Chunk size mirroring the flow's parallel work unit.
const CHUNK: usize = 64;

/// The solver passes are sub-second at bench sizes, so single-shot wall
/// times are noise-dominated: run the measurement three times and keep
/// the fastest (results and diagnostics are identical across repeats —
/// the flows are deterministic, only wall time varies).
fn best_of<F: FnMut() -> (f64, psbi_core::flow::InsertionResult)>(
    mut run: F,
) -> (f64, psbi_core::flow::InsertionResult) {
    let mut best: Option<(f64, psbi_core::flow::InsertionResult)> = None;
    for _ in 0..3 {
        let (secs, r) = run();
        if best.as_ref().is_none_or(|(b, _)| secs < *b) {
            best = Some((secs, r));
        }
    }
    best.expect("at least one run")
}

fn main() {
    let args = Args::from_env();
    let circuit_name: String = args.get("circuit").unwrap_or_else(|| "s9234".to_string());
    let samples: usize = args.get("samples").unwrap_or(10_000);
    let flow_samples: usize = args.get("flow-samples").unwrap_or(1_000);
    let seed: u64 = args.get("seed").unwrap_or(42);
    let out_path: String = args
        .get("out")
        .unwrap_or_else(|| "BENCH_sampling.json".to_string());

    // Disarmed observability overhead, measured before anything arms the
    // registry: one span guard constructed and dropped per iteration is
    // the exact cost every instrumented site pays when PSBI_TRACE /
    // PSBI_METRICS are unset (a relaxed atomic load each).  The perf-gate
    // CI job pins a floor on this number.
    let obs_iters = 2_000_000u64;
    let t_obs = Instant::now();
    for _ in 0..obs_iters {
        let _ = std::hint::black_box(psbi_obs::Span::enter("bench.obs.disarmed"));
        psbi_obs::metrics::counter_add("bench.obs.disarmed", 1);
    }
    let disarmed_span_ns = t_obs.elapsed().as_nanos() as f64 / obs_iters as f64;

    let spec = bench_suite::by_name(&circuit_name).unwrap_or_else(|| {
        panic!("unknown circuit `{circuit_name}`; see bench_suite::paper_suite()")
    });
    let circuit = spec.generate();
    let lib = Library::industry_like();
    let model = VariationModel::paper_defaults();
    let tg = TimingGraph::build(&circuit, &lib, &model).expect("valid circuit");
    let sg = SequentialGraph::extract(&tg);
    let skews = vec![0.0; sg.n_ffs];

    // A realistic period/step: the median unbuffered min-period.
    let mut st = SampleTiming::for_graph(&sg);
    let mut periods = Vec::with_capacity(256);
    for k in 0..256u64 {
        let (globals, mut rng) = chip_rng(seed, k);
        sample_canonical(&sg, &globals, &mut rng, &mut st);
        periods.push(constraint::min_period(&sg, &st, &skews).period);
    }
    let period = psbi_variation::mean(&periods);
    let step = period / 160.0;

    eprintln!(
        "perf_json: {circuit_name} ({} FFs, {} edges), {samples} samples",
        sg.n_ffs,
        sg.edges.len()
    );

    // Scalar per-sample path: polar normal draws chip by chip, with the
    // SampleTiming/IntegerConstraints hoisted out of the loop exactly as
    // the pre-batch flow's worker loops reused them — an honest baseline,
    // not a per-chip-allocation strawman.
    let t0 = Instant::now();
    let mut sink = 0i64;
    let mut scalar_st = SampleTiming::for_graph(&sg);
    let mut scalar_ic = IntegerConstraints::for_graph(&sg);
    for k in 0..samples as u64 {
        let (globals, mut rng) = chip_rng(seed, k);
        sample_canonical(&sg, &globals, &mut rng, &mut scalar_st);
        scalar_ic.build(&sg, &scalar_st, &skews, period, step);
        sink = sink.wrapping_add(scalar_ic.setup_bound[0]);
    }
    let scalar_s = t0.elapsed().as_secs_f64();

    // Batched SoA path: one SampleBatch + ConstraintBatch reused across
    // all chunks, inverse-transform normal draws — exactly what the
    // flow's passes run (on the process-wide kernel backend).
    let sampler = CanonicalBatchSampler::new(&sg);
    let mut batch = SampleBatch::new();
    let mut cons = ConstraintBatch::new();
    let t1 = Instant::now();
    let mut lo = 0usize;
    while lo < samples {
        let len = CHUNK.min(samples - lo);
        batch.reset(&sg, len);
        sampler.fill(seed, lo as u64, &mut batch);
        cons.build_from(&sg, &batch, &skews, period, step);
        sink = sink.wrapping_add(cons.view(0).setup_bound[0]);
        lo += len;
    }
    let batched_s = t1.elapsed().as_secs_f64();

    // SIMD trajectory: the same chunked fill + extraction pinned to the
    // fused scalar backend versus the active (widest) backend.  Both are
    // bit-identical populations, so this isolates pure kernel throughput.
    let backend = psbi_timing::simd::active();
    let mut time_backend = |b: psbi_timing::Backend| {
        let t = Instant::now();
        let mut lo = 0usize;
        while lo < samples {
            let len = CHUNK.min(samples - lo);
            batch.reset(&sg, len);
            sampler.fill_with(b, seed, lo as u64, &mut batch);
            cons.build_from_with(b, &sg, &batch, &skews, period, step);
            sink = sink.wrapping_add(cons.view(0).setup_bound[0]);
            lo += len;
        }
        t.elapsed().as_secs_f64()
    };
    let simd_scalar_s = time_backend(psbi_timing::Backend::Scalar);
    let simd_wide_s = time_backend(backend);
    std::hint::black_box(sink);

    // One full flow run (calibration + passes + grouping + yield), under
    // an armed path-less metrics registry so the solver-stage histograms
    // (`solve.stage.*`) cover exactly this run — the old StageTimes
    // plumbing lives in obs now, and the solver reads no clock at all
    // unless the registry is armed.
    let cfg = FlowConfig {
        samples: flow_samples,
        yield_samples: flow_samples,
        calibration_samples: flow_samples,
        seed,
        target: TargetPeriod::SigmaFactor(0.0),
        ..FlowConfig::default()
    };
    psbi_obs::metrics::arm(None);
    let t2 = Instant::now();
    let result = BufferInsertionFlow::builder(&circuit, cfg.clone())
        .build()
        .expect("valid circuit")
        .run();
    let flow_s = t2.elapsed().as_secs_f64();
    let obs_flow = psbi_obs::metrics::snapshot();
    let stage_s = |name: &str| -> f64 {
        obs_flow
            .histogram(name)
            .map(|h| h.sum as f64 / 1e9)
            .unwrap_or(0.0)
    };

    // Incremental re-solve trajectory: the same flow warm (cross-pass
    // state carried) versus cold (the `PSBI_NO_INCREMENTAL` semantics),
    // isolating the A3+B1+B2 re-solve cost the cache targets.  Results
    // are bit-identical — only the pass times differ.  The refit pass is
    // forced on (`skip_refit_threshold: 0`, the paper's full step 2, as
    // at tight targets): that is the regime where B2 replays B1's search
    // outcomes wholesale instead of only its decompositions.
    let incr_cfg = FlowConfig {
        skip_refit_threshold: 0.0,
        ..cfg
    };
    let resolve_sum = |r: &psbi_core::flow::InsertionResult| {
        r.runtime.pass_a3_s + r.runtime.pass_b1_s + r.runtime.pass_b2_s
    };
    let (warm_resolve_s, warm_result) = best_of(|| {
        let r = BufferInsertionFlow::builder(&circuit, incr_cfg.clone())
            .build()
            .expect("valid circuit")
            .run();
        (resolve_sum(&r), r)
    });
    let cold_flow_cfg = FlowConfig {
        incremental: false,
        cross_chip: false,
        ..incr_cfg.clone()
    };
    let (cold_resolve_s, _) = best_of(|| {
        let r = BufferInsertionFlow::builder(&circuit, cold_flow_cfg.clone())
            .build()
            .expect("valid circuit")
            .run();
        (resolve_sum(&r), r)
    });
    let warm_totals = warm_result.diagnostics.total();

    // Cross-chip trajectory: a warm flow in the adjacent-target regime —
    // one flow swept to the next sweep point, all cache tiers on (parked
    // arenas, cross-chip memo) — against a fully cold flow at the same
    // target.  Single-threaded so the memo hit counters are
    // deterministic (racing workers make them vary, results never);
    // each warm repeat builds a fresh flow so the measured target is
    // warmed by exactly one adjacent target, never by itself.
    let step_sum = |r: &psbi_core::flow::InsertionResult| r.runtime.step1_s + r.runtime.step2_s;
    let cc_warm_cfg = FlowConfig {
        threads: 1,
        ..incr_cfg.clone()
    };
    let (cc_warm_step_s, cc_warm) = best_of(|| {
        let flow = BufferInsertionFlow::builder(&circuit, cc_warm_cfg.clone())
            .build()
            .expect("valid circuit");
        let _ = flow.run_target(TargetPeriod::SigmaFactor(0.0));
        let r = flow.run_target(TargetPeriod::SigmaFactor(0.02));
        (step_sum(&r), r)
    });
    let cc_cold_cfg = FlowConfig {
        threads: 1,
        ..cold_flow_cfg.clone()
    };
    // A fresh flow per repeat: reusing one flow would let its pooled
    // workspaces carry warm saturation-screen witnesses into the later
    // repeats, and best-of would keep a not-actually-cold time.
    let (cc_cold_step_s, _) = best_of(|| {
        let flow = BufferInsertionFlow::builder(&circuit, cc_cold_cfg.clone())
            .build()
            .expect("valid circuit");
        let r = flow.run_target(TargetPeriod::SigmaFactor(0.02));
        (step_sum(&r), r)
    });
    let cc_totals = cc_warm.diagnostics.total();
    let cc_hit_rate = cc_totals.cross_chip_hits as f64 / cc_totals.regions_total.max(1) as f64;

    // Region-parallel search trajectory: the same flow at the same
    // thread count with the per-chip region fan-out on versus off,
    // isolating what the region pool buys the search stage.  A fresh
    // flow per repeat, like the cross-chip legs, so pooled warm state
    // cannot leak between sides.  On a single-core host the pool
    // degrades to scoped threads sharing one core, so the honest ratio
    // there is ~1.0 — the perf gate floors the *committed* ratio with a
    // noise tolerance instead of demanding a fixed multiplier.
    let rp_threads = 2usize;
    let rp_on_cfg = FlowConfig {
        threads: rp_threads,
        ..cfg.clone()
    };
    let rp_off_cfg = FlowConfig {
        threads: rp_threads,
        region_parallel: false,
        ..cfg.clone()
    };
    let (rp_on_s, rp_on_result) = best_of(|| {
        let flow = BufferInsertionFlow::builder(&circuit, rp_on_cfg.clone())
            .build()
            .expect("valid circuit");
        let r = flow.run_target(TargetPeriod::SigmaFactor(0.0));
        (step_sum(&r), r)
    });
    let (rp_off_s, rp_off_result) = best_of(|| {
        let flow = BufferInsertionFlow::builder(&circuit, rp_off_cfg.clone())
            .build()
            .expect("valid circuit");
        let r = flow.run_target(TargetPeriod::SigmaFactor(0.0));
        (step_sum(&r), r)
    });
    // Bit-identical either way — the ratio compares equal work.
    assert_eq!(
        (
            rp_on_result.nb,
            rp_on_result.yield_with_buffers,
            &rp_on_result.groups
        ),
        (
            rp_off_result.nb,
            rp_off_result.yield_with_buffers,
            &rp_off_result.groups
        ),
        "region-parallel changed the flow's canonical result"
    );

    // Search-pruning trajectory: the same single-threaded flow with the
    // B&B pruning rules (dominance, symmetry, bitset covering bounds)
    // on versus off (the `PSBI_NO_SEARCH_PRUNE` semantics).  Node
    // counts come from the flow's own diagnostics at 1 worker, so they
    // are deterministic and host-independent — the perf gate pins them
    // exactly, unlike the wall-clock ratios.  Results are bit-identical
    // either way; only the number of B&B nodes visited differs.
    let sp_on_cfg = FlowConfig {
        threads: 1,
        ..cfg.clone()
    };
    let sp_off_cfg = FlowConfig {
        threads: 1,
        search_prune: false,
        ..cfg.clone()
    };
    // Search-stage seconds per run, isolated from the (identical)
    // sampling/extraction work in the step totals: diff of the armed
    // `solve.stage.search` span-histogram sum around each run.
    let search_stage_s = || {
        psbi_obs::metrics::snapshot()
            .histogram("solve.stage.search")
            .map(|h| h.sum as f64 / 1e9)
            .unwrap_or(0.0)
    };
    let run_sp = |cfg: &FlowConfig| {
        let mut search_s = f64::MAX;
        let (step_s, r) = best_of(|| {
            let before = search_stage_s();
            let flow = BufferInsertionFlow::builder(&circuit, cfg.clone())
                .build()
                .expect("valid circuit");
            let r = flow.run_target(TargetPeriod::SigmaFactor(0.0));
            search_s = search_s.min(search_stage_s() - before);
            (step_sum(&r), r)
        });
        (step_s, search_s, r)
    };
    let (sp_on_s, sp_on_search_s, sp_on_result) = run_sp(&sp_on_cfg);
    let (sp_off_s, sp_off_search_s, sp_off_result) = run_sp(&sp_off_cfg);
    assert_eq!(
        (
            sp_on_result.nb,
            sp_on_result.yield_with_buffers,
            &sp_on_result.groups
        ),
        (
            sp_off_result.nb,
            sp_off_result.yield_with_buffers,
            &sp_off_result.groups
        ),
        "search pruning changed the flow's canonical result"
    );
    let sp_on = sp_on_result.diagnostics.total();
    let sp_off = sp_off_result.diagnostics.total();

    // Fleet campaign vs the same jobs back to back.  The campaign path
    // journals every job and commits in order; the back-to-back path is
    // the pre-fleet workflow (a fresh flow per job, nothing shared).
    let campaign_samples: usize = args.get("campaign-samples").unwrap_or(400);
    let spec = CampaignSpec {
        name: "perf".into(),
        circuits: vec![
            CircuitRef::parse("small_demo:1").expect("valid"),
            CircuitRef::parse("small_demo:2").expect("valid"),
        ],
        sigma_factors: vec![0.0, 2.0],
        samples: campaign_samples,
        yield_samples: campaign_samples,
        calibration_samples: campaign_samples,
        seed,
        threads_per_job: 1,
        ..CampaignSpec::default()
    };
    let journal =
        std::env::temp_dir().join(format!("psbi_perf_json_{}.journal", std::process::id()));
    let fleet_opts = FleetOptions {
        workers: 1,
        ..FleetOptions::default()
    };
    let _ = std::fs::remove_file(&journal);
    let t3 = Instant::now();
    let outcome = run_campaign(&spec, &journal, &fleet_opts).expect("campaign runs");
    let fleet_s = t3.elapsed().as_secs_f64();
    assert!(outcome.complete());
    let t4 = Instant::now();
    let replay = run_campaign(&spec, &journal, &fleet_opts).expect("replay");
    let resume_noop_s = t4.elapsed().as_secs_f64();
    assert_eq!(replay.executed_jobs, 0);
    let t5 = Instant::now();
    let mut back_to_back_buffers = 0usize;
    for circuit_ref in &spec.circuits {
        let c = circuit_ref.materialize().expect("valid circuit");
        for k in &spec.sigma_factors {
            let job_cfg = FlowConfig {
                target: TargetPeriod::SigmaFactor(*k),
                ..spec.flow_config()
            };
            back_to_back_buffers += BufferInsertionFlow::builder(&c, job_cfg)
                .build()
                .expect("valid circuit")
                .run()
                .nb;
        }
    }
    let back_to_back_s = t5.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&journal);
    std::hint::black_box(back_to_back_buffers);

    // Cross-target incremental reuse: one circuit swept over adjacent
    // sigma factors (1 worker, so every target revisits the same flow's
    // state arena), cold vs warm.  The spacing is fine (0.02 σ — a speed
    // binning / yield-curve workload) so many chips keep their violated
    // fingerprint between targets and cross-target replay actually fires.
    let sweep_spec = CampaignSpec {
        name: "perf-sweep".into(),
        circuits: vec![CircuitRef::parse("small_demo:1").expect("valid")],
        sigma_factors: vec![0.0, 0.02, 0.04],
        samples: campaign_samples,
        yield_samples: campaign_samples,
        calibration_samples: campaign_samples,
        seed,
        threads_per_job: 1,
        ..CampaignSpec::default()
    };
    let sweep_journal =
        std::env::temp_dir().join(format!("psbi_perf_sweep_{}.journal", std::process::id()));
    let time_sweep = |incremental: bool| {
        let _ = std::fs::remove_file(&sweep_journal);
        let opts = FleetOptions {
            workers: 1,
            incremental,
            ..FleetOptions::default()
        };
        let t = Instant::now();
        let outcome = run_campaign(&sweep_spec, &sweep_journal, &opts).expect("sweep runs");
        let s = t.elapsed().as_secs_f64();
        assert!(outcome.complete());
        let mut totals = psbi_core::solve::PassDiagnostics::default();
        let mut cross_target = psbi_core::solve::PassDiagnostics::default();
        for diag in outcome.job_diagnostics.iter().flatten() {
            totals.merge(&diag.total());
            // A1 is the first pass of every target, so any reuse it sees
            // can only have come from a *previous target's* parked state.
            cross_target.merge(&diag.a1);
        }
        (s, totals, cross_target)
    };
    // Best-of-3 like the flow ratios: the sweep is sub-second at bench
    // sizes and the counters are deterministic at 1 worker.
    let mut sweep_cold_s = f64::INFINITY;
    let mut sweep_warm_s = f64::INFINITY;
    let mut sweep_totals = psbi_core::solve::PassDiagnostics::default();
    let mut sweep_cross = psbi_core::solve::PassDiagnostics::default();
    for _ in 0..3 {
        let (cold_s, _, _) = time_sweep(false);
        sweep_cold_s = sweep_cold_s.min(cold_s);
        let (warm_s, totals, cross) = time_sweep(true);
        if warm_s < sweep_warm_s {
            sweep_warm_s = warm_s;
            sweep_totals = totals;
            sweep_cross = cross;
        }
    }
    let _ = std::fs::remove_file(&sweep_journal);

    let scalar_rate = samples as f64 / scalar_s;
    let batched_rate = samples as f64 / batched_s;
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"circuit\": \"{circuit_name}\",");
    let _ = writeln!(json, "  \"n_ffs\": {},", sg.n_ffs);
    let _ = writeln!(json, "  \"n_edges\": {},", sg.edges.len());
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"scalar_sampling_extraction\": {{");
    let _ = writeln!(json, "    \"seconds\": {scalar_s:.6},");
    let _ = writeln!(json, "    \"samples_per_sec\": {scalar_rate:.1}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"batched_sampling_extraction\": {{");
    let _ = writeln!(json, "    \"seconds\": {batched_s:.6},");
    let _ = writeln!(json, "    \"samples_per_sec\": {batched_rate:.1}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"batched_speedup\": {:.3},", scalar_s / batched_s);
    let _ = writeln!(json, "  \"simd\": {{");
    let _ = writeln!(json, "    \"backend\": \"{}\",", backend.name());
    let available: Vec<String> = psbi_timing::Backend::available()
        .iter()
        .map(|b| format!("\"{}\"", b.name()))
        .collect();
    let _ = writeln!(json, "    \"available\": [{}],", available.join(", "));
    let _ = writeln!(json, "    \"scalar_batch_s\": {simd_scalar_s:.6},");
    let _ = writeln!(json, "    \"wide_batch_s\": {simd_wide_s:.6},");
    let _ = writeln!(
        json,
        "    \"wide_vs_scalar_speedup\": {:.3}",
        simd_scalar_s / simd_wide_s
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"flow\": {{");
    let _ = writeln!(json, "    \"samples\": {flow_samples},");
    let _ = writeln!(
        json,
        "    \"calibration_s\": {:.6},",
        result.runtime.calibration_s
    );
    let _ = writeln!(json, "    \"step1_s\": {:.6},", result.runtime.step1_s);
    let _ = writeln!(json, "    \"step2_s\": {:.6},", result.runtime.step2_s);
    let _ = writeln!(json, "    \"step3_s\": {:.6},", result.runtime.step3_s);
    let _ = writeln!(json, "    \"yield_s\": {:.6},", result.runtime.yield_s);
    let _ = writeln!(json, "    \"total_s\": {flow_s:.6},");
    let _ = writeln!(
        json,
        "    \"yield_with_buffers\": {:.4},",
        result.yield_with_buffers
    );
    let _ = writeln!(json, "    \"buffers\": {},", result.nb);
    let _ = writeln!(json, "    \"solver_stages\": {{");
    let _ = writeln!(
        json,
        "      \"discovery_s\": {:.6},",
        stage_s("solve.stage.discovery")
    );
    let _ = writeln!(
        json,
        "      \"saturation_screen_s\": {:.6},",
        stage_s("solve.stage.screen")
    );
    let _ = writeln!(
        json,
        "      \"search_s\": {:.6},",
        stage_s("solve.stage.search")
    );
    // Armed-only obs counters for this (multi-threaded) flow run.
    // Informational: racy cross-chip memo hits skip whole searches, so
    // these sums are only pinned exactly in the single-threaded
    // `search_pruning` section below.
    let counter = |name: &str| obs_flow.counter(name).unwrap_or(0);
    let _ = writeln!(
        json,
        "      \"search_nodes\": {},",
        counter("solve.search.nodes")
    );
    let _ = writeln!(
        json,
        "      \"search_pruned\": {},",
        counter("solve.search.pruned.bound")
            + counter("solve.search.pruned.dominance")
            + counter("solve.search.pruned.symmetry")
    );
    let _ = writeln!(json, "      \"milp_s\": {:.6}", stage_s("solve.stage.milp"));
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"cross_chip\": {{");
    let _ = writeln!(json, "    \"flow_samples\": {flow_samples},");
    let _ = writeln!(json, "    \"warm_step_solve_s\": {cc_warm_step_s:.6},");
    let _ = writeln!(json, "    \"cold_step_solve_s\": {cc_cold_step_s:.6},");
    let _ = writeln!(
        json,
        "    \"warm_step_speedup\": {:.3},",
        cc_cold_step_s / cc_warm_step_s
    );
    let _ = writeln!(
        json,
        "    \"cross_chip_hits\": {},",
        cc_totals.cross_chip_hits
    );
    let _ = writeln!(json, "    \"hit_rate\": {cc_hit_rate:.6},");
    let _ = writeln!(
        json,
        "    \"distinct_keys\": {},",
        cc_warm.diagnostics.memo_entries
    );
    let _ = writeln!(json, "    \"regions_total\": {}", cc_totals.regions_total);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"search_parallel\": {{");
    let _ = writeln!(json, "    \"threads\": {rp_threads},");
    let _ = writeln!(
        json,
        "    \"host_cores\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let _ = writeln!(json, "    \"parallel_step_s\": {rp_on_s:.6},");
    let _ = writeln!(json, "    \"serial_step_s\": {rp_off_s:.6},");
    let _ = writeln!(
        json,
        "    \"search_parallel_speedup\": {:.3}",
        rp_off_s / rp_on_s
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"search_pruning\": {{");
    let _ = writeln!(json, "    \"threads\": 1,");
    let _ = writeln!(json, "    \"pruned_step_s\": {sp_on_s:.6},");
    let _ = writeln!(json, "    \"unpruned_step_s\": {sp_off_s:.6},");
    let _ = writeln!(json, "    \"step_speedup\": {:.3},", sp_off_s / sp_on_s);
    let _ = writeln!(json, "    \"pruned_search_s\": {sp_on_search_s:.6},");
    let _ = writeln!(json, "    \"unpruned_search_s\": {sp_off_search_s:.6},");
    let _ = writeln!(
        json,
        "    \"search_speedup\": {:.3},",
        sp_off_search_s / sp_on_search_s
    );
    let _ = writeln!(json, "    \"search_nodes\": {},", sp_on.search_nodes);
    let _ = writeln!(
        json,
        "    \"search_nodes_unpruned\": {},",
        sp_off.search_nodes
    );
    let _ = writeln!(
        json,
        "    \"node_reduction\": {:.3},",
        sp_off.search_nodes as f64 / sp_on.search_nodes.max(1) as f64
    );
    let _ = writeln!(json, "    \"pruned_bound\": {},", sp_on.search_pruned_bound);
    let _ = writeln!(
        json,
        "    \"pruned_dominance\": {},",
        sp_on.search_pruned_dominance
    );
    let _ = writeln!(
        json,
        "    \"pruned_symmetry\": {}",
        sp_on.search_pruned_symmetry
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"incremental\": {{");
    let _ = writeln!(json, "    \"flow_samples\": {flow_samples},");
    let _ = writeln!(json, "    \"refit_forced\": true,");
    let _ = writeln!(json, "    \"cold_a3b1b2_s\": {cold_resolve_s:.6},");
    let _ = writeln!(json, "    \"warm_a3b1b2_s\": {warm_resolve_s:.6},");
    let _ = writeln!(
        json,
        "    \"pass_resolve_speedup\": {:.3},",
        cold_resolve_s / warm_resolve_s
    );
    let _ = writeln!(
        json,
        "    \"flow_regions_reused\": {},",
        warm_totals.regions_reused
    );
    let _ = writeln!(
        json,
        "    \"flow_supports_rehit\": {},",
        warm_totals.supports_rehit
    );
    let _ = writeln!(json, "    \"sweep\": {{");
    let _ = writeln!(
        json,
        "      \"targets\": {},",
        sweep_spec.sigma_factors.len()
    );
    let _ = writeln!(json, "      \"samples\": {campaign_samples},");
    let _ = writeln!(json, "      \"cold_s\": {sweep_cold_s:.6},");
    let _ = writeln!(json, "      \"warm_s\": {sweep_warm_s:.6},");
    let _ = writeln!(
        json,
        "      \"speedup\": {:.3},",
        sweep_cold_s / sweep_warm_s
    );
    let _ = writeln!(
        json,
        "      \"regions_reused\": {},",
        sweep_totals.regions_reused
    );
    let _ = writeln!(
        json,
        "      \"supports_rehit\": {},",
        sweep_totals.supports_rehit
    );
    let _ = writeln!(
        json,
        "      \"cross_target_regions_reused\": {},",
        sweep_cross.regions_reused
    );
    let _ = writeln!(
        json,
        "      \"cross_target_supports_rehit\": {},",
        sweep_cross.supports_rehit
    );
    let _ = writeln!(
        json,
        "      \"cross_chip_hits\": {}",
        sweep_totals.cross_chip_hits
    );
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"campaign\": {{");
    let _ = writeln!(json, "    \"jobs\": {},", outcome.total_jobs);
    let _ = writeln!(json, "    \"samples\": {campaign_samples},");
    let _ = writeln!(json, "    \"fleet_s\": {fleet_s:.6},");
    let _ = writeln!(json, "    \"back_to_back_s\": {back_to_back_s:.6},");
    let _ = writeln!(
        json,
        "    \"fleet_overhead\": {:.4},",
        fleet_s / back_to_back_s - 1.0
    );
    let _ = writeln!(json, "    \"resume_noop_s\": {resume_noop_s:.6}");
    let _ = writeln!(json, "  }},");
    // Process-wide metrics snapshot (the registry armed before the flow
    // run stayed armed through the campaign sections), plus the cost of
    // an instrumented site with everything disarmed — the number the
    // perf-gate floors.
    let _ = writeln!(json, "  \"obs\": {{");
    let _ = writeln!(json, "    \"disarmed_span_ns\": {disarmed_span_ns:.2},");
    let _ = writeln!(
        json,
        "    \"metrics\": {}",
        psbi_obs::metrics::snapshot().to_json()
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).expect("write BENCH json");
    eprintln!(
        "perf_json: scalar {scalar_rate:.0}/s, batched {batched_rate:.0}/s \
         ({:.2}x), backend {} ({:.2}x vs scalar kernels), flow {flow_s:.2}s, \
         incremental A3+B1+B2 {:.2}x / sweep {:.2}x, cross-chip warm \
         step1+step2 {:.2}x ({} hits, {} keys) -> {out_path}",
        scalar_s / batched_s,
        backend.name(),
        simd_scalar_s / simd_wide_s,
        cold_resolve_s / warm_resolve_s,
        sweep_cold_s / sweep_warm_s,
        cc_cold_step_s / cc_warm_step_s,
        cc_totals.cross_chip_hits,
        cc_warm.diagnostics.memo_entries
    );
    eprintln!("perf_json: disarmed obs site costs {disarmed_span_ns:.1} ns");
    print!("{json}");
}
