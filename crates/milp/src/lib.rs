#![warn(missing_docs)]
//! A small, exact LP/MILP solver.
//!
//! The paper solves its per-sample buffer-minimisation problems with Gurobi;
//! no external solver is available here, so this crate implements the
//! required machinery from scratch:
//!
//! * [`simplex`] — a dense two-phase primal simplex over variables with
//!   finite bounds (bounds are handled by shifting and explicit rows, which
//!   is perfectly adequate for the small per-region problems the flow
//!   produces);
//! * [`branch`] — branch-and-bound over the LP relaxation for integer and
//!   binary variables, with most-fractional branching and incumbent
//!   pruning;
//! * [`model`] — a builder API with the two linearisations the paper's
//!   formulations need: absolute-value objectives (`min Σ|x_i − a_i|`, eqs.
//!   (15)/(19)) and big-M indicator constraints (`±x_i ≤ c_i·Γ`, eqs.
//!   (5)–(6)).
//!
//! The solver is deliberately simple but *exact*; the insertion flow uses a
//! specialised combinatorial solver for speed and cross-checks it against
//! this one in tests.
//!
//! # Example
//!
//! ```
//! use psbi_milp::{Model, Op, Status};
//!
//! // min x + y  s.t.  x + 2y >= 4, x,y in [0, 10], y integer
//! let mut m = Model::new();
//! let x = m.add_var("x", 0.0, 10.0, 1.0, false);
//! let y = m.add_var("y", 0.0, 10.0, 1.0, true);
//! m.add_cons(vec![(x, 1.0), (y, 2.0)], Op::Ge, 4.0);
//! let sol = m.solve();
//! assert_eq!(sol.status, Status::Optimal);
//! assert!((sol.objective - 2.0).abs() < 1e-6); // y = 2, x = 0
//! ```

pub mod branch;
pub mod model;
pub mod simplex;

pub use model::{Model, Op, Solution, Status, VarId};
