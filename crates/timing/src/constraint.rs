//! Discretised setup/hold constraints and unbuffered-period analysis.
//!
//! With tuning buffers, the paper's constraints (1)–(2) for a sequential
//! edge `i → j` with fixed clock-tree skews `t` and tuning delays `x = k·δ`
//! (in integer steps `k`) are difference constraints:
//!
//! ```text
//! setup: k_i − k_j ≤ ⌊(T − s_j − d̄ij + t_j − t_i)/δ⌋   (= setup_bound)
//! hold:  k_j − k_i ≤ ⌊(d̲ij − h_j + t_i − t_j)/δ⌋        (= hold_bound)
//! ```
//!
//! Flooring is conservative: any integer solution of the floored system
//! satisfies the original real constraints.

use crate::sample::SampleTiming;
use crate::seq::SequentialGraph;
use serde::{Deserialize, Serialize};

/// Which side of an edge constraint is meant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstraintKind {
    /// Max-delay / setup constraint.
    Setup,
    /// Min-delay / hold constraint.
    Hold,
}

/// Integer difference-constraint bounds for one sample.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntegerConstraints {
    /// Per edge: `k_from − k_to ≤ setup_bound[e]`.
    pub setup_bound: Vec<i64>,
    /// Per edge: `k_to − k_from ≤ hold_bound[e]`.
    pub hold_bound: Vec<i64>,
}

impl IntegerConstraints {
    /// Pre-sizes for a graph.
    pub fn for_graph(sg: &SequentialGraph) -> Self {
        Self {
            setup_bound: vec![0; sg.edges.len()],
            hold_bound: vec![0; sg.edges.len()],
        }
    }

    /// Fills the bounds for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive.
    pub fn build(
        &mut self,
        sg: &SequentialGraph,
        st: &SampleTiming,
        skews: &[f64],
        period: f64,
        step: f64,
    ) {
        assert!(step > 0.0, "buffer step must be positive");
        self.setup_bound.resize(sg.edges.len(), 0);
        self.hold_bound.resize(sg.edges.len(), 0);
        for (e, edge) in sg.edges.iter().enumerate() {
            let (i, j) = (edge.from as usize, edge.to as usize);
            let setup_slack = period - st.setup[j] - st.edge_max[e] + skews[j] - skews[i];
            let hold_slack = st.edge_min[e] - st.hold[j] + skews[i] - skews[j];
            self.setup_bound[e] = (setup_slack / step).floor() as i64;
            self.hold_bound[e] = (hold_slack / step).floor() as i64;
        }
    }

    /// Edges whose constraints are violated with all tunings at zero.
    pub fn violations_at_zero(&self) -> impl Iterator<Item = (usize, ConstraintKind)> + '_ {
        let setups = self
            .setup_bound
            .iter()
            .enumerate()
            .filter(|(_, b)| **b < 0)
            .map(|(e, _)| (e, ConstraintKind::Setup));
        let holds = self
            .hold_bound
            .iter()
            .enumerate()
            .filter(|(_, b)| **b < 0)
            .map(|(e, _)| (e, ConstraintKind::Hold));
        setups.chain(holds)
    }

    /// True when the zero assignment satisfies every constraint.
    pub fn feasible_at_zero(&self) -> bool {
        self.setup_bound.iter().all(|b| *b >= 0) && self.hold_bound.iter().all(|b| *b >= 0)
    }
}

/// Minimum-period analysis of one unbuffered sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinPeriod {
    /// Smallest clock period satisfying every setup constraint at `x = 0`.
    pub period: f64,
    /// Whether every hold constraint holds at `x = 0` (independent of `T`).
    pub hold_ok: bool,
    /// Edge achieving the critical setup constraint.
    pub critical_edge: usize,
}

/// Computes the unbuffered minimum period of a sample.
///
/// The critical edge maximises `d̄ij + s_j + t_i − t_j`.
///
/// # Panics
///
/// Panics if the graph has no edges.
pub fn min_period(sg: &SequentialGraph, st: &SampleTiming, skews: &[f64]) -> MinPeriod {
    assert!(!sg.edges.is_empty(), "sequential graph has no edges");
    let mut best = f64::NEG_INFINITY;
    let mut arg = 0usize;
    let mut hold_ok = true;
    for (e, edge) in sg.edges.iter().enumerate() {
        let (i, j) = (edge.from as usize, edge.to as usize);
        let need = st.edge_max[e] + st.setup[j] + skews[i] - skews[j];
        if need > best {
            best = need;
            arg = e;
        }
        if st.edge_min[e] - st.hold[j] + skews[i] - skews[j] < 0.0 {
            hold_ok = false;
        }
    }
    MinPeriod {
        period: best.max(0.0),
        hold_ok,
        critical_edge: arg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TimingGraph;
    use crate::sample::{chip_rng, sample_canonical, SampleTiming};
    use psbi_liberty::Library;
    use psbi_netlist::bench_suite;
    use psbi_variation::VariationModel;

    fn fixture() -> (SequentialGraph, SampleTiming, Vec<f64>) {
        let c = bench_suite::tiny_demo(9);
        let lib = Library::industry_like();
        let model = VariationModel::paper_defaults();
        let tg = TimingGraph::build(&c, &lib, &model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let mut st = SampleTiming::for_graph(&sg);
        let (globals, mut rng) = chip_rng(3, 0);
        sample_canonical(&sg, &globals, &mut rng, &mut st);
        let skews = vec![0.0; sg.n_ffs];
        (sg, st, skews)
    }

    #[test]
    fn min_period_is_feasibility_threshold() {
        let (sg, st, skews) = fixture();
        let mp = min_period(&sg, &st, &skews);
        assert!(mp.period > 0.0);
        let step = mp.period / 160.0;
        let mut ic = IntegerConstraints::for_graph(&sg);
        // Slightly above the minimum period: setup feasible at zero.
        ic.build(&sg, &st, &skews, mp.period * 1.0001, step);
        assert!(ic.setup_bound.iter().all(|b| *b >= 0));
        // Slightly below: the critical edge must be violated.
        ic.build(&sg, &st, &skews, mp.period - 2.0 * step, step);
        assert!(ic.setup_bound[mp.critical_edge] < 0);
    }

    #[test]
    fn hold_bounds_do_not_depend_on_period() {
        let (sg, st, skews) = fixture();
        let mut a = IntegerConstraints::for_graph(&sg);
        let mut b = IntegerConstraints::for_graph(&sg);
        a.build(&sg, &st, &skews, 500.0, 2.0);
        b.build(&sg, &st, &skews, 900.0, 2.0);
        assert_eq!(a.hold_bound, b.hold_bound);
        assert_ne!(a.setup_bound, b.setup_bound);
    }

    #[test]
    fn flooring_is_conservative() {
        let (sg, st, skews) = fixture();
        let mp = min_period(&sg, &st, &skews);
        let step = mp.period / 160.0;
        let mut ic = IntegerConstraints::for_graph(&sg);
        let t = mp.period * 1.05;
        ic.build(&sg, &st, &skews, t, step);
        for (e, edge) in sg.edges.iter().enumerate() {
            let (i, j) = (edge.from as usize, edge.to as usize);
            // Integer bound times step never exceeds the real slack.
            let real = t - st.setup[j] - st.edge_max[e] + skews[j] - skews[i];
            assert!(ic.setup_bound[e] as f64 * step <= real + 1e-9);
        }
    }

    #[test]
    fn skews_shift_constraints() {
        let (sg, st, mut skews) = fixture();
        let mp = min_period(&sg, &st, &skews);
        // Delay the launching FF of the critical edge: period must grow.
        let crit = &sg.edges[mp.critical_edge];
        skews[crit.from as usize] += 50.0;
        let mp2 = min_period(&sg, &st, &skews);
        assert!(mp2.period >= mp.period + 49.0);
    }

    #[test]
    fn violations_at_zero_enumerates_both_kinds() {
        let (sg, st, skews) = fixture();
        let mut ic = IntegerConstraints::for_graph(&sg);
        let mp = min_period(&sg, &st, &skews);
        ic.build(&sg, &st, &skews, mp.period * 0.9, mp.period / 160.0);
        let setup_viols = ic
            .violations_at_zero()
            .filter(|(_, k)| *k == ConstraintKind::Setup)
            .count();
        assert!(setup_viols > 0);
        assert!(!ic.feasible_at_zero());
        ic.build(&sg, &st, &skews, mp.period * 1.01, mp.period / 160.0);
        if mp.hold_ok {
            assert!(ic.feasible_at_zero());
        }
    }
}
