//! Rendering of insertion results as Markdown and CSV.
//!
//! The experiment binaries use these helpers to produce the tables recorded
//! in `EXPERIMENTS.md`; they are exposed publicly so downstream users can
//! log flow outcomes uniformly.

use crate::flow::InsertionResult;
use std::fmt::Write as _;

/// One labelled result (e.g. `("s9234", "muT", result)`).
pub type LabelledResult<'a> = (&'a str, &'a str, &'a InsertionResult);

/// Renders results as a GitHub-flavoured Markdown table with the paper's
/// Table-I columns.
pub fn markdown_table(rows: &[LabelledResult<'_>]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| circuit | target | ns | ng | Nb | Ab | Yo (%) | Y (%) | Yi (pts) | T (s) |"
    );
    let _ = writeln!(out, "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|");
    for (circuit, target, r) in rows {
        let _ = writeln!(
            out,
            "| {circuit} | {target} | {} | {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} |",
            r.n_ffs,
            r.n_gates,
            r.nb,
            r.ab,
            r.yield_baseline,
            r.yield_with_buffers,
            r.improvement,
            r.runtime.total_s
        );
    }
    out
}

/// Renders results as CSV with a header row.
pub fn csv_table(rows: &[LabelledResult<'_>]) -> String {
    let mut out = String::from(
        "circuit,target,ns,ng,nb,ab,yo,y,yi,runtime_s,mu_t,sigma_t,rescued,broken,buffers_before_grouping\n",
    );
    for (circuit, target, r) in rows {
        let _ = writeln!(
            out,
            "{circuit},{target},{},{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.2},{:.2},{},{},{}",
            r.n_ffs,
            r.n_gates,
            r.nb,
            r.ab,
            r.yield_baseline,
            r.yield_with_buffers,
            r.improvement,
            r.runtime.total_s,
            r.mu_t,
            r.sigma_t,
            r.rescued,
            r.broken,
            r.buffers_before_grouping
        );
    }
    out
}

/// One-paragraph human summary of a result.
pub fn summary(r: &InsertionResult) -> String {
    format!(
        "{}: {} buffers (avg range {:.1} steps) lift yield from {:.2}% to {:.2}% \
         (+{:.2} points, {} chips rescued, {} broken) at T = {:.1} ps \
         (muT = {:.1}, sigmaT = {:.1}); flow took {:.2}s.",
        r.circuit,
        r.nb,
        r.ab,
        r.yield_baseline,
        r.yield_with_buffers,
        r.improvement,
        r.rescued,
        r.broken,
        r.period,
        r.mu_t,
        r.sigma_t,
        r.runtime.total_s
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{BufferInsertionFlow, FlowConfig, TargetPeriod};
    use psbi_netlist::bench_suite;

    fn sample_result() -> InsertionResult {
        let c = bench_suite::tiny_demo(17);
        let cfg = FlowConfig {
            samples: 60,
            yield_samples: 150,
            calibration_samples: 150,
            threads: 1,
            target: TargetPeriod::SigmaFactor(0.0),
            ..FlowConfig::default()
        };
        BufferInsertionFlow::new(&c, cfg).unwrap().run()
    }

    #[test]
    fn markdown_has_row_per_result() {
        let r = sample_result();
        let table = markdown_table(&[("tiny", "muT", &r), ("tiny", "muT+2s", &r)]);
        assert_eq!(table.lines().count(), 4); // header + separator + 2 rows
        assert!(table.contains("| tiny | muT |"));
        assert!(table.contains("| Nb |"));
    }

    #[test]
    fn csv_is_parseable() {
        let r = sample_result();
        let csv = csv_table(&[("tiny", "muT", &r)]);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let row = lines.next().unwrap();
        assert_eq!(header.split(',').count(), row.split(',').count());
        assert!(row.starts_with("tiny,muT,24,220,"));
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let r = sample_result();
        let s = summary(&r);
        assert!(s.contains("tiny_demo"));
        assert!(s.contains("buffers"));
        assert!(s.contains("yield"));
    }
}
