//! Vendored, offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion API the PSBI benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`],
//! `criterion_group!` / `criterion_main!` — with a straightforward
//! measurement loop: warm up, then run timed batches and report the median
//! batch's per-iteration time.  Output goes to stdout as
//! `name  time: <t> per iter (<n> iters)`.
//!
//! A positional command-line argument acts as a substring filter on
//! benchmark names (the same convention `cargo bench -- <filter>` uses);
//! `--quick` cuts measurement time by 5×.

use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimiser from deleting benched work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for parameterised benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `group_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-benchmark timing driver handed to `b.iter(...)` closures.
pub struct Bencher {
    /// Nanoseconds per iteration of the median measured batch.
    median_ns: f64,
    /// Total iterations executed during measurement.
    iters: u64,
    measure_time: Duration,
    sample_size: usize,
}

impl Bencher {
    fn new(measure_time: Duration, sample_size: usize) -> Self {
        Self {
            median_ns: f64::NAN,
            iters: 0,
            measure_time,
            sample_size,
        }
    }

    /// Measures `f`, retaining its output via [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: grow until one batch takes
        // at least ~1 ms (or a growth cap is hit).
        let mut batch: u64 = 1;
        let warm_deadline = Instant::now() + self.measure_time / 5;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
            if Instant::now() > warm_deadline {
                break;
            }
        }
        // Timed batches.
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measure_time;
        let mut total_iters = 0u64;
        while samples.len() < self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            samples.push(dt.as_nanos() as f64 / batch as f64);
            total_iters += batch;
            if Instant::now() > deadline && samples.len() >= 5 {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.median_ns = samples[samples.len() / 2];
        self.iters = total_iters;
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
    measure_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut quick = false;
        for arg in std::env::args().skip(1) {
            if arg == "--quick" {
                quick = true;
            } else if arg == "--bench" || arg == "--test" || arg.starts_with('-') {
                // Harness flags passed through by cargo; ignore.
            } else {
                filter = Some(arg);
            }
        }
        Self {
            filter,
            measure_time: if quick {
                Duration::from_millis(60)
            } else {
                Duration::from_millis(300)
            },
            sample_size: 15,
        }
    }
}

impl Criterion {
    fn wants(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one(&self, name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.wants(name) {
            return;
        }
        let mut b = Bencher::new(self.measure_time, sample_size);
        f(&mut b);
        if b.iters == 0 {
            println!("{name:<48} (no measurement)");
        } else {
            println!(
                "{name:<48} time: {:>10} per iter ({} iters)",
                format_ns(b.median_ns),
                b.iters
            );
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one(name, sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed batches for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, sample_size, &mut f);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion
            .run_one(&full, sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (formatting no-op, kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
