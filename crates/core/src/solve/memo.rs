//! The cross-chip region-solve memo table.
//!
//! Monte-Carlo chips drawn from one variation model concentrate onto a
//! small number of distinct violated-endpoint patterns, and the
//! saturation-normalised materialisation (see
//! [`materialize_cons`](super::materialize_cons)) collapses their
//! non-binding slack drift on top — so one flow re-derives the *same*
//! region subproblem hundreds of times across chips.  The per-chip
//! [`ChipSolveState`](super::ChipSolveState) arenas can only replay a
//! chip's **own** history; this module dedups across chips (and, through
//! the shared [`WorkspacePool`](crate::flow::WorkspacePool), across the
//! concurrently running sweep targets of one circuit's fleet job group).
//!
//! # Correctness model
//!
//! A region search outcome is a **pure function** of the saturation-
//! normalised region system — the pinned tie-breaking introduced with the
//! incremental layer (see [`super::search`]) makes the returned support a
//! deterministic function of exactly the inputs captured in [`MemoKey`]:
//!
//! * the region's flip-flops in pinned BFS order (the search's slot
//!   numbering),
//! * every attached constraint as `(a, b, materialised bound)` in
//!   attachment order (`violated`, `var_of` and the feasibility systems
//!   are all derived from these),
//! * each region FF's tuning window,
//! * the [`SolverOptions`] limits (`region_cap` picks the fallback path,
//!   `bb_node_cap` bounds the search).
//!
//! Replay is **verified**: a hit requires *exact value equality* on the
//! full key — the hash only picks the shard and the bucket (the standard
//! `HashMap` compares the complete key on every probe), never the answer.
//! A memo hit therefore returns a bit-identical outcome regardless of
//! which worker computed it first, which is what keeps flow results and
//! fleet journals byte-identical for any worker count and with the table
//! disabled (`PSBI_NO_CROSSCHIP=1`).
//!
//! # Concurrency
//!
//! The table is sharded: the key hash selects one of [`SHARDS`] mutexes,
//! so concurrent workers only contend when they touch the same slice of
//! the key space.  Publishes race benignly — both racers computed the
//! same pure function, so first-writer-wins inserts an outcome any loser
//! would have inserted bit for bit.  Outcomes are stored (and handed
//! out) behind `Arc`, so a hit never copies the support/witness vectors.

use super::state::CachedOutcome;
use super::{RegCons, Region, SolverOptions};
use crate::solve::BufferSpace;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Shard count: enough to make cross-worker contention rare at realistic
/// core counts while keeping the empty table's footprint trivial.
const SHARDS: usize = 64;

/// The exact value of one saturation-normalised region system — the full
/// read set of [`SampleSolver::search_region`](super::SampleSolver), and
/// therefore the complete invalidation key of its outcome.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct MemoKey {
    /// Region FFs in pinned BFS order (global indices; the table is
    /// owner-keyed per flow, so indices never meet a foreign graph).
    ffs: Box<[u32]>,
    /// Attached constraints `(a, b, saturation-normalised bound)` in
    /// attachment order.
    cons: Box<[(u32, u32, i64)]>,
    /// Tuning windows over `ffs`, in the same order.
    bounds: Box<[(i64, i64)]>,
    /// Solver limits the search runs under.
    ///
    /// The search-prune mode is deliberately *not* part of the key: the
    /// shipped workloads produce bit-identical outcomes in both modes
    /// (the pruning rules preserve the pinned tie-break order — see
    /// `super::search`), so keying on it would only split the memo and
    /// halve the hit rate when modes mix within one process.
    opts: SolverOptions,
}

impl MemoKey {
    /// Captures the exact search inputs of `region` under the
    /// materialised constraints `cons` and the windows of `space`.
    pub(crate) fn capture(
        region: &Region,
        cons: &[RegCons],
        space: &BufferSpace,
        opts: &SolverOptions,
    ) -> Self {
        Self {
            ffs: region.ffs.as_slice().into(),
            cons: cons
                .iter()
                .map(|c| (c.a, c.b, c.bound))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            bounds: region
                .ffs
                .iter()
                .map(|&ff| space.bounds[ff as usize])
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            opts: *opts,
        }
    }

    /// The shard this key lives in.  Any deterministic hash works here —
    /// it only spreads keys over mutexes; equality is always checked on
    /// the full key value.
    fn shard(&self) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut hasher);
        (hasher.finish() as usize) % SHARDS
    }
}

/// A flow-level (optionally fleet-level) concurrent memo table of region
/// search outcomes, keyed by the exact saturation-normalised region
/// system (see the module docs).
///
/// One table serves **one** flow — like the per-chip state arenas it is
/// owner-keyed in the [`WorkspacePool`](crate::flow::WorkspacePool), so a
/// cached region can never be replayed against a different circuit's
/// graph.  Unlike the arenas it is shared (`Arc`) rather than checked out
/// exclusively: concurrent `run_target` calls of one flow — a fleet
/// sweeping several sigma targets of one circuit in parallel — all read
/// and publish into the same table.
#[derive(Default)]
pub struct RegionMemo {
    shards: Vec<Mutex<HashMap<MemoKey, Arc<CachedOutcome>>>>,
}

impl RegionMemo {
    /// An empty table.
    pub fn new() -> Self {
        let mut shards = Vec::with_capacity(SHARDS);
        shards.resize_with(SHARDS, || Mutex::new(HashMap::new()));
        Self { shards }
    }

    /// Number of distinct region systems memoised so far.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("memo shard lock").len())
            .sum()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the outcome memoised for exactly `key` (full value
    /// equality; the hash only locates the shard/bucket).
    pub(crate) fn lookup(&self, key: &MemoKey) -> Option<Arc<CachedOutcome>> {
        self.shards[key.shard()]
            .lock()
            .expect("memo shard lock")
            .get(key)
            .map(Arc::clone)
    }

    /// Publishes a freshly searched outcome.  First writer wins: a racing
    /// publish for the same key computed the same pure function, so the
    /// retained value is bit-identical either way.
    pub(crate) fn publish(&self, key: MemoKey, outcome: Arc<CachedOutcome>) {
        self.shards[key.shard()]
            .lock()
            .expect("memo shard lock")
            .entry(key)
            .or_insert(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(ffs: &[u32]) -> Region {
        let mut members = ffs.to_vec();
        members.sort_unstable();
        Region {
            ffs: ffs.to_vec(),
            members,
            cons: Vec::new(),
            saturated: false,
        }
    }

    fn space(n: usize) -> BufferSpace {
        BufferSpace::floating(n, 10)
    }

    #[test]
    fn lookup_requires_full_key_equality() {
        let memo = RegionMemo::new();
        let opts = SolverOptions::default();
        let sp = space(4);
        let cons = vec![
            RegCons {
                a: 0,
                b: 1,
                bound: -3,
            },
            RegCons {
                a: 1,
                b: 2,
                bound: 20,
            },
        ];
        let key = MemoKey::capture(&region(&[0, 1, 2]), &cons, &sp, &opts);
        memo.publish(key.clone(), Arc::new(CachedOutcome::Infeasible));
        assert_eq!(memo.len(), 1);
        assert!(memo.lookup(&key).is_some());

        // Any single-component difference must miss: a shifted bound …
        let mut shifted = cons.clone();
        shifted[0].bound = -2;
        let miss = MemoKey::capture(&region(&[0, 1, 2]), &shifted, &sp, &opts);
        assert!(memo.lookup(&miss).is_none());
        // … a different FF order (slots renumber) …
        let miss = MemoKey::capture(&region(&[1, 0, 2]), &cons, &sp, &opts);
        assert!(memo.lookup(&miss).is_none());
        // … a different window …
        let mut narrow = space(4);
        narrow.bounds[1] = (-1, 1);
        let miss = MemoKey::capture(&region(&[0, 1, 2]), &cons, &narrow, &opts);
        assert!(memo.lookup(&miss).is_none());
        // … or different solver limits.
        let capped = SolverOptions {
            bb_node_cap: 7,
            ..opts
        };
        let miss = MemoKey::capture(&region(&[0, 1, 2]), &cons, &sp, &capped);
        assert!(memo.lookup(&miss).is_none());
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn first_publish_wins_and_len_counts_distinct_keys() {
        let memo = RegionMemo::new();
        let opts = SolverOptions::default();
        let sp = space(2);
        let cons = vec![RegCons {
            a: 0,
            b: 1,
            bound: -1,
        }];
        let key = MemoKey::capture(&region(&[0, 1]), &cons, &sp, &opts);
        let first = Arc::new(CachedOutcome::Feasible {
            count: 1,
            support: vec![0],
            witness: vec![-1],
            exact: true,
        });
        memo.publish(key.clone(), Arc::clone(&first));
        memo.publish(key.clone(), Arc::new(CachedOutcome::Infeasible));
        assert_eq!(memo.len(), 1);
        let hit = memo.lookup(&key).expect("published");
        assert!(Arc::ptr_eq(&hit, &first), "first writer must win");
    }
}
