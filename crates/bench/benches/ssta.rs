//! P4: SSTA extraction and per-sample Monte-Carlo throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use psbi_liberty::Library;
use psbi_netlist::bench_suite;
use psbi_timing::graph::TimingGraph;
use psbi_timing::sample::{chip_rng, sample_canonical, GateLevelSampler, SampleTiming};
use psbi_timing::seq::SequentialGraph;
use psbi_variation::VariationModel;

fn bench_ssta(c: &mut Criterion) {
    let circuit = bench_suite::small_demo(1);
    let lib = Library::industry_like();
    let model = VariationModel::paper_defaults();

    c.bench_function("timing_graph_build_small", |b| {
        b.iter(|| TimingGraph::build(&circuit, &lib, &model).unwrap().num_ffs())
    });

    let tg = TimingGraph::build(&circuit, &lib, &model).unwrap();
    c.bench_function("ssta_extract_small", |b| {
        b.iter(|| SequentialGraph::extract(&tg).edges.len())
    });

    let sg = SequentialGraph::extract(&tg);
    let mut st = SampleTiming::for_graph(&sg);
    c.bench_function("sample_canonical_small", |b| {
        let mut k = 0u64;
        b.iter(|| {
            let (globals, mut rng) = chip_rng(9, k);
            k += 1;
            sample_canonical(&sg, &globals, &mut rng, &mut st);
            st.edge_max[0]
        })
    });

    let mut gls = GateLevelSampler::new(&tg);
    c.bench_function("sample_gate_level_small", |b| {
        let mut k = 0u64;
        b.iter(|| {
            let (globals, mut rng) = chip_rng(9, k);
            k += 1;
            gls.sample(&tg, &sg, &globals, &mut rng, &mut st);
            st.edge_max[0]
        })
    });
}

criterion_group!(benches, bench_ssta);
criterion_main!(benches);
