//! Regenerates the paper's Fig. 4: buffer pruning on the tuning-count
//! graph.  Prints the tuning-count distribution after the min-count pass,
//! which nodes the prune rule removes, and how the surviving graph
//! partitions — the effect the paper credits for the speed-up ("may also
//! reduce the problem space significantly by partitioning the graph into
//! unconnected sub-graphs").
//!
//! ```text
//! cargo run -p psbi-bench --release --bin fig4_pruning -- \
//!     [--circuits s9234] [--samples 2000] [--sigma 0]
//! ```

use psbi_bench::{run_cell, Args, ExperimentConfig};
use psbi_core::flow::BufferInsertionFlow;
use psbi_timing::criticality;

fn main() {
    let args = Args::from_env();
    let cfg = ExperimentConfig::parse(&args, &["s9234"]);
    let sigma: f64 = args.get("sigma").unwrap_or(0.0);
    let spec = cfg.circuits.first().expect("one circuit");
    println!(
        "# Fig. 4 reproduction — pruning statistics, circuit {}, {} samples",
        spec.name, cfg.samples
    );
    let r = run_cell(spec, cfg.flow_config(sigma));

    // Edge criticality under the chosen period: where the tuning demand
    // comes from (the counts on Fig. 4's nodes).
    let circuit = spec.generate();
    let flow = BufferInsertionFlow::builder(&circuit, cfg.flow_config(sigma))
        .build()
        .expect("valid");
    let sg = flow.sequential_graph();
    let crit = criticality::analyze(sg, flow.skews(), r.period, r.step, 500, |k, st| {
        let (globals, mut rng) = psbi_timing::sample::chip_rng(cfg.seed ^ 0xC817, k);
        psbi_timing::sample::sample_canonical(sg, &globals, &mut rng, st);
    });
    println!("top violated edges (500-chip probe):");
    for (e, frac) in crit.top_setup_edges(8) {
        let edge = &sg.edges[e];
        println!(
            "  ff{} -> ff{}: violated in {:.1}% of chips",
            edge.from,
            edge.to,
            100.0 * frac
        );
    }
    println!(
        "distinct binding edges: {} of {}\n",
        crit.distinct_binding_edges(),
        sg.edges.len()
    );
    let total = spec.n_ffs;
    let removed = r.prune.removed.len();
    println!("flip-flops (candidate buffers):     {total}");
    println!(
        "pruned (count <= {} and no neighbour >= {}): {removed} ({:.1}%)",
        r.prune.low,
        r.prune.critical,
        100.0 * removed as f64 / total as f64
    );
    println!("buffers surviving pruning:          {}", r.prune.kept);
    println!(
        "buffers with tunings after step 2:  {}",
        r.buffers_before_grouping
    );
    println!("physical buffers after grouping:    {}", r.nb);
    println!();
    println!(
        "total tunings in the min-count pass: {}",
        r.stats.a1_total_tunings
    );
    println!(
        "tunings per sample (avg):            {:.2}",
        r.stats.a1_total_tunings as f64 / cfg.samples as f64
    );
    println!(
        "samples unfixable even with all buffers: {} ({:.2}%)",
        r.stats.a1_infeasible,
        100.0 * r.stats.a1_infeasible as f64 / cfg.samples as f64
    );
}
