//! Fleet determinism regression, mirroring `tests/determinism.rs` one
//! level up: a campaign's journal bytes and canonical report are identical
//!
//! * for any worker count (1 vs 8 concurrent jobs), and
//! * across a mid-campaign kill + resume — including a kill that tears a
//!   journal line mid-write.
//!
//! This pins the fleet contract: jobs keyed by global grid index, records
//! committed in job order through a reorder buffer, wall-clock data
//! quarantined outside the canonical byte surface.

use psbi::fleet::{run_campaign, CampaignReport, CampaignSpec, FleetOptions, JobRecord};
use std::path::PathBuf;

fn quick_spec() -> CampaignSpec {
    CampaignSpec {
        samples: 100,
        yield_samples: 200,
        calibration_samples: 200,
        seed: 2024,
        ..CampaignSpec::example()
    }
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "psbi_fleet_determinism_{tag}_{}",
        std::process::id()
    ))
}

fn opts(workers: usize) -> FleetOptions {
    FleetOptions {
        workers,
        ..FleetOptions::default()
    }
}

#[test]
fn fleet_is_byte_identical_across_worker_counts() {
    let spec = quick_spec();
    let path1 = tmp("w1");
    let path8 = tmp("w8");
    let _ = std::fs::remove_file(&path1);
    let _ = std::fs::remove_file(&path8);

    let one = run_campaign(&spec, &path1, &opts(1)).expect("1-worker campaign");
    let eight = run_campaign(&spec, &path8, &opts(8)).expect("8-worker campaign");
    assert!(one.complete() && eight.complete());
    assert_eq!(one.records, eight.records, "records differ by worker count");
    assert_eq!(
        std::fs::read(&path1).unwrap(),
        std::fs::read(&path8).unwrap(),
        "journal bytes differ by worker count"
    );
    assert_eq!(
        CampaignReport::from_outcome(&spec, &one).canonical_json(),
        CampaignReport::from_outcome(&spec, &eight).canonical_json(),
        "canonical reports differ by worker count"
    );
    // The campaign actually inserted buffers somewhere (not a vacuous run).
    assert!(one.records.iter().any(|r: &JobRecord| r.nb > 0));

    let _ = std::fs::remove_file(&path1);
    let _ = std::fs::remove_file(&path8);
}

#[test]
fn killed_and_resumed_campaign_reproduces_uninterrupted_run() {
    let spec = quick_spec();
    let reference = tmp("ref");
    let killed = tmp("killed");
    let _ = std::fs::remove_file(&reference);
    let _ = std::fs::remove_file(&killed);

    // The uninterrupted reference run.
    let full = run_campaign(&spec, &reference, &opts(2)).expect("reference campaign");
    assert!(full.complete());
    let reference_bytes = std::fs::read(&reference).unwrap();
    let reference_report = CampaignReport::from_outcome(&spec, &full).canonical_json();

    // Stop after two jobs, then simulate a kill mid-write: truncate the
    // journal in the middle of its last record line.
    let partial = run_campaign(
        &spec,
        &killed,
        &FleetOptions {
            workers: 2,
            max_jobs: Some(2),
            ..FleetOptions::default()
        },
    )
    .expect("partial campaign");
    assert_eq!(partial.executed_jobs, 2);
    let bytes = std::fs::read(&killed).unwrap();
    std::fs::write(&killed, &bytes[..bytes.len() - 17]).unwrap();

    // Resume at a different worker count.  The torn record is discarded
    // and re-run; the final journal and report match the reference
    // byte for byte.
    let resumed = run_campaign(&spec, &killed, &opts(8)).expect("resumed campaign");
    assert!(resumed.complete());
    assert_eq!(
        resumed.resumed_jobs, 1,
        "the torn second record must have been discarded on replay"
    );
    assert_eq!(
        std::fs::read(&killed).unwrap(),
        reference_bytes,
        "resumed journal differs from the uninterrupted journal"
    );
    assert_eq!(
        CampaignReport::from_outcome(&spec, &resumed).canonical_json(),
        reference_report,
        "resumed canonical report differs from the uninterrupted report"
    );

    let _ = std::fs::remove_file(&reference);
    let _ = std::fs::remove_file(&killed);
}
