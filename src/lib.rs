#![warn(missing_docs)]
//! # psbi — post-silicon buffer insertion
//!
//! Facade crate for the PSBI workspace: a from-scratch Rust reproduction of
//! *Sampling-based Buffer Insertion for Post-Silicon Yield Improvement under
//! Process Variability* (Zhang, Li, Schlichtmann — DATE 2016).
//!
//! The individual subsystems live in their own crates and are re-exported
//! here under short module names:
//!
//! * [`variation`] — process-variation model, canonical forms, statistics;
//! * [`liberty`] — standard-cell library with variation sensitivities;
//! * [`netlist`] — circuit graph, ISCAS89 parser, benchmark generator;
//! * [`timing`] — STA/SSTA, sequential constraint graphs, feasibility;
//! * [`milp`] — LP/MILP solver (simplex + branch and bound);
//! * [`fault`] — deterministic fault-injection failpoints
//!   (`PSBI_FAULT_SPEC`) for crash-safety testing;
//! * [`core`] — the sampling-based insertion flow itself;
//! * [`fleet`] — sharded multi-circuit campaign runner with
//!   checkpoint/resume (the `psbi-fleet` binary).
//!
//! # Quickstart
//!
//! ```
//! use psbi::core::flow::{BufferInsertionFlow, FlowConfig};
//! use psbi::netlist::bench_suite;
//!
//! // A small synthetic benchmark circuit with clock skews.
//! let circuit = bench_suite::tiny_demo(7);
//! let mut cfg = FlowConfig::default();
//! cfg.samples = 200;
//! cfg.yield_samples = 200;
//! let result = BufferInsertionFlow::builder(&circuit, cfg).build()
//!     .expect("valid circuit")
//!     .run();
//! // Buffer insertion never hurts yield on the evaluation samples.
//! assert!(result.yield_with_buffers + 1e-9 >= result.yield_baseline);
//! ```

pub use psbi_core as core;
pub use psbi_fault as fault;
pub use psbi_fleet as fleet;
pub use psbi_liberty as liberty;
pub use psbi_milp as milp;
pub use psbi_netlist as netlist;
pub use psbi_obs as obs;
pub use psbi_timing as timing;
pub use psbi_variation as variation;
