//! Fleet quickstart: a tiny 2-circuit campaign with a mid-campaign
//! checkpoint and a resume that reproduces the uninterrupted run exactly.
//!
//! ```text
//! cargo run --release --example fleet_quickstart
//! ```
//!
//! The same campaign is available from the shell:
//!
//! ```text
//! cargo run --release --bin psbi-fleet -- init --out campaign.json
//! cargo run --release --bin psbi-fleet -- run --spec campaign.json --journal c.journal
//! ```

use psbi::fleet::{run_campaign, CampaignReport, CampaignSpec, FleetOptions};

fn main() {
    // A declarative campaign: two generated demo circuits, swept over the
    // aggressive (k = 0, ~50 % unbuffered yield) and relaxed (k = 2,
    // ~98 %) target periods.
    let spec = CampaignSpec {
        samples: 200,
        yield_samples: 400,
        calibration_samples: 300,
        ..CampaignSpec::example()
    };
    println!(
        "campaign `{}`: {} circuits x {} targets = {} jobs (fingerprint {})",
        spec.name,
        spec.circuits.len(),
        spec.sigma_factors.len(),
        spec.jobs().len(),
        spec.fingerprint()
    );

    let dir = std::env::temp_dir();
    let journal = dir.join(format!(
        "psbi_fleet_quickstart_{}.journal",
        std::process::id()
    ));
    let reference = dir.join(format!(
        "psbi_fleet_quickstart_ref_{}.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&reference);

    // 1. Start the campaign but stop after two jobs — a checkpoint, as if
    //    the process had been killed mid-campaign.
    let partial = run_campaign(
        &spec,
        &journal,
        &FleetOptions {
            max_jobs: Some(2),
            ..FleetOptions::default()
        },
    )
    .expect("campaign starts");
    println!(
        "\ncheckpoint: {}/{} jobs journaled at {}",
        partial.records.len(),
        partial.total_jobs,
        journal.display()
    );

    // 2. Resume: only the missing jobs run; completed ones replay from
    //    the journal.
    let resumed =
        run_campaign(&spec, &journal, &FleetOptions::default()).expect("campaign resumes");
    assert!(resumed.complete());
    println!(
        "resumed: {} jobs replayed from the journal, {} executed\n",
        resumed.resumed_jobs, resumed.executed_jobs
    );

    // 3. The aggregated report: per-circuit / per-k yield, buffers, area.
    let report = CampaignReport::from_outcome(&spec, &resumed);
    print!("{}", report.text());

    // 4. Determinism check: an uninterrupted run of the same spec yields
    //    byte-identical journal and canonical report.
    let uninterrupted =
        run_campaign(&spec, &reference, &FleetOptions::default()).expect("campaign runs");
    assert_eq!(
        std::fs::read(&journal).unwrap(),
        std::fs::read(&reference).unwrap(),
        "journal bytes must not depend on interruption"
    );
    assert_eq!(
        report.canonical_json(),
        CampaignReport::from_outcome(&spec, &uninterrupted).canonical_json(),
        "canonical reports must not depend on interruption"
    );
    println!("\ncheckpoint + resume reproduced the uninterrupted campaign byte-for-byte");

    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&reference);
}
