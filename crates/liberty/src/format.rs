//! The `.plib` text format: a small, human-editable library exchange format
//! with a strict parser and a writer that round-trips exactly.
//!
//! ```text
//! library "industry_like" {
//!   wire_cap_per_fanout 0.6;
//!   cell INV_X1 { function INV; inputs 1; intrinsic 9; drive 5.5;
//!                 input_cap 1; sens 0.95 0.4 0.62; }
//!   ff DFF_X1 { setup 22; hold 6; clk_q 34; drive 6; d_cap 1.3;
//!               clk_cap 1.1; sens 0.9 0.4 0.62; }
//! }
//! ```

use crate::cells::{CellDef, CellFunction, FlipFlopDef, Library};
use psbi_variation::N_PARAMS;

/// Error raised while parsing a `.plib` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the problem was detected.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(f64),
    LBrace,
    RBrace,
    Semi,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            message: message.into(),
        }
    }

    fn next_tok(&mut self) -> Result<Option<(Tok, usize)>, ParseError> {
        let bytes = self.src.as_bytes();
        loop {
            while self.pos < bytes.len() {
                let c = bytes[self.pos];
                if c == b'\n' {
                    self.line += 1;
                    self.pos += 1;
                } else if c.is_ascii_whitespace() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            // Comments: `#` or `//` to end of line.
            if self.pos < bytes.len()
                && (bytes[self.pos] == b'#'
                    || (bytes[self.pos] == b'/'
                        && self.pos + 1 < bytes.len()
                        && bytes[self.pos + 1] == b'/'))
            {
                while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
        if self.pos >= bytes.len() {
            return Ok(None);
        }
        let line = self.line;
        let c = bytes[self.pos];
        let tok = match c {
            b'{' => {
                self.pos += 1;
                Tok::LBrace
            }
            b'}' => {
                self.pos += 1;
                Tok::RBrace
            }
            b';' => {
                self.pos += 1;
                Tok::Semi
            }
            b'"' => {
                self.pos += 1;
                let start = self.pos;
                while self.pos < bytes.len() && bytes[self.pos] != b'"' {
                    if bytes[self.pos] == b'\n' {
                        return Err(self.err("unterminated string"));
                    }
                    self.pos += 1;
                }
                if self.pos >= bytes.len() {
                    return Err(self.err("unterminated string"));
                }
                let s = self.src[start..self.pos].to_string();
                self.pos += 1;
                Tok::Str(s)
            }
            c if c.is_ascii_digit() || c == b'-' || c == b'+' || c == b'.' => {
                let start = self.pos;
                self.pos += 1;
                while self.pos < bytes.len()
                    && (bytes[self.pos].is_ascii_alphanumeric()
                        || bytes[self.pos] == b'.'
                        || bytes[self.pos] == b'-'
                        || bytes[self.pos] == b'+')
                {
                    self.pos += 1;
                }
                let text = &self.src[start..self.pos];
                let v: f64 = text
                    .parse()
                    .map_err(|_| self.err(format!("invalid number `{text}`")))?;
                Tok::Num(v)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self.pos < bytes.len()
                    && (bytes[self.pos].is_ascii_alphanumeric() || bytes[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                Tok::Ident(self.src[start..self.pos].to_string())
            }
            other => {
                return Err(self.err(format!("unexpected character `{}`", other as char)));
            }
        };
        Ok(Some((tok, line)))
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    at: usize,
}

impl Parser {
    fn peek_line(&self) -> usize {
        self.toks
            .get(self.at)
            .map(|(_, l)| *l)
            .or_else(|| self.toks.last().map(|(_, l)| *l))
            .unwrap_or(1)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.peek_line(),
            message: message.into(),
        }
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self
            .toks
            .get(self.at)
            .map(|(t, _)| t.clone())
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.at += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(ParseError {
                line: self.toks[self.at - 1].1,
                message: format!("expected {what}, got {got:?}"),
            })
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError {
                line: self.toks[self.at - 1].1,
                message: format!("expected {what}, got {other:?}"),
            }),
        }
    }

    fn number(&mut self, what: &str) -> Result<f64, ParseError> {
        match self.next()? {
            Tok::Num(v) => Ok(v),
            other => Err(ParseError {
                line: self.toks[self.at - 1].1,
                message: format!("expected number for {what}, got {other:?}"),
            }),
        }
    }

    fn sens(&mut self) -> Result<[f64; N_PARAMS], ParseError> {
        let mut s = [0.0; N_PARAMS];
        for v in &mut s {
            *v = self.number("sensitivity")?;
        }
        Ok(s)
    }
}

/// Parses a `.plib` document into a [`Library`].
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the offending line for any lexical,
/// syntactic or semantic (duplicate-name / invalid-field) problem.
///
/// ```
/// let text = psbi_liberty::to_text(&psbi_liberty::Library::industry_like());
/// let lib = psbi_liberty::parse(&text).expect("round trip");
/// assert_eq!(lib.name, "industry_like");
/// ```
pub fn parse(src: &str) -> Result<Library, ParseError> {
    let mut lx = Lexer::new(src);
    let mut toks = Vec::new();
    while let Some(t) = lx.next_tok()? {
        toks.push(t);
    }
    let mut p = Parser { toks, at: 0 };

    let kw = p.ident("`library`")?;
    if kw != "library" {
        return Err(p.err(format!("expected `library`, got `{kw}`")));
    }
    let name = match p.next()? {
        Tok::Str(s) | Tok::Ident(s) => s,
        other => return Err(p.err(format!("expected library name, got {other:?}"))),
    };
    p.expect(&Tok::LBrace, "`{`")?;
    let mut lib = Library::new(name);

    loop {
        match p.next()? {
            Tok::RBrace => break,
            Tok::Ident(section) => match section.as_str() {
                "wire_cap_per_fanout" => {
                    lib.wire_cap_per_fanout = p.number("wire_cap_per_fanout")?;
                    p.expect(&Tok::Semi, "`;`")?;
                }
                "cell" => {
                    let line = p.peek_line();
                    let cell = parse_cell(&mut p)?;
                    lib.add_cell(cell).map_err(|e| ParseError {
                        line,
                        message: e.to_string(),
                    })?;
                }
                "ff" => {
                    let line = p.peek_line();
                    let ff = parse_ff(&mut p)?;
                    lib.add_ff(ff).map_err(|e| ParseError {
                        line,
                        message: e.to_string(),
                    })?;
                }
                other => {
                    return Err(p.err(format!("unknown section `{other}`")));
                }
            },
            other => return Err(p.err(format!("expected section or `}}`, got {other:?}"))),
        }
    }
    Ok(lib)
}

fn parse_cell(p: &mut Parser) -> Result<CellDef, ParseError> {
    let name = p.ident("cell name")?;
    p.expect(&Tok::LBrace, "`{`")?;
    let mut function = None;
    let mut inputs = None;
    let mut intrinsic = None;
    let mut drive = None;
    let mut input_cap = None;
    let mut sens = None;
    loop {
        match p.next()? {
            Tok::RBrace => break,
            Tok::Ident(field) => {
                match field.as_str() {
                    "function" => {
                        let tok = p.ident("function token")?;
                        function = Some(
                            CellFunction::from_token(&tok)
                                .ok_or_else(|| p.err(format!("unknown cell function `{tok}`")))?,
                        );
                    }
                    "inputs" => inputs = Some(p.number("inputs")? as u8),
                    "intrinsic" => intrinsic = Some(p.number("intrinsic")?),
                    "drive" => drive = Some(p.number("drive")?),
                    "input_cap" => input_cap = Some(p.number("input_cap")?),
                    "sens" => sens = Some(p.sens()?),
                    other => return Err(p.err(format!("unknown cell field `{other}`"))),
                }
                p.expect(&Tok::Semi, "`;`")?;
            }
            other => return Err(p.err(format!("expected cell field, got {other:?}"))),
        }
    }
    let missing = |f: &str| ParseError {
        line: p.peek_line(),
        message: format!("cell `{name}` is missing field `{f}`"),
    };
    Ok(CellDef {
        function: function.ok_or_else(|| missing("function"))?,
        inputs: inputs.ok_or_else(|| missing("inputs"))?,
        intrinsic: intrinsic.ok_or_else(|| missing("intrinsic"))?,
        drive: drive.ok_or_else(|| missing("drive"))?,
        input_cap: input_cap.ok_or_else(|| missing("input_cap"))?,
        sens: sens.ok_or_else(|| missing("sens"))?,
        name,
    })
}

fn parse_ff(p: &mut Parser) -> Result<FlipFlopDef, ParseError> {
    let name = p.ident("ff name")?;
    p.expect(&Tok::LBrace, "`{`")?;
    let mut setup = None;
    let mut hold = None;
    let mut clk_q = None;
    let mut drive = None;
    let mut d_cap = None;
    let mut clk_cap = None;
    let mut sens = None;
    loop {
        match p.next()? {
            Tok::RBrace => break,
            Tok::Ident(field) => {
                match field.as_str() {
                    "setup" => setup = Some(p.number("setup")?),
                    "hold" => hold = Some(p.number("hold")?),
                    "clk_q" => clk_q = Some(p.number("clk_q")?),
                    "drive" => drive = Some(p.number("drive")?),
                    "d_cap" => d_cap = Some(p.number("d_cap")?),
                    "clk_cap" => clk_cap = Some(p.number("clk_cap")?),
                    "sens" => sens = Some(p.sens()?),
                    other => return Err(p.err(format!("unknown ff field `{other}`"))),
                }
                p.expect(&Tok::Semi, "`;`")?;
            }
            other => return Err(p.err(format!("expected ff field, got {other:?}"))),
        }
    }
    let missing = |f: &str| ParseError {
        line: p.peek_line(),
        message: format!("ff `{name}` is missing field `{f}`"),
    };
    Ok(FlipFlopDef {
        setup: setup.ok_or_else(|| missing("setup"))?,
        hold: hold.ok_or_else(|| missing("hold"))?,
        clk_to_q: clk_q.ok_or_else(|| missing("clk_q"))?,
        drive: drive.ok_or_else(|| missing("drive"))?,
        d_cap: d_cap.ok_or_else(|| missing("d_cap"))?,
        clk_cap: clk_cap.ok_or_else(|| missing("clk_cap"))?,
        sens: sens.ok_or_else(|| missing("sens"))?,
        name,
    })
}

/// Serialises a [`Library`] to `.plib` text that [`parse`] accepts.
///
/// ```
/// let lib = psbi_liberty::Library::industry_like();
/// let text = psbi_liberty::to_text(&lib);
/// assert!(text.contains("cell INV_X1"));
/// ```
pub fn to_text(lib: &Library) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "library \"{}\" {{", lib.name);
    let _ = writeln!(out, "  wire_cap_per_fanout {};", lib.wire_cap_per_fanout);
    for c in lib.cells() {
        let _ = writeln!(
            out,
            "  cell {} {{ function {}; inputs {}; intrinsic {}; drive {}; input_cap {}; sens {} {} {}; }}",
            c.name,
            c.function.token(),
            c.inputs,
            c.intrinsic,
            c.drive,
            c.input_cap,
            c.sens[0],
            c.sens[1],
            c.sens[2],
        );
    }
    for ff in lib.ffs() {
        let _ = writeln!(
            out,
            "  ff {} {{ setup {}; hold {}; clk_q {}; drive {}; d_cap {}; clk_cap {}; sens {} {} {}; }}",
            ff.name,
            ff.setup,
            ff.hold,
            ff.clk_to_q,
            ff.drive,
            ff.d_cap,
            ff.clk_cap,
            ff.sens[0],
            ff.sens[1],
            ff.sens[2],
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_builtin() {
        let lib = Library::industry_like();
        let text = to_text(&lib);
        let parsed = parse(&text).expect("parse back");
        assert_eq!(parsed.name, lib.name);
        assert_eq!(parsed.cells().len(), lib.cells().len());
        assert_eq!(parsed.ffs().len(), lib.ffs().len());
        assert_eq!(parsed.cell("NAND2_X1"), lib.cell("NAND2_X1"));
        assert_eq!(parsed.ff("DFF_X1"), lib.ff("DFF_X1"));
        assert_eq!(parsed.wire_cap_per_fanout, lib.wire_cap_per_fanout);
    }

    #[test]
    fn parses_comments_and_whitespace() {
        let src = r#"
# a comment
library "mini" {
  // another comment
  wire_cap_per_fanout 0.5;
  cell I { function INV; inputs 1; intrinsic 10; drive 5;
           input_cap 1; sens 0.9 0.4 0.6; }
  ff F { setup 20; hold 5; clk_q 30; drive 6; d_cap 1; clk_cap 1;
         sens 0.9 0.4 0.6; }
}
"#;
        let lib = parse(src).expect("parses");
        assert_eq!(lib.name, "mini");
        assert!(lib.validate().is_ok());
    }

    #[test]
    fn missing_field_is_reported() {
        let src = r#"library x { cell I { function INV; inputs 1; intrinsic 10;
            drive 5; sens 0.9 0.4 0.6; } }"#;
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("input_cap"), "{err}");
    }

    #[test]
    fn unknown_function_is_reported() {
        let src = "library x { cell I { function FROB; inputs 1; intrinsic 1; drive 1; input_cap 1; sens 0 0 0; } }";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("FROB"), "{err}");
    }

    #[test]
    fn error_reports_line_numbers() {
        let src = "library x {\n  wire_cap_per_fanout banana;\n}";
        let err = parse(src).unwrap_err();
        assert_eq!(err.line, 2, "{err}");
    }

    #[test]
    fn duplicate_cell_rejected_at_parse() {
        let src = r#"library x {
  cell I { function INV; inputs 1; intrinsic 1; drive 1; input_cap 1; sens 0 0 0; }
  cell I { function INV; inputs 1; intrinsic 1; drive 1; input_cap 1; sens 0 0 0; }
}"#;
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn unterminated_string_is_reported() {
        let err = parse("library \"oops {").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
    }

    #[test]
    fn negative_numbers_lex() {
        let src = "library x { wire_cap_per_fanout 0.5; cell I { function INV; inputs 1; intrinsic 1; drive 1; input_cap 1; sens -0.1 0 0; } ff F { setup 1; hold 1; clk_q 1; drive 1; d_cap 1; clk_cap 1; sens 0 0 0; } }";
        let lib = parse(src).expect("parses");
        assert_eq!(lib.cell("I").unwrap().sens[0], -0.1);
    }
}
