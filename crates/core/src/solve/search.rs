//! The per-region support-set branch and bound.
//!
//! Split out of the orchestration layer ([`super`]) so region *solving* is
//! a pure function of its inputs: the region's flip-flops, the
//! materialised constraint bounds, the tuning windows and the solver
//! limits.  Nothing here reads or writes cross-pass state — incremental
//! reuse happens one level up by *replaying* a cached outcome after an
//! exact input comparison, never by steering this search.
//!
//! # Pinned tie-breaking
//!
//! Minimum-count supports are often not unique.  The search returns the
//! **first optimum in a pinned depth-first order**, which makes the result
//! a deterministic function of the inputs:
//!
//! * the branch variable is the undecided endpoint covering the most
//!   uncovered violated constraints, ties broken to the **lowest region
//!   slot** (explicit in [`SupportSearch::pick_branch_var`]);
//! * the `In` branch is explored before the `Out` branch;
//! * an incumbent is only replaced by a *strictly smaller* support, so the
//!   first optimal-count support reached in that order is the one
//!   returned.
//!
//! This is what lets the incremental layer cache a region's outcome and
//! replay it later: re-running the search on identical inputs provably
//! reproduces the cached support bit for bit.  (Seeding the search with a
//! cached incumbent instead was considered and rejected: under
//! [`SolverOptions::bb_node_cap`](super::SolverOptions::bb_node_cap) a
//! seeded search can exhaust its node budget at a different point than an
//! unseeded one and return an observably different fallback, breaking the
//! `PSBI_NO_INCREMENTAL` bit-identity contract.)
//!
//! # Pruning (node elimination that preserves the pin)
//!
//! With `prune` enabled (the default; `PSBI_NO_SEARCH_PRUNE=1` reverts to
//! the reference search) three rules cut the node count.  Each one is
//! chosen so the *returned* `(count, support, witness, exact)` is provably
//! the one the reference search returns — the pinned tie-break order above
//! is preserved, not re-pinned:
//!
//! 1. **Bitset covering bounds.**  A support must contain an endpoint of
//!    every violated constraint (both endpoints untuned ⇒ `0 ≤ bound < 0`
//!    is false), so covering is a valid relaxation.  Per-slot coverage
//!    masks over the violated constraints (`u64` words, maintained
//!    incrementally down the DFS) make two lower bounds word-cheap: the
//!    vertex-disjoint matching bound the reference search already used,
//!    and a top-k popcount bound (the fewest undecided slots whose
//!    coverage counts sum to the uncovered total).  A *valid* lower bound
//!    never changes the result: a pruned subtree contains no support
//!    strictly smaller than the incumbent, and incumbents are only
//!    replaced by strictly smaller supports, so the incumbent sequence at
//!    the nodes both searches visit is identical.
//! 2. **Symmetry classes.**  Slots `u < v` are *interchangeable* when
//!    their tuning windows are equal and swapping them maps the region's
//!    constraint multiset onto itself.  Rule: skip `v`'s `In` branch
//!    whenever such a `u` is currently `Out`.  Soundness: any support `S`
//!    with `v ∈ S, u ∉ S` reachable below maps (by the swap) to an
//!    equal-size feasible support inside `u`'s `In` subtree — and `u`
//!    being `Out` means that subtree was fully explored *earlier*
//!    (`In` before `Out`), so the incumbent is already ≤ `|S|` and the
//!    skipped subtree could not have updated it.  Branching still happens
//!    on whatever slot the pinned rule picks; interchangeable slots have
//!    equal coverage scores, so the class's lowest slot is branched first
//!    and acts as the representative.
//! 3. **Dominance elimination.**  Slot `v` is *dominated* by `u` when the
//!    swap maps the constraint multiset onto itself and `v`'s window is a
//!    strict subset of `u`'s (the wider-window twin can do anything the
//!    narrower one can).  Rule: skip `v`'s `In` branch whenever `u` is
//!    `Out` — the same swap argument applies; the witness value moved
//!    from `v` to `u` stays inside `u`'s wider window.  (Folding dominated
//!    slots away at the root instead is unsound: a support may need *both*
//!    twins.)
//! 4. **Cascade lower bound.**  Once every violated constraint is covered
//!    the covering bounds go blind, yet supports must often keep growing
//!    because tuning one flip-flop violates the *tight non-violated*
//!    constraints next to it — the regime where the reference search
//!    drowns (it was the source of ~85% of its nodes on `s9234`, with the
//!    big regions exhausting `bb_node_cap`).
//!    [`SupportSearch::cascade_decide`] prices that regime: it repeatedly
//!    extracts a negative cycle from the `In`-only system and frees the
//!    cycle's undecided slots, each round proving one more slot is needed
//!    (see its docs for the argument and for the quotient-graph
//!    contraction that keeps rounds cheap).  The same call's round 0
//!    doubles as the node's `In`-only probe, byte-identical witness
//!    included.
//!
//! Because pruned nodes are a subset of the reference search's nodes,
//! the one observable divergence between the two modes is
//! [`SolverOptions::bb_node_cap`](super::SolverOptions::bb_node_cap):
//! a region that exhausts the cap only in reference mode returns its
//! greedy fallback there and the proven optimum here.  The CI parity
//! legs (`PSBI_NO_SEARCH_PRUNE=1` determinism / fleet `cmp`) pin that
//! the shipped workloads stay on the agreeing side.

use super::{RegCons, NONE};
use psbi_timing::feasibility::{Arc, DiffSolver};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Decision {
    In,
    Out,
    Undecided,
}

/// Node and prune counters of one region search.  Deterministic for a
/// fixed region system and prune mode (the search is a pure function);
/// aggregated into [`PassDiagnostics`](super::PassDiagnostics) and the
/// armed-only obs counters `solve.search.nodes` /
/// `solve.search.pruned.{bound,dominance,symmetry}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct SearchStats {
    /// Branch-and-bound nodes visited (recursion entries).
    pub(crate) nodes: u64,
    /// Subtrees cut by the covering/matching lower bounds (including the
    /// trivial incumbent bound — also counted in reference mode).
    pub(crate) pruned_bound: u64,
    /// `In` branches skipped because a dominating wider-window twin was
    /// `Out`.
    pub(crate) pruned_dominance: u64,
    /// `In` branches skipped because a lower-slot interchangeable twin
    /// was `Out`.
    pub(crate) pruned_symmetry: u64,
}

impl SearchStats {
    /// Total subtrees eliminated by any rule.
    #[cfg(test)]
    pub(crate) fn pruned_total(&self) -> u64 {
        self.pruned_bound + self.pruned_dominance + self.pruned_symmetry
    }
}

/// Outcome of one region's support search.
pub(crate) enum SearchPhase {
    Infeasible,
    /// Greedy (inexact) support from witness sparsification.
    Fallback {
        support: Vec<u32>,
        witness: Vec<i64>,
    },
    /// Proven-best support from the branch and bound.
    Best {
        count: usize,
        support: Vec<u32>,
        witness: Vec<i64>,
        exact: bool,
    },
}

/// Reusable buffers of the pruning machinery: coverage bitsets, the
/// incremental uncovered mask with its save/restore stack, and the
/// symmetry/dominance guard links.  Owned by the per-thread
/// `SearchScratch` and taken for each region, so a steady-state pass
/// allocates nothing here.
#[derive(Debug, Default)]
pub(crate) struct PruneScratch {
    /// Words per violated-constraint bitmask.
    words: usize,
    /// Per-slot coverage masks, `slot * words ..` — bit `i` set when the
    /// slot is an in-region endpoint of the `i`-th violated constraint.
    cov: Vec<u64>,
    /// Violated constraints with no `In` endpoint yet (maintained down
    /// the DFS: `In`-branching clears the slot's coverage bits).
    uncovered: Vec<u64>,
    /// Saved `uncovered` frames of the ancestors' `In` branches.
    mask_stack: Vec<u64>,
    /// Per violated constraint: its endpoints' local slots (or `NONE`).
    vio_ends: Vec<(u32, u32)>,
    /// Flattened guard links: `(guard slot, is_symmetry)` — when the
    /// guard is `Out`, the owning slot's `In` branch is skipped.
    pub(crate) links: Vec<(u32, bool)>,
    /// `links` range of slot `v` is `link_start[v] .. link_start[v + 1]`.
    pub(crate) link_start: Vec<u32>,
    /// Per-node scratch: undecided slots' uncovered-coverage popcounts.
    cover: Vec<u32>,
    /// Per-node scratch: OR of the undecided slots' coverage masks.
    reach: Vec<u64>,
    /// Matching scratch: slots already claimed by a matched constraint.
    used: Vec<bool>,
    /// Incidence index over *all* region constraints (twin detection
    /// compares whole rows, bounds included, not just violated ones).
    inc_start: Vec<u32>,
    inc: Vec<u32>,
    inc_cursor: Vec<u32>,
    /// Pairwise twin-check scratch: original and swapped incident rows.
    pair_orig: Vec<(u32, u32, i64)>,
    pair_swap: Vec<(u32, u32, i64)>,
    pair_idx: Vec<u32>,
    /// Cascade-bound scratch: the full-region constraint graph (every
    /// slot a vertex, out-of-region endpoints contracted to the root),
    /// built once per region.
    casc_arcs: Vec<Arc>,
    /// Cascade-bound scratch: per-slot windows of the current iteration.
    casc_bounds: Vec<(i64, i64)>,
    /// Cascade-bound scratch: one negative cycle's arc indices.
    cycle: Vec<u32>,
    /// Cascade-bound scratch: undecided slots freed so far.
    claimed: Vec<bool>,
    /// Cascade-bound scratch: active slots (In ∪ freed), ascending.
    casc_active: Vec<u32>,
    /// Cascade-bound scratch: slot → dense index (or `NONE`).
    casc_dense: Vec<u32>,
    /// Cascade-bound scratch: dense arc → template arc provenance.
    casc_prov: Vec<u32>,
    /// Cascade-bound scratch: the contracted arc list per round.
    dense_arcs: Vec<Arc>,
}

/// Drives one region's support search to a [`SearchPhase`].
pub(crate) fn run_support_search(
    search: &mut SupportSearch<'_>,
    m: usize,
    region_cap: usize,
) -> SearchPhase {
    let mut state = vec![Decision::Undecided; m];
    // Quick relaxation check with everything allowed.
    if !search.feasible_support(&state, true) {
        return SearchPhase::Infeasible;
    }
    let mut full_witness = Vec::new();
    search.solver.copy_witness(m, &mut full_witness);
    if m > region_cap {
        // Region too large for exact search: sparsify the full witness
        // greedily (drop small tunings while feasibility holds).
        let (support, witness) = search.sparsify(&full_witness);
        return SearchPhase::Fallback { support, witness };
    }
    if search.prune {
        search.prepare_prune();
    }
    search.recurse(&mut state, true);
    match search.best.take() {
        Some((count, support, witness)) => SearchPhase::Best {
            count,
            support,
            witness,
            exact: search.exact,
        },
        None if !search.exact => {
            // Node cap exhausted with no incumbent: fall back to the
            // sparsified relaxation witness.
            let (support, witness) = search.sparsify(&full_witness);
            SearchPhase::Fallback { support, witness }
        }
        None => SearchPhase::Infeasible,
    }
}

/// Verdict of one [`SupportSearch::cascade_decide`] run.
enum Cascade {
    /// The round-0 solve — byte-identical to the `In`-only probe — was
    /// feasible: `In` alone is a support and the witness is in the solver.
    InFeasible,
    /// The node is pruned: any completion needs `≥ best` slots.
    Prune,
    /// A later round saw a feasible completion — which also proves the
    /// full relaxation feasible, so the relaxed probe can be skipped.
    Feasible,
    /// Round 0 was infeasible and no incumbent set a round target; the
    /// `In`-only verdict is settled but nothing else is.
    Exhausted,
    /// No verdict (defensive path); fall back to the legacy probes.
    Unknown,
}

/// Branch-and-bound over support sets.
pub(crate) struct SupportSearch<'a> {
    pub(crate) solver: &'a mut DiffSolver,
    pub(crate) var_of: &'a [u32],
    pub(crate) region_ffs: &'a [u32],
    pub(crate) cons: &'a [RegCons],
    pub(crate) violated: &'a [usize],
    pub(crate) bounds: &'a [(i64, i64)],
    /// `(count, support ffs, witness values per support entry)`.
    pub(crate) best: Option<(usize, Vec<u32>, Vec<i64>)>,
    pub(crate) node_cap: usize,
    pub(crate) exact: bool,
    /// Dominance/symmetry/bitset pruning on (the production default) or
    /// off (the byte-parity reference mode, `PSBI_NO_SEARCH_PRUNE=1`).
    pub(crate) prune: bool,
    pub(crate) stats: SearchStats,
    /// Per-node scratch, borrowed from [`super::SampleSolver`] for the
    /// region's lifetime and reused by every feasibility probe.
    pub(crate) vars_scratch: Vec<u32>,
    pub(crate) slot_scratch: Vec<u32>,
    pub(crate) arcs_scratch: Vec<Arc>,
    pub(crate) bounds_scratch: Vec<(i64, i64)>,
    pub(crate) ps: PruneScratch,
}

impl SupportSearch<'_> {
    /// Returns the scratch buffers to their owner.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_scratch(
        self,
    ) -> (Vec<u32>, Vec<u32>, Vec<Arc>, Vec<(i64, i64)>, PruneScratch) {
        (
            self.vars_scratch,
            self.slot_scratch,
            self.arcs_scratch,
            self.bounds_scratch,
            self.ps,
        )
    }

    /// Greedy fallback for oversized regions: start from the all-variables
    /// witness and drop tunings (smallest magnitude first) while the system
    /// stays feasible.  Returns `(support, witness values)`.
    ///
    /// Drops are batched: the whole candidate run is dropped with one
    /// probe, bisecting on failure down to the reference one-at-a-time
    /// greedy.  Support-set feasibility is monotone (a support's witness
    /// stays valid when more variables are freed), so a batch that probes
    /// feasible would also have been dropped element by element — the
    /// batched walk provably returns the byte-identical support, it just
    /// probes ~log instead of ~n times on the common all-droppable runs.
    fn sparsify(&mut self, full_witness: &[i64]) -> (Vec<u32>, Vec<i64>) {
        let m = self.region_ffs.len();
        let mut state: Vec<Decision> = (0..m)
            .map(|i| {
                if full_witness[i] != 0 {
                    Decision::In
                } else {
                    Decision::Out
                }
            })
            .collect();
        // Candidates ordered by |value| ascending: cheap drops first.
        // The order is part of the pinned fallback result — batching
        // must not reorder it.
        let mut order: Vec<usize> = (0..m).filter(|&i| full_witness[i] != 0).collect();
        order.sort_by_key(|&i| full_witness[i].abs());
        self.drop_batch(&mut state, &order);
        let support: Vec<u32> = state
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == Decision::In)
            .map(|(i, _)| self.region_ffs[i])
            .collect();
        assert!(
            self.feasible_support(&state, false),
            "sparsify only removes while feasibility holds"
        );
        let mut witness = Vec::new();
        self.solver.copy_witness(support.len(), &mut witness);
        (support, witness)
    }

    /// Drops a run of sparsify candidates with one probe when the whole
    /// run drops cleanly, recursing into halves on failure.  Equivalent
    /// to the sequential greedy by induction: a feasible whole-run drop
    /// implies (monotonicity) every one-at-a-time drop succeeds too, and
    /// the left half is always settled before the right — exactly the
    /// sequential prefix order.
    fn drop_batch(&mut self, state: &mut [Decision], batch: &[usize]) {
        if batch.is_empty() {
            return;
        }
        for &i in batch {
            state[i] = Decision::Out;
        }
        if self.feasible_support(state, false) {
            return;
        }
        if batch.len() == 1 {
            state[batch[0]] = Decision::In;
            return;
        }
        for &i in batch {
            state[i] = Decision::In;
        }
        let (left, right) = batch.split_at(batch.len() / 2);
        self.drop_batch(state, left);
        self.drop_batch(state, right);
    }

    /// Feasibility with support = In (or In ∪ Undecided when `relaxed`).
    ///
    /// Builds the subsystem in the reusable scratch buffers; the witness of
    /// a feasible check can be read back with `solver.copy_witness` (the
    /// variable order is the support order).
    fn feasible_support(&mut self, state: &[Decision], relaxed: bool) -> bool {
        self.vars_scratch.clear();
        self.slot_scratch.clear();
        self.slot_scratch.resize(state.len(), NONE);
        for (i, d) in state.iter().enumerate() {
            let included = match d {
                Decision::In => true,
                Decision::Undecided => relaxed,
                Decision::Out => false,
            };
            if included {
                self.slot_scratch[i] = self.vars_scratch.len() as u32;
                self.vars_scratch.push(self.region_ffs[i]);
            }
        }
        let root = self.vars_scratch.len() as u32;
        self.arcs_scratch.clear();
        for c in self.cons {
            let la = self.local_of(c.a);
            let lb = self.local_of(c.b);
            let slot = &self.slot_scratch;
            let va = la.map_or(root, |l| if slot[l] != NONE { slot[l] } else { root });
            let vb = lb.map_or(root, |l| if slot[l] != NONE { slot[l] } else { root });
            if va == root && vb == root {
                if c.bound < 0 {
                    return false;
                }
                continue;
            }
            // k(a) − k(b) ≤ bound  →  arc b → a with weight bound.
            self.arcs_scratch.push(Arc::new(vb, va, c.bound));
        }
        self.bounds_scratch.clear();
        self.bounds_scratch
            .extend(self.vars_scratch.iter().map(|&ff| self.bounds[ff as usize]));
        self.solver.decide_bounded(
            self.vars_scratch.len(),
            &self.arcs_scratch,
            &self.bounds_scratch,
        )
    }

    #[inline]
    fn local_of(&self, ff: u32) -> Option<usize> {
        let v = self.var_of[ff as usize];
        (v != NONE).then_some(v as usize)
    }

    fn in_count(state: &[Decision]) -> usize {
        state.iter().filter(|d| **d == Decision::In).count()
    }

    /// Matching-based lower bound: violated constraints not covered by In
    /// whose endpoints are still undecided each need one more buffer, and
    /// vertex-disjoint ones need distinct buffers.
    fn matching_lb(&self, state: &[Decision]) -> usize {
        let mut used = vec![false; state.len()];
        let mut lb = 0usize;
        for &v in self.violated {
            let c = &self.cons[v];
            let la = self.local_of(c.a);
            let lb_ = self.local_of(c.b);
            let covered = [la, lb_]
                .iter()
                .any(|l| l.is_some_and(|i| state[i] == Decision::In));
            if covered {
                continue;
            }
            // Usable endpoints: undecided, unused so far.
            let mut usable: Vec<usize> = Vec::new();
            for l in [la, lb_].into_iter().flatten() {
                if state[l] == Decision::Undecided && !used[l] {
                    usable.push(l);
                }
            }
            if usable.is_empty() {
                continue; // handled by feasibility pruning
            }
            // Claim both endpoints so the next edge must be disjoint.
            for l in [la, lb_].into_iter().flatten() {
                used[l] = true;
            }
            lb += 1;
        }
        lb
    }

    /// One-time pruning setup for a region that will branch: coverage
    /// bitsets, the root uncovered mask, and the symmetry/dominance
    /// guard links.  Only runs with `prune` on, after the root relaxation
    /// check, for regions within `region_cap` (≤ 48 slots by default, so
    /// the pairwise twin scan is small).
    pub(crate) fn prepare_prune(&mut self) {
        let m = self.region_ffs.len();
        let nv = self.violated.len();
        let var_of = self.var_of;
        let region_ffs = self.region_ffs;
        let cons = self.cons;
        let violated = self.violated;
        let bounds = self.bounds;
        let local = |ff: u32| -> u32 {
            let v = var_of[ff as usize];
            if v != NONE && (v as usize) < m {
                v
            } else {
                NONE
            }
        };
        let words = nv.div_ceil(64);
        let ps = &mut self.ps;
        ps.words = words;
        ps.cov.clear();
        ps.cov.resize(m * words, 0);
        ps.vio_ends.clear();
        for (bit, &vidx) in violated.iter().enumerate() {
            let c = &cons[vidx];
            let (la, lb) = (local(c.a), local(c.b));
            ps.vio_ends.push((la, lb));
            let (w, b) = (bit / 64, bit % 64);
            if la != NONE {
                ps.cov[la as usize * words + w] |= 1u64 << b;
            }
            if lb != NONE && lb != la {
                ps.cov[lb as usize * words + w] |= 1u64 << b;
            }
        }
        ps.uncovered.clear();
        ps.uncovered.resize(words, 0);
        for bit in 0..nv {
            ps.uncovered[bit / 64] |= 1u64 << (bit % 64);
        }
        ps.mask_stack.clear();
        ps.cover.clear();
        ps.used.clear();
        ps.used.resize(m, false);

        // Incidence lists over the full constraint system (twin rows are
        // compared bounds and all, not just the violated subset).
        ps.inc_start.clear();
        ps.inc_start.resize(m + 1, 0);
        for c in cons {
            let (la, lb) = (local(c.a), local(c.b));
            if la != NONE {
                ps.inc_start[la as usize + 1] += 1;
            }
            if lb != NONE && lb != la {
                ps.inc_start[lb as usize + 1] += 1;
            }
        }
        for i in 0..m {
            ps.inc_start[i + 1] += ps.inc_start[i];
        }
        ps.inc.clear();
        ps.inc.resize(ps.inc_start[m] as usize, 0);
        ps.inc_cursor.clear();
        ps.inc_cursor.extend_from_slice(&ps.inc_start[..m]);
        for (ci, c) in cons.iter().enumerate() {
            let (la, lb) = (local(c.a), local(c.b));
            if la != NONE {
                let cur = &mut ps.inc_cursor[la as usize];
                ps.inc[*cur as usize] = ci as u32;
                *cur += 1;
            }
            if lb != NONE && lb != la {
                let cur = &mut ps.inc_cursor[lb as usize];
                ps.inc[*cur as usize] = ci as u32;
                *cur += 1;
            }
        }

        // Guard links.  For every slot v (ascending — `link_start` is a
        // prefix index) find the twins whose `Out` makes v's `In` branch
        // redundant: lower interchangeable slots (symmetry, lowest slot
        // is the class representative) and strictly-wider-window twins
        // (dominance, either slot order — any `Out` guard was branched
        // at an ancestor with its `In` subtree fully explored first).
        ps.links.clear();
        ps.link_start.clear();
        ps.link_start.push(0);
        for v in 0..m {
            let wv = bounds[region_ffs[v] as usize];
            for u in 0..m {
                if u == v {
                    continue;
                }
                let wu = bounds[region_ffs[u] as usize];
                let equal = wu == wv;
                let wider = wu.0 <= wv.0 && wu.1 >= wv.1 && !equal;
                let sym = equal && u < v;
                if !sym && !wider {
                    continue;
                }
                // Degree prefilter: a swap maps v's row onto u's.
                let deg = |s: usize| ps.inc_start[s + 1] - ps.inc_start[s];
                if deg(u) != deg(v) {
                    continue;
                }
                // Exact swap-invariance of the incident rows: constraints
                // touching neither slot map to themselves, so comparing
                // the union of the two incident lists (deduped — a
                // constraint between the twins is in both) under the
                // global-id swap decides invariance of the whole system.
                ps.pair_idx.clear();
                ps.pair_idx.extend_from_slice(
                    &ps.inc[ps.inc_start[u] as usize..ps.inc_start[u + 1] as usize],
                );
                ps.pair_idx.extend_from_slice(
                    &ps.inc[ps.inc_start[v] as usize..ps.inc_start[v + 1] as usize],
                );
                ps.pair_idx.sort_unstable();
                ps.pair_idx.dedup();
                let (fu, fv) = (region_ffs[u], region_ffs[v]);
                let swap = |ff: u32| {
                    if ff == fu {
                        fv
                    } else if ff == fv {
                        fu
                    } else {
                        ff
                    }
                };
                ps.pair_orig.clear();
                ps.pair_swap.clear();
                for &ci in &ps.pair_idx {
                    let c = &cons[ci as usize];
                    ps.pair_orig.push((c.a, c.b, c.bound));
                    ps.pair_swap.push((swap(c.a), swap(c.b), c.bound));
                }
                ps.pair_orig.sort_unstable();
                ps.pair_swap.sort_unstable();
                if ps.pair_orig == ps.pair_swap {
                    ps.links.push((u as u32, sym));
                }
            }
            ps.link_start.push(ps.links.len() as u32);
        }

        // Cascade-bound graph: every slot a vertex (out-of-region
        // endpoints contracted to the root index `m`), all constraints.
        // Built once; only the per-slot windows change per probe.
        ps.casc_arcs.clear();
        for c in cons {
            let (la, lb) = (local(c.a), local(c.b));
            let va = if la == NONE { m as u32 } else { la };
            let vb = if lb == NONE { m as u32 } else { lb };
            if va == m as u32 && vb == m as u32 {
                continue; // both outside: root-only, no cycle through slots
            }
            // k(a) − k(b) ≤ bound  →  arc b → a with weight bound.
            ps.casc_arcs.push(Arc::new(vb, va, c.bound));
        }
    }

    /// Combined `In`-only probe and cascade lower bound for the regime
    /// the covering bound is blind to: every violated constraint is
    /// covered, yet the support must still grow because tuning cascades
    /// along tight non-violated constraints.
    ///
    /// Semantically each round solves the full-region system where `In`
    /// and freed slots carry their real windows and everything else is
    /// pinned to zero.  A variable pinned to `[0, 0]` is identified with
    /// the root, so the solve runs on the *contracted* quotient graph —
    /// vertices are just the active (`In` ∪ freed) slots — which keeps
    /// the per-round cost proportional to the active set, not the
    /// region.  (A negative cycle of the pinned graph splices into
    /// contracted cycles at the root by dropping its non-negative
    /// root-internal arcs, so infeasibility detection is exact; pinned
    /// slots on the original cycle reappear as the contracted cycle
    /// arcs' original endpoints, which is what claiming needs.)
    ///
    /// Round 0's active set is exactly the `In` slots in ascending slot
    /// order and its arc list matches [`Self::feasible_support`]'s
    /// assembly arc for arc, so a feasible round 0 *is* the `In`-only
    /// probe: same system, same fixpoint distances, byte-identical
    /// witness ([`Cascade::InFeasible`]).
    ///
    /// On an infeasible round, any feasible completion must include an
    /// unclaimed undecided slot appearing on the recovered cycle: slots
    /// already freed carry their widest windows (tightening them only
    /// makes the cycle more negative), `In` slots are in every
    /// completion, and pinned slots a completion leaves out stay
    /// pinned — so avoiding the claimable set keeps the cycle negative.
    /// Each round frees all such slots and proves the support needs one
    /// more slot; `extra` rounds prove `≥ in_count + extra`.  Returns
    /// [`Cascade::Prune`] when `extra` reaches `target = best −
    /// in_count`, or when a cycle has no claimable slot at all — then no
    /// completion is feasible.  [`Cascade::Feasible`] carries a proof
    /// the caller reuses: the probe was feasible with only a *subset* of
    /// the undecided slots freed, and pinning the rest to zero extends
    /// any such witness to the full relaxation — so the relaxed probe is
    /// known feasible and need not run.
    fn cascade_decide(&mut self, state: &[Decision], target: Option<usize>) -> Cascade {
        let m = state.len();
        self.ps.claimed.clear();
        self.ps.claimed.resize(m, false);
        let mut extra = 0usize;
        loop {
            // Contracted system over the active (In ∪ freed) slots.
            self.ps.casc_active.clear();
            self.ps.casc_dense.clear();
            self.ps.casc_dense.resize(m, NONE);
            for (i, d) in state.iter().enumerate() {
                if *d == Decision::In || self.ps.claimed[i] {
                    self.ps.casc_dense[i] = self.ps.casc_active.len() as u32;
                    self.ps.casc_active.push(i as u32);
                }
            }
            let root = self.ps.casc_active.len() as u32;
            self.ps.dense_arcs.clear();
            self.ps.casc_prov.clear();
            for (t, a) in self.ps.casc_arcs.iter().enumerate() {
                let map = |v: u32| {
                    if v == m as u32 {
                        root
                    } else {
                        let dv = self.ps.casc_dense[v as usize];
                        if dv == NONE {
                            root
                        } else {
                            dv
                        }
                    }
                };
                let (f, to) = (map(a.from), map(a.to));
                if f == root && to == root {
                    if a.weight < 0 {
                        // A violated constraint with no active endpoint:
                        // impossible once covered (the gate), so bail to
                        // the legacy probes rather than reason further.
                        return Cascade::Unknown;
                    }
                    continue; // 0 ≤ weight: never binding, drop
                }
                self.ps.dense_arcs.push(Arc::new(f, to, a.weight));
                self.ps.casc_prov.push(t as u32);
            }
            self.ps.casc_bounds.clear();
            for &slot in &self.ps.casc_active {
                self.ps
                    .casc_bounds
                    .push(self.bounds[self.region_ffs[slot as usize] as usize]);
            }
            let feasible = self.solver.decide_bounded_cycle(
                self.ps.casc_active.len(),
                &self.ps.dense_arcs,
                &self.ps.casc_bounds,
                &mut self.ps.cycle,
            );
            if feasible {
                return if extra == 0 {
                    Cascade::InFeasible
                } else {
                    Cascade::Feasible
                };
            }
            let Some(target) = target else {
                return Cascade::Exhausted; // no incumbent: verdict only
            };
            if self.ps.cycle.is_empty() {
                return Cascade::Unknown; // defensive: no cycle recovered
            }
            // Claim the pinned-undecided endpoints of the cycle's
            // constraint arcs (window arcs only touch active slots).
            let mut any = false;
            let nd = self.ps.dense_arcs.len();
            for idx in 0..self.ps.cycle.len() {
                let k = self.ps.cycle[idx] as usize;
                if k >= nd {
                    continue;
                }
                let a = &self.ps.casc_arcs[self.ps.casc_prov[k] as usize];
                for v in [a.from, a.to] {
                    let v = v as usize;
                    if v < m && state[v] == Decision::Undecided && !self.ps.claimed[v] {
                        self.ps.claimed[v] = true;
                        any = true;
                    }
                }
            }
            if !any {
                return Cascade::Prune; // dead: no completion breaks this cycle
            }
            extra += 1;
            if extra >= target {
                return Cascade::Prune;
            }
        }
    }

    /// Whether the pinned rules let `v`'s `In` branch be skipped at the
    /// current state: `Some(is_symmetry)` when a guard twin is `Out`.
    fn in_skip(&self, v: usize, state: &[Decision]) -> Option<bool> {
        let s = self.ps.link_start[v] as usize;
        let e = self.ps.link_start[v + 1] as usize;
        self.ps.links[s..e]
            .iter()
            .find(|(u, _)| state[*u as usize] == Decision::Out)
            .map(|&(_, sym)| sym)
    }

    /// Bitset lower bound on *additional* support slots: the max of the
    /// vertex-disjoint matching bound and the top-k covering bound over
    /// the uncovered violated constraints.  `None` means the node is
    /// dead — some uncovered constraint has no undecided in-region
    /// endpoint left, so no completion can be feasible.
    fn bitset_lb(&mut self, state: &[Decision]) -> Option<usize> {
        let words = self.ps.words;
        let total: u32 = self.ps.uncovered.iter().map(|w| w.count_ones()).sum();
        if total == 0 {
            return Some(0);
        }
        // Matching: iterate uncovered violated constraints ascending (the
        // same order as the reference scan) claiming disjoint endpoints.
        for u in self.ps.used.iter_mut() {
            *u = false;
        }
        let mut matching = 0usize;
        for (bit, &(la, lb)) in self.ps.vio_ends.iter().enumerate() {
            if self.ps.uncovered[bit / 64] & (1u64 << (bit % 64)) == 0 {
                continue;
            }
            let mut usable = false;
            for l in [la, lb] {
                if l != NONE
                    && state[l as usize] == Decision::Undecided
                    && !self.ps.used[l as usize]
                {
                    usable = true;
                }
            }
            if !usable {
                continue;
            }
            for l in [la, lb] {
                if l != NONE {
                    self.ps.used[l as usize] = true;
                }
            }
            matching += 1;
        }
        // Top-k covering: undecided slots' uncovered-coverage popcounts,
        // largest first, until they sum to the uncovered total.  Also
        // detects dead nodes (an uncovered constraint no undecided slot
        // can reach).
        self.ps.cover.clear();
        self.ps.reach.clear();
        self.ps.reach.resize(words, 0);
        for (i, d) in state.iter().enumerate() {
            if *d != Decision::Undecided {
                continue;
            }
            let mut cnt = 0u32;
            for w in 0..words {
                let bits = self.ps.cov[i * words + w] & self.ps.uncovered[w];
                self.ps.reach[w] |= bits;
                cnt += bits.count_ones();
            }
            if cnt > 0 {
                self.ps.cover.push(cnt);
            }
        }
        let reach: u32 = self.ps.reach.iter().map(|w| w.count_ones()).sum();
        if reach < total {
            return None; // dead: some violated constraint is uncoverable
        }
        self.ps.cover.sort_unstable_by(|a, b| b.cmp(a));
        let mut need = 0usize;
        let mut got = 0u32;
        for &c in &self.ps.cover {
            need += 1;
            got += c;
            if got >= total {
                break;
            }
        }
        Some(matching.max(need))
    }

    fn recurse(&mut self, state: &mut Vec<Decision>, relaxed_ok: bool) {
        self.stats.nodes += 1;
        if self.stats.nodes > self.node_cap as u64 {
            self.exact = false;
            return;
        }
        let in_count = Self::in_count(state);
        if self.prune {
            // Dead-node and lower-bound pruning on the bitset machinery.
            // A dead node (uncoverable violated constraint) is pruned
            // even without an incumbent — the reference search would
            // fail its relaxation probe there and return all the same.
            match self.bitset_lb(state) {
                None => {
                    self.stats.pruned_bound += 1;
                    return;
                }
                Some(lb) => {
                    if let Some((best, _, _)) = &self.best {
                        if in_count >= *best || in_count + lb >= *best {
                            self.stats.pruned_bound += 1;
                            return;
                        }
                    }
                }
            }
        } else if let Some((best, _, _)) = &self.best {
            if in_count >= *best {
                self.stats.pruned_bound += 1;
                return;
            }
            if in_count + self.matching_lb(state) >= *best {
                self.stats.pruned_bound += 1;
                return;
            }
        }
        // Probe order differs by mode but the pruned set of surviving
        // nodes is identical (see the module docs): In-only feasibility
        // implies relaxed feasibility (every excluded slot can take
        // tuning 0, which every window contains), so checking In-only
        // first never accepts a node the reference would reject.  The
        // pruned path defers the relaxed probe to last so nodes killed
        // by the cascade bound never pay a relaxation solve.
        if self.prune {
            let mut relaxed_known = relaxed_ok;
            let mut in_only_settled = false;
            // Post-covering regime: the merged probe answers the In-only
            // question (round 0) and, with an incumbent, runs the cascade
            // rounds the covering bound is blind to.  Before coverage the
            // In-only probe fails during assembly for pennies and
            // `bitset_lb` is the cheaper bound, so the legacy probes run.
            if self.ps.uncovered.iter().all(|&w| w == 0) {
                let target = self
                    .best
                    .as_ref()
                    .map(|(best, _, _)| best.saturating_sub(in_count));
                match self.cascade_decide(state, target) {
                    Cascade::InFeasible => {
                        self.record_incumbent(state);
                        return;
                    }
                    Cascade::Prune => {
                        self.stats.pruned_bound += 1;
                        return;
                    }
                    Cascade::Feasible => {
                        relaxed_known = true;
                        in_only_settled = true;
                    }
                    Cascade::Exhausted => in_only_settled = true,
                    Cascade::Unknown => {}
                }
            }
            // Is In alone already enough?
            if !in_only_settled && self.feasible_support(state, false) {
                self.record_incumbent(state);
                return;
            }
            // Relaxation: can anything still work?  An `In` branch keeps
            // the parent's included set (In ∪ Undecided) unchanged, so
            // the parent's feasible verdict carries over probe-free —
            // as does a cascade round that saw a feasible completion.
            if !relaxed_known && !self.feasible_support(state, true) {
                return;
            }
        } else {
            // Relaxation: can anything still work?
            if !relaxed_ok && !self.feasible_support(state, true) {
                return;
            }
            // Is In alone already enough?
            if self.feasible_support(state, false) {
                self.record_incumbent(state);
                return;
            }
        }
        // Branch: pick an undecided endpoint of an uncovered violated
        // constraint; fall back to any undecided vertex.
        let pick = self.pick_branch_var(state);
        let Some(v) = pick else {
            return; // everything decided yet infeasible with In
        };
        let skip_in = if self.prune {
            self.in_skip(v, state)
        } else {
            None
        };
        match skip_in {
            Some(true) => self.stats.pruned_symmetry += 1,
            Some(false) => self.stats.pruned_dominance += 1,
            None => {
                state[v] = Decision::In;
                if self.prune {
                    let words = self.ps.words;
                    let base = self.ps.mask_stack.len();
                    for w in 0..words {
                        let cur = self.ps.uncovered[w];
                        self.ps.mask_stack.push(cur);
                        self.ps.uncovered[w] = cur & !self.ps.cov[v * words + w];
                    }
                    self.recurse(state, true);
                    for w in 0..words {
                        self.ps.uncovered[w] = self.ps.mask_stack[base + w];
                    }
                    self.ps.mask_stack.truncate(base);
                } else {
                    self.recurse(state, true);
                }
            }
        }
        state[v] = Decision::Out;
        self.recurse(state, false);
        state[v] = Decision::Undecided;
    }

    /// Installs the current `In` set as the incumbent when it is strictly
    /// smaller than the best so far.  Must run directly after a feasible
    /// In-only probe: the witness is read from the solver's last solve.
    fn record_incumbent(&mut self, state: &[Decision]) {
        let support: Vec<u32> = state
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == Decision::In)
            .map(|(i, _)| self.region_ffs[i])
            .collect();
        let better = self
            .best
            .as_ref()
            .is_none_or(|(c, _, _)| support.len() < *c);
        if better {
            // Witness values of support vars, in support order.
            let mut values = Vec::new();
            self.solver.copy_witness(support.len(), &mut values);
            self.best = Some((support.len(), support, values));
        }
    }

    /// The pinned branch rule (see the module docs): the undecided
    /// variable appearing in the most uncovered violated constraints,
    /// ties broken to the lowest region slot.  The pruned path computes
    /// the identical score by popcount over the coverage masks, so both
    /// modes branch the same variable at any shared state.
    fn pick_branch_var(&self, state: &[Decision]) -> Option<usize> {
        if self.prune {
            let words = self.ps.words;
            let mut best: Option<(u32, usize)> = None;
            for (i, d) in state.iter().enumerate() {
                if *d != Decision::Undecided {
                    continue;
                }
                let mut s = 0u32;
                for w in 0..words {
                    s += (self.ps.cov[i * words + w] & self.ps.uncovered[w]).count_ones();
                }
                if s > 0 && best.is_none_or(|(bs, _)| s > bs) {
                    best = Some((s, i));
                }
            }
            return best.map(|(_, i)| i).or_else(|| self.fallback_var(state));
        }
        let mut score = vec![0usize; state.len()];
        for &v in self.violated {
            let c = &self.cons[v];
            let la = self.local_of(c.a);
            let lb = self.local_of(c.b);
            let covered = [la, lb]
                .iter()
                .any(|l| l.is_some_and(|i| state[i] == Decision::In));
            if covered {
                continue;
            }
            for l in [la, lb].into_iter().flatten() {
                if state[l] == Decision::Undecided {
                    score[l] += 1;
                }
            }
        }
        let mut best: Option<(usize, usize)> = None; // (score, slot)
        for (i, s) in score.iter().enumerate() {
            if *s > 0 && state[i] == Decision::Undecided && best.is_none_or(|(bs, _)| *s > bs) {
                best = Some((*s, i));
            }
        }
        best.map(|(_, i)| i).or_else(|| self.fallback_var(state))
    }

    /// Fallback branch rule once every violated constraint is covered:
    /// the first undecided slot (part of the pinned branch order).
    fn fallback_var(&self, state: &[Decision]) -> Option<usize> {
        state.iter().position(|d| *d == Decision::Undecided)
    }
}
