//! The line-delimited JSON dispatch protocol.
//!
//! Every message between `psbi-fleet serve`, `psbi-fleet worker` and
//! `psbi-fleet submit` is one JSON object on one `\n`-terminated line,
//! parsed with the crate's own [`Json`] mini-parser (the vendored serde is
//! a no-op shim).  Two framing choices carry the robustness story:
//!
//! * **Specs and records travel as escaped strings.**  A campaign spec is
//!   embedded as its canonical multi-line JSON text (so the fingerprint
//!   the journal header pins is computed from identical bytes on both
//!   sides), and a job result is embedded as the *exact* journal line the
//!   worker would have written locally — including its `crc` member.  The
//!   dispatcher re-verifies that checksum before accepting, so a result
//!   torn in transit (`worker.result.torn`) or corrupted on the wire is
//!   rejected exactly like a torn journal line, not half-committed.
//! * **Any unparseable line is a protocol violation**, answered by
//!   dropping the connection.  The lease machinery then treats the peer
//!   as dead: its jobs return to the pending set and are re-dispatched.
//!
//! The message set is deliberately small; see [`Msg`] for the full
//! vocabulary and the `dispatch`/`worker` module docs for the exchange
//! sequences built from it.

use crate::error::FleetError;
use crate::json::{escape, Json};
use std::io::BufRead;

/// One protocol message (see the module docs for framing).
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Client → server: run a campaign.  `spec` is the canonical
    /// [`crate::CampaignSpec::to_json`] text; `journal` is a
    /// **server-side** path.
    Submit {
        /// Canonical campaign spec JSON text.
        spec: String,
        /// Server-side journal path.
        journal: String,
        /// Per-job panic retry budget the dispatcher hands to workers.
        retries: usize,
        /// Run the independent result verifier on every job.
        verify: bool,
    },
    /// Server → submitter: the campaign was admitted.
    Accepted {
        /// Dispatcher-assigned campaign id.
        campaign: u64,
        /// Grid size.
        total: usize,
        /// Records replayed from the journal (never re-executed).
        resumed: usize,
    },
    /// Worker → server: registration (first message of a worker session).
    Hello {
        /// Worker display name (diagnostics only).
        worker: String,
    },
    /// Worker → server: ready for (more) work.
    Request,
    /// Server → worker: a lease over `jobs` of one campaign.
    Lease {
        /// Lease id (heartbeat and result correlation key).
        lease: u64,
        /// Campaign id.
        campaign: u64,
        /// Canonical campaign spec JSON text (the worker rebuilds the
        /// grid from it; `jobs` index into that grid).
        spec: String,
        /// Leased job indices.
        jobs: Vec<usize>,
        /// Lease duration: the worker must heartbeat or return results
        /// before this many ms elapse, or the lease expires and the jobs
        /// are re-dispatched.
        deadline_ms: u64,
        /// Requested heartbeat interval.
        heartbeat_ms: u64,
        /// Per-job panic retry budget.
        retries: usize,
        /// Whether to run the independent verifier per job.
        verify: bool,
    },
    /// Worker → server: lease keep-alive (renews the deadline).
    Heartbeat {
        /// Lease id.
        lease: u64,
    },
    /// Worker → server: one completed job.  `record` is the exact
    /// journal line ([`crate::JobRecord::to_json_line`], crc included).
    Result {
        /// Lease id (0 for a late result whose lease already expired).
        lease: u64,
        /// Campaign id.
        campaign: u64,
        /// [`crate::CampaignSpec::fingerprint`] of the spec the record
        /// was computed from.  Campaign ids restart when a dispatcher
        /// restarts, so an id alone can name a *different* campaign
        /// across sessions; the fingerprint cannot.  The dispatcher
        /// rejects a result whose fingerprint does not match the
        /// campaign's, so stale bytes never reach a journal.
        fingerprint: String,
        /// The checksummed journal line of the record.
        record: String,
        /// Independent-verifier failure report when the lease requested
        /// `verify` and this job's re-check failed; empty otherwise
        /// (omitted from the wire form).  Non-canonical — it never
        /// touches the journal, mirroring the single-process runner.
        verify_failed: String,
    },
    /// Server → worker: the record was accepted (committed or parked in
    /// the reorder buffer) — or was already present (duplicate after a
    /// re-dispatch; first committed record wins, the copy is discarded).
    Ack {
        /// Campaign id.
        campaign: u64,
        /// Acknowledged job index.
        job: usize,
    },
    /// Server → worker: the lease is gone (expired or force-expired);
    /// abandon its remaining jobs and request a fresh lease.
    Expired {
        /// Lease id.
        lease: u64,
    },
    /// Server → worker: no pending work right now; re-request after `ms`.
    Wait {
        /// Suggested back-off before the next [`Msg::Request`].
        ms: u64,
    },
    /// Server → submitter: periodic campaign progress.
    Progress {
        /// Campaign id.
        campaign: u64,
        /// Records committed to the journal so far (resumed included).
        committed: usize,
        /// Grid size.
        total: usize,
        /// Quarantined records among the committed.
        quarantined: u64,
        /// Workers currently connected to the dispatcher.
        workers: u64,
    },
    /// Server → submitter: the campaign's journal is complete.
    Done {
        /// Campaign id.
        campaign: u64,
        /// Total records in the journal.
        committed: usize,
        /// Quarantined records among them.
        quarantined: u64,
    },
    /// Server → client: a failure, with the [`FleetError::code`]-style
    /// class so `psbi-fleet submit` can exit with the same code a local
    /// run would have.
    Error {
        /// Exit-code class (see `FleetError::code`).
        code: u8,
        /// Human-readable description.
        message: String,
    },
    /// Server → worker: the dispatcher is going away for good
    /// (`--once` completion); exit instead of reconnecting.
    Shutdown,
    /// Worker → server: clean departure; release my leases now instead
    /// of waiting for their deadlines.
    Goodbye,
}

fn jobs_list(jobs: &[usize]) -> String {
    let items: Vec<String> = jobs.iter().map(usize::to_string).collect();
    format!("[{}]", items.join(","))
}

impl Msg {
    /// Renders the single-line wire form (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Msg::Submit {
                spec,
                journal,
                retries,
                verify,
            } => format!(
                "{{\"type\":\"submit\",\"spec\":\"{}\",\"journal\":\"{}\",\
                 \"retries\":{retries},\"verify\":{verify}}}",
                escape(spec),
                escape(journal)
            ),
            Msg::Accepted {
                campaign,
                total,
                resumed,
            } => format!(
                "{{\"type\":\"accepted\",\"campaign\":{campaign},\"total\":{total},\
                 \"resumed\":{resumed}}}"
            ),
            Msg::Hello { worker } => {
                format!("{{\"type\":\"hello\",\"worker\":\"{}\"}}", escape(worker))
            }
            Msg::Request => "{\"type\":\"request\"}".into(),
            Msg::Lease {
                lease,
                campaign,
                spec,
                jobs,
                deadline_ms,
                heartbeat_ms,
                retries,
                verify,
            } => format!(
                "{{\"type\":\"lease\",\"lease\":{lease},\"campaign\":{campaign},\
                 \"spec\":\"{}\",\"jobs\":{},\"deadline_ms\":{deadline_ms},\
                 \"heartbeat_ms\":{heartbeat_ms},\"retries\":{retries},\"verify\":{verify}}}",
                escape(spec),
                jobs_list(jobs)
            ),
            Msg::Heartbeat { lease } => format!("{{\"type\":\"heartbeat\",\"lease\":{lease}}}"),
            Msg::Result {
                lease,
                campaign,
                fingerprint,
                record,
                verify_failed,
            } => {
                let verify = if verify_failed.is_empty() {
                    String::new()
                } else {
                    format!(",\"verify_failed\":\"{}\"", escape(verify_failed))
                };
                format!(
                    "{{\"type\":\"result\",\"lease\":{lease},\"campaign\":{campaign},\
                     \"fingerprint\":\"{}\",\"record\":\"{}\"{verify}}}",
                    escape(fingerprint),
                    escape(record)
                )
            }
            Msg::Ack { campaign, job } => {
                format!("{{\"type\":\"ack\",\"campaign\":{campaign},\"job\":{job}}}")
            }
            Msg::Expired { lease } => format!("{{\"type\":\"expired\",\"lease\":{lease}}}"),
            Msg::Wait { ms } => format!("{{\"type\":\"wait\",\"ms\":{ms}}}"),
            Msg::Progress {
                campaign,
                committed,
                total,
                quarantined,
                workers,
            } => format!(
                "{{\"type\":\"progress\",\"campaign\":{campaign},\"committed\":{committed},\
                 \"total\":{total},\"quarantined\":{quarantined},\"workers\":{workers}}}"
            ),
            Msg::Done {
                campaign,
                committed,
                quarantined,
            } => format!(
                "{{\"type\":\"done\",\"campaign\":{campaign},\"committed\":{committed},\
                 \"quarantined\":{quarantined}}}"
            ),
            Msg::Error { code, message } => format!(
                "{{\"type\":\"error\",\"code\":{code},\"message\":\"{}\"}}",
                escape(message)
            ),
            Msg::Shutdown => "{\"type\":\"shutdown\"}".into(),
            Msg::Goodbye => "{\"type\":\"goodbye\"}".into(),
        }
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// A message naming the malformed field — the caller should treat any
    /// parse failure as a protocol violation and drop the connection.
    pub fn from_line(line: &str) -> Result<Msg, String> {
        let v = Json::parse(line.trim_end()).map_err(|e| format!("bad message JSON: {e}"))?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or("message has no `type`")?;
        let str_of = |key: &str| -> Result<String, String> {
            Ok(v.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("`{key}` must be a string"))?
                .to_string())
        };
        let u64_of = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("`{key}` must be an integer"))
        };
        let usize_of = |key: &str| -> Result<usize, String> {
            v.get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("`{key}` must be an integer"))
        };
        let bool_of = |key: &str| -> Result<bool, String> {
            v.get(key)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("`{key}` must be a bool"))
        };
        Ok(match ty {
            "submit" => Msg::Submit {
                spec: str_of("spec")?,
                journal: str_of("journal")?,
                retries: usize_of("retries")?,
                verify: bool_of("verify")?,
            },
            "accepted" => Msg::Accepted {
                campaign: u64_of("campaign")?,
                total: usize_of("total")?,
                resumed: usize_of("resumed")?,
            },
            "hello" => Msg::Hello {
                worker: str_of("worker")?,
            },
            "request" => Msg::Request,
            "lease" => Msg::Lease {
                lease: u64_of("lease")?,
                campaign: u64_of("campaign")?,
                spec: str_of("spec")?,
                jobs: v
                    .get("jobs")
                    .and_then(Json::as_arr)
                    .ok_or("`jobs` must be an array")?
                    .iter()
                    .map(|j| j.as_usize().ok_or("`jobs` entries must be integers"))
                    .collect::<Result<_, _>>()?,
                deadline_ms: u64_of("deadline_ms")?,
                heartbeat_ms: u64_of("heartbeat_ms")?,
                retries: usize_of("retries")?,
                verify: bool_of("verify")?,
            },
            "heartbeat" => Msg::Heartbeat {
                lease: u64_of("lease")?,
            },
            "result" => Msg::Result {
                lease: u64_of("lease")?,
                campaign: u64_of("campaign")?,
                fingerprint: str_of("fingerprint")?,
                record: str_of("record")?,
                verify_failed: match v.get("verify_failed") {
                    Some(_) => str_of("verify_failed")?,
                    None => String::new(),
                },
            },
            "ack" => Msg::Ack {
                campaign: u64_of("campaign")?,
                job: usize_of("job")?,
            },
            "expired" => Msg::Expired {
                lease: u64_of("lease")?,
            },
            "wait" => Msg::Wait { ms: u64_of("ms")? },
            "progress" => Msg::Progress {
                campaign: u64_of("campaign")?,
                committed: usize_of("committed")?,
                total: usize_of("total")?,
                quarantined: u64_of("quarantined")?,
                workers: u64_of("workers")?,
            },
            "done" => Msg::Done {
                campaign: u64_of("campaign")?,
                committed: usize_of("committed")?,
                quarantined: u64_of("quarantined")?,
            },
            "error" => Msg::Error {
                code: u8::try_from(u64_of("code")?).map_err(|_| "`code` out of range")?,
                message: str_of("message")?,
            },
            "shutdown" => Msg::Shutdown,
            "goodbye" => Msg::Goodbye,
            other => return Err(format!("unknown message type `{other}`")),
        })
    }
}

/// Writes one message as a single line + flush.  The whole line goes down
/// in one `write_all`, mirroring the journal's single-write discipline.
///
/// # Errors
///
/// The underlying IO error (the peer is then treated as gone).
pub fn write_msg<W: std::io::Write>(w: &mut W, msg: &Msg) -> std::io::Result<()> {
    let line = format!("{}\n", msg.to_line());
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Reads one message; `Ok(None)` is a clean EOF (peer closed the
/// connection between messages).
///
/// # Errors
///
/// IO failures, and [`FleetError::Dispatch`] for an unparseable line —
/// including the half-line a killed peer tears (EOF mid-line), which is
/// how `worker.result.torn` surfaces on the dispatcher side.
pub fn read_msg<R: BufRead>(r: &mut R) -> Result<Option<Msg>, FleetError> {
    let mut line = String::new();
    let n = r.read_line(&mut line).map_err(FleetError::Io)?;
    if n == 0 {
        return Ok(None);
    }
    if !line.ends_with('\n') {
        // EOF mid-line: the peer died while writing — a torn message is
        // never processed, exactly like a torn journal line.
        return Err(FleetError::Dispatch(format!(
            "connection closed mid-message ({} bytes of a torn line)",
            line.len()
        )));
    }
    Msg::from_line(&line)
        .map(Some)
        .map_err(|e| FleetError::Dispatch(format!("protocol violation: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_message_round_trips() {
        let spec = crate::CampaignSpec::example().to_json();
        let msgs = [
            Msg::Submit {
                spec: spec.clone(),
                journal: "/tmp/a.journal".into(),
                retries: 2,
                verify: true,
            },
            Msg::Accepted {
                campaign: 3,
                total: 8,
                resumed: 2,
            },
            Msg::Hello {
                worker: "w\"1\"".into(),
            },
            Msg::Request,
            Msg::Lease {
                lease: 9,
                campaign: 3,
                spec,
                jobs: vec![4, 5, 6],
                deadline_ms: 10_000,
                heartbeat_ms: 2_500,
                retries: 2,
                verify: false,
            },
            Msg::Heartbeat { lease: 9 },
            Msg::Result {
                lease: 9,
                campaign: 3,
                fingerprint: "00ffee0123456789".into(),
                record: "{\"job\":4,\"crc\":\"00ff\"}".into(),
                verify_failed: String::new(),
            },
            Msg::Result {
                lease: 9,
                campaign: 3,
                fingerprint: "00ffee0123456789".into(),
                record: "{\"job\":4,\"crc\":\"00ff\"}".into(),
                verify_failed: "check 3 failed".into(),
            },
            Msg::Ack {
                campaign: 3,
                job: 4,
            },
            Msg::Expired { lease: 9 },
            Msg::Wait { ms: 250 },
            Msg::Progress {
                campaign: 3,
                committed: 5,
                total: 8,
                quarantined: 1,
                workers: 2,
            },
            Msg::Done {
                campaign: 3,
                committed: 8,
                quarantined: 1,
            },
            Msg::Error {
                code: 7,
                message: "journal corrupt at record 1".into(),
            },
            Msg::Shutdown,
            Msg::Goodbye,
        ];
        for msg in msgs {
            let line = msg.to_line();
            assert!(!line.contains('\n'), "wire form must be one line: {line}");
            assert_eq!(Msg::from_line(&line).unwrap(), msg, "round trip {line}");
        }
    }

    #[test]
    fn embedded_record_survives_with_checksum_intact() {
        // The round trip that matters: a real journal line through the
        // wire encoding still passes its crc check on the other side.
        let spec = crate::CampaignSpec::example();
        let job = &spec.jobs()[0];
        let record = crate::JobRecord::quarantined(job, "injected: \"quoted\"\nfault".into());
        let wire = Msg::Result {
            lease: 1,
            campaign: 1,
            fingerprint: spec.fingerprint(),
            record: record.to_json_line(),
            verify_failed: String::new(),
        };
        let Msg::Result { record: line, .. } = Msg::from_line(&wire.to_line()).unwrap() else {
            panic!("wrong type");
        };
        assert_eq!(crate::JobRecord::from_json_line(&line).unwrap(), record);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "{",
            "{\"type\":\"nope\"}",
            "{\"no_type\":1}",
            "{\"type\":\"ack\",\"campaign\":1}",
            "{\"type\":\"lease\",\"lease\":1,\"campaign\":1,\"spec\":\"x\",\"jobs\":[\"a\"],\
             \"deadline_ms\":1,\"heartbeat_ms\":1,\"retries\":0,\"verify\":false}",
        ] {
            assert!(Msg::from_line(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn read_msg_flags_torn_lines_and_clean_eof() {
        let mut clean = std::io::Cursor::new(b"{\"type\":\"request\"}\n".to_vec());
        assert_eq!(read_msg(&mut clean).unwrap(), Some(Msg::Request));
        assert_eq!(read_msg(&mut clean).unwrap(), None);
        // A torn line (no trailing newline) is a dispatch error, never a
        // silently processed half-message.
        let mut torn = std::io::Cursor::new(b"{\"type\":\"req".to_vec());
        assert!(matches!(
            read_msg(&mut torn),
            Err(FleetError::Dispatch(m)) if m.contains("torn")
        ));
    }
}
