//! Shape assertions against the paper's Table I, at reduced scale: the
//! *relationships* the paper reports must hold (who wins, in which
//! direction, with what rough magnitudes) even though absolute numbers
//! differ on a synthetic substrate.

use psbi::core::flow::{BufferInsertionFlow, FlowConfig, InsertionResult, TargetPeriod};
use psbi::netlist::bench_suite;

fn run_at(sigma: f64, seed: u64) -> InsertionResult {
    let circuit = bench_suite::small_demo(9);
    let cfg = FlowConfig {
        samples: 300,
        yield_samples: 1500,
        calibration_samples: 800,
        seed,
        threads: 2,
        target: TargetPeriod::SigmaFactor(sigma),
        ..FlowConfig::default()
    };
    BufferInsertionFlow::builder(&circuit, cfg)
        .build()
        .unwrap()
        .run()
}

#[test]
fn baseline_yields_track_the_gaussian_levels() {
    // Paper §IV: Yo ≈ 50 / 84.13 / 97.72 % at µT / +σ / +2σ.
    let r0 = run_at(0.0, 5);
    let r1 = run_at(1.0, 5);
    let r2 = run_at(2.0, 5);
    assert!(
        (35.0..=65.0).contains(&r0.yield_baseline),
        "Yo(muT) = {}",
        r0.yield_baseline
    );
    assert!(
        (72.0..=93.0).contains(&r1.yield_baseline),
        "Yo(+1s) = {}",
        r1.yield_baseline
    );
    assert!(r2.yield_baseline >= 92.0, "Yo(+2s) = {}", r2.yield_baseline);
}

#[test]
fn improvement_shrinks_as_the_target_relaxes() {
    // Paper: Yi ≈ 17–36 points at µT, 10–14 at +σ, ~1 at +2σ.
    let r0 = run_at(0.0, 7);
    let r2 = run_at(2.0, 7);
    assert!(
        r0.improvement > r2.improvement,
        "Yi(muT) {} should beat Yi(+2s) {}",
        r0.improvement,
        r2.improvement
    );
    assert!(r0.improvement > 3.0, "Yi(muT) = {}", r0.improvement);
    assert!(r2.improvement >= -0.5, "buffers must not hurt at +2s");
}

#[test]
fn buffers_stay_a_small_fraction_of_ffs() {
    // Paper: Nb < 1 % of flip-flops.  At reduced sample counts and circuit
    // sizes we allow more headroom, but it must stay a small fraction.
    let r = run_at(0.0, 9);
    let frac = r.nb as f64 / r.n_ffs as f64;
    assert!(frac <= 0.15, "Nb = {} of {} FFs ({frac:.3})", r.nb, r.n_ffs);
}

#[test]
fn ranges_are_far_below_the_maximum() {
    // Paper: Ab ≪ 20 steps thanks to value concentration.
    let r = run_at(0.0, 13);
    if r.nb > 0 {
        assert!(r.ab < 18.0, "Ab = {}", r.ab);
    }
}

#[test]
fn yield_never_reaches_exactly_100_at_mu() {
    // Critical loops make some chips unfixable, as in the paper where
    // Y(µT) tops out at 86 %.
    let r = run_at(0.0, 21);
    assert!(
        r.yield_with_buffers < 99.9,
        "some chips must stay unfixable, Y = {}",
        r.yield_with_buffers
    );
}
