//! P5: the end-to-end insertion flow on a miniature circuit (kept small so
//! `cargo bench` stays interactive; the `table1` binary is the full-scale
//! harness).

use criterion::{criterion_group, criterion_main, Criterion};
use psbi_core::flow::{BufferInsertionFlow, FlowConfig, TargetPeriod};
use psbi_netlist::bench_suite;

fn bench_flow(c: &mut Criterion) {
    let circuit = bench_suite::tiny_demo(1);
    let cfg = FlowConfig {
        samples: 60,
        yield_samples: 120,
        calibration_samples: 120,
        seed: 9,
        target: TargetPeriod::SigmaFactor(0.0),
        threads: 1,
        ..FlowConfig::default()
    };
    let mut group = c.benchmark_group("flow");
    group.sample_size(10);
    group.bench_function("tiny_demo_end_to_end", |b| {
        b.iter(|| {
            BufferInsertionFlow::builder(&circuit, cfg.clone())
                .build()
                .unwrap()
                .run()
                .nb
        })
    });
    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
