//! Quickstart: insert post-silicon clock-tuning buffers into a small
//! synthetic circuit and report the yield improvement.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use psbi::core::flow::{BufferInsertionFlow, FlowConfig, TargetPeriod};
use psbi::netlist::bench_suite;

fn main() {
    // A small generated benchmark: 80 flip-flops, 900 gates, clock skews
    // included by the flow.
    let circuit = bench_suite::small_demo(42);
    println!(
        "circuit `{}`: {} FFs, {} gates",
        circuit.name,
        circuit.num_ffs(),
        circuit.num_gates()
    );

    // Target the mean of the unbuffered minimum-period distribution: the
    // aggressive setting where the unbuffered yield is ~50 %.
    let cfg = FlowConfig {
        samples: 1_000,
        yield_samples: 4_000,
        target: TargetPeriod::SigmaFactor(0.0),
        ..FlowConfig::default()
    };

    let flow = BufferInsertionFlow::builder(&circuit, cfg)
        .build()
        .expect("valid circuit");
    let result = flow.run();

    println!(
        "unbuffered minimum period: mu = {:.1} ps, sigma = {:.1} ps",
        result.mu_t, result.sigma_t
    );
    println!(
        "target period: {:.1} ps (buffer step {:.2} ps)",
        result.period, result.step
    );
    println!();
    println!(
        "inserted {} physical buffer(s) (from {} candidates before grouping)",
        result.nb, result.buffers_before_grouping
    );
    println!("average tuning range: {:.1} of max 20 steps", result.ab);
    for (i, g) in result.groups.iter().enumerate() {
        println!(
            "  buffer {i}: FFs {:?}, window [{}, {}] steps",
            g.members, g.lo, g.hi
        );
    }
    println!();
    println!(
        "yield: {:.2}% -> {:.2}%  (improvement {:.2} points, {} chips rescued)",
        result.yield_baseline, result.yield_with_buffers, result.improvement, result.rescued
    );
    let area = result.area();
    println!(
        "area: {} delay elements + {} config bits ({:.0}% below max-range buffers)",
        area.delay_elements,
        area.config_bits,
        100.0 * area.area_saving()
    );
}
