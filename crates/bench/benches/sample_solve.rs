//! P3: the per-sample buffer-minimisation solver — the flow's inner loop.
//! Measures solving one violated Monte-Carlo chip (region extraction,
//! support branch-and-bound, concentration MILP) plus the batched
//! whole-pass pipeline against the scalar per-chip one.

use criterion::{criterion_group, criterion_main, Criterion};
use psbi_core::solve::{
    BufferSpace, ChipSolveState, PassDiagnostics, PushObjective, RegionMemo, SampleSolver,
    SolveRequest, SolverOptions,
};
use psbi_liberty::Library;
use psbi_netlist::bench_suite;
use psbi_timing::graph::TimingGraph;
use psbi_timing::sample::{
    chip_rng, sample_canonical, CanonicalBatchSampler, SampleBatch, SampleTiming,
};
use psbi_timing::seq::SequentialGraph;
use psbi_timing::{constraint, ConstraintBatch, IntegerConstraints};
use psbi_variation::VariationModel;

fn bench_sample_solve(c: &mut Criterion) {
    let circuit = bench_suite::small_demo(2);
    let lib = Library::industry_like();
    let model = VariationModel::paper_defaults();
    let tg = TimingGraph::build(&circuit, &lib, &model).unwrap();
    let sg = SequentialGraph::extract(&tg);
    let skews = vec![0.0; sg.n_ffs];

    // Calibrate a period around the median so roughly half the samples
    // violate (the expensive case).
    let mut periods = Vec::new();
    let mut st = SampleTiming::for_graph(&sg);
    for k in 0..200 {
        let (globals, mut rng) = chip_rng(5, k);
        sample_canonical(&sg, &globals, &mut rng, &mut st);
        periods.push(constraint::min_period(&sg, &st, &skews).period);
    }
    let mu = psbi_variation::mean(&periods);
    let step = mu / 160.0;
    let space = BufferSpace::floating(sg.n_ffs, 20);

    // Pre-draw a violated sample.
    let mut ic = IntegerConstraints::for_graph(&sg);
    let mut violated_idx = 0;
    for k in 0..200 {
        let (globals, mut rng) = chip_rng(5, k);
        sample_canonical(&sg, &globals, &mut rng, &mut st);
        ic.build(&sg, &st, &skews, mu, step);
        if !ic.feasible_at_zero() {
            violated_idx = k;
            break;
        }
    }
    let (globals, mut rng) = chip_rng(5, violated_idx);
    sample_canonical(&sg, &globals, &mut rng, &mut st);
    ic.build(&sg, &st, &skews, mu, step);
    assert!(!ic.feasible_at_zero(), "expected a violated sample");

    let opts = SolverOptions::default();
    c.bench_function("solve_min_count_violated", |b| {
        let mut solver = SampleSolver::new();
        b.iter(|| {
            solver
                .solve(SolveRequest::new(
                    &sg,
                    ic.as_view(),
                    &space,
                    PushObjective::None,
                    &opts,
                ))
                .result
                .count()
        })
    });
    c.bench_function("solve_push_to_zero_violated", |b| {
        let mut solver = SampleSolver::new();
        b.iter(|| {
            solver
                .solve(SolveRequest::new(
                    &sg,
                    ic.as_view(),
                    &space,
                    PushObjective::ToZero,
                    &opts,
                ))
                .result
                .count()
        })
    });

    // The common fast path: a feasible sample (no violations).
    let mut ic_ok = IntegerConstraints::for_graph(&sg);
    ic_ok.build(&sg, &st, &skews, mu * 1.6, step);
    assert!(ic_ok.feasible_at_zero());
    c.bench_function("solve_feasible_sample", |b| {
        let mut solver = SampleSolver::new();
        b.iter(|| {
            solver
                .solve(SolveRequest::new(
                    &sg,
                    ic_ok.as_view(),
                    &space,
                    PushObjective::ToZero,
                    &opts,
                ))
                .result
                .count()
        })
    });
}

/// Batched-vs-scalar comparison over a whole mini-pass: sample, extract
/// constraints and solve 512 chips around the median period (a realistic
/// mix of clean and violated chips).  The batched side reuses one
/// `SampleBatch`/`ConstraintBatch`/`SampleSolver` (with its warm-started
/// `DiffSolver` and branch-and-bound scratch); the scalar side reuses its
/// `SampleTiming`/`IntegerConstraints`/`SampleSolver` across chips as the
/// pre-batch flow's worker loops did, but draws with the polar method and
/// solves without the warm-start/scratch machinery.
fn bench_pass_pipeline(c: &mut Criterion) {
    const SAMPLES: usize = 512;
    const CHUNK: usize = 64;
    let circuit = bench_suite::small_demo(2);
    let lib = Library::industry_like();
    let model = VariationModel::paper_defaults();
    let tg = TimingGraph::build(&circuit, &lib, &model).unwrap();
    let sg = SequentialGraph::extract(&tg);
    let skews = vec![0.0; sg.n_ffs];
    let mut periods = Vec::new();
    let mut st = SampleTiming::for_graph(&sg);
    for k in 0..200 {
        let (globals, mut rng) = chip_rng(5, k);
        sample_canonical(&sg, &globals, &mut rng, &mut st);
        periods.push(constraint::min_period(&sg, &st, &skews).period);
    }
    let period = psbi_variation::mean(&periods);
    let step = period / 160.0;
    let space = BufferSpace::floating(sg.n_ffs, 20);
    let opts = SolverOptions::default();

    let mut group = c.benchmark_group("pass_pipeline_512");
    group.sample_size(10);
    group.bench_function("scalar_reused", |b| {
        let mut st = SampleTiming::for_graph(&sg);
        let mut ic = IntegerConstraints::for_graph(&sg);
        let mut solver = SampleSolver::new();
        b.iter(|| {
            let mut solved = 0usize;
            for k in 0..SAMPLES as u64 {
                let (globals, mut rng) = chip_rng(9, k);
                sample_canonical(&sg, &globals, &mut rng, &mut st);
                ic.build(&sg, &st, &skews, period, step);
                let r = solver
                    .solve(SolveRequest::new(
                        &sg,
                        ic.as_view(),
                        &space,
                        PushObjective::ToZero,
                        &opts,
                    ))
                    .result;
                solved += usize::from(r.feasible);
            }
            solved
        })
    });
    group.bench_function("batched_reused_workspaces", |b| {
        let sampler = CanonicalBatchSampler::new(&sg);
        let mut batch = SampleBatch::new();
        let mut cons = ConstraintBatch::new();
        let mut solver = SampleSolver::new();
        b.iter(|| {
            let mut solved = 0usize;
            let mut lo = 0usize;
            while lo < SAMPLES {
                let len = CHUNK.min(SAMPLES - lo);
                batch.reset(&sg, len);
                sampler.fill(9, lo as u64, &mut batch);
                cons.build_from(&sg, &batch, &skews, period, step);
                for row in 0..len {
                    let r = solver
                        .solve(SolveRequest::new(
                            &sg,
                            cons.view(row),
                            &space,
                            PushObjective::ToZero,
                            &opts,
                        ))
                        .result;
                    solved += usize::from(r.feasible);
                }
                lo += len;
            }
            solved
        })
    });
    group.finish();
}

/// Warm-vs-cold re-solve of one pass over 512 chips: the incremental
/// cross-pass path (per-chip `ChipSolveState`, primed by a first pass)
/// against the cold re-derive baseline — the microbench behind the
/// `incremental` section of `BENCH_sampling.json`.
fn bench_pass_resolve_warm_vs_cold(c: &mut Criterion) {
    const SAMPLES: usize = 512;
    const CHUNK: usize = 64;
    let circuit = bench_suite::small_demo(2);
    let lib = Library::industry_like();
    let model = VariationModel::paper_defaults();
    let tg = TimingGraph::build(&circuit, &lib, &model).unwrap();
    let sg = SequentialGraph::extract(&tg);
    let skews = vec![0.0; sg.n_ffs];
    let mut periods = Vec::new();
    let mut st = SampleTiming::for_graph(&sg);
    for k in 0..200 {
        let (globals, mut rng) = chip_rng(5, k);
        sample_canonical(&sg, &globals, &mut rng, &mut st);
        periods.push(constraint::min_period(&sg, &st, &skews).period);
    }
    let period = psbi_variation::mean(&periods);
    let step = period / 160.0;
    let space = std::sync::Arc::new(BufferSpace::floating(sg.n_ffs, 20));
    let opts = SolverOptions::default();
    let sampler = CanonicalBatchSampler::new(&sg);

    let run_pass = |solver: &mut SampleSolver,
                    batch: &mut SampleBatch,
                    cons: &mut ConstraintBatch,
                    states: Option<&mut Vec<ChipSolveState>>,
                    diag: &mut PassDiagnostics| {
        let mut solved = 0usize;
        let mut states = states;
        let mut lo = 0usize;
        while lo < SAMPLES {
            let len = CHUNK.min(SAMPLES - lo);
            batch.reset(&sg, len);
            sampler.fill(9, lo as u64, batch);
            cons.build_from(&sg, batch, &skews, period, step);
            for row in 0..len {
                let r = match states.as_deref_mut() {
                    Some(states) => {
                        let out = solver.solve(
                            SolveRequest::shared(
                                &sg,
                                cons.view(row),
                                &space,
                                PushObjective::ToZero,
                                &opts,
                            )
                            .state(&mut states[lo + row]),
                        );
                        diag.merge(&out.diag);
                        out.result
                    }
                    None => {
                        solver
                            .solve(SolveRequest::new(
                                &sg,
                                cons.view(row),
                                &space,
                                PushObjective::ToZero,
                                &opts,
                            ))
                            .result
                    }
                };
                solved += usize::from(r.feasible);
            }
            lo += len;
        }
        solved
    };

    let mut group = c.benchmark_group("pass_resolve_warm_vs_cold");
    group.sample_size(10);
    group.bench_function("cold_rederive", |b| {
        let mut solver = SampleSolver::new();
        let mut batch = SampleBatch::new();
        let mut cons = ConstraintBatch::new();
        let mut diag = PassDiagnostics::default();
        b.iter(|| run_pass(&mut solver, &mut batch, &mut cons, None, &mut diag))
    });
    group.bench_function("warm_replay", |b| {
        let mut solver = SampleSolver::new();
        let mut batch = SampleBatch::new();
        let mut cons = ConstraintBatch::new();
        let mut states: Vec<ChipSolveState> = Vec::new();
        states.resize_with(SAMPLES, ChipSolveState::default);
        let mut diag = PassDiagnostics::default();
        // Prime the arena (the "previous pass"), then measure re-solves.
        run_pass(
            &mut solver,
            &mut batch,
            &mut cons,
            Some(&mut states),
            &mut diag,
        );
        b.iter(|| {
            run_pass(
                &mut solver,
                &mut batch,
                &mut cons,
                Some(&mut states),
                &mut diag,
            )
        })
    });
    group.finish();
}

/// Cross-chip memo hit versus cold search over one pass of 512 chips:
/// the memoised side re-solves the identical chip population through a
/// pre-warmed `RegionMemo` (every region system published, no per-chip
/// state), so each region is a lookup + verified replay instead of a
/// branch-and-bound — the microbench behind the `cross_chip` section of
/// `BENCH_sampling.json`.
fn bench_region_memo_hit_vs_cold(c: &mut Criterion) {
    const SAMPLES: usize = 512;
    const CHUNK: usize = 64;
    let circuit = bench_suite::small_demo(2);
    let lib = Library::industry_like();
    let model = VariationModel::paper_defaults();
    let tg = TimingGraph::build(&circuit, &lib, &model).unwrap();
    let sg = SequentialGraph::extract(&tg);
    let skews = vec![0.0; sg.n_ffs];
    let mut periods = Vec::new();
    let mut st = SampleTiming::for_graph(&sg);
    for k in 0..200 {
        let (globals, mut rng) = chip_rng(5, k);
        sample_canonical(&sg, &globals, &mut rng, &mut st);
        periods.push(constraint::min_period(&sg, &st, &skews).period);
    }
    let period = psbi_variation::mean(&periods);
    let step = period / 160.0;
    let space = std::sync::Arc::new(BufferSpace::floating(sg.n_ffs, 20));
    let opts = SolverOptions::default();
    let sampler = CanonicalBatchSampler::new(&sg);

    let run_pass = |solver: &mut SampleSolver,
                    batch: &mut SampleBatch,
                    cons: &mut ConstraintBatch,
                    memo: Option<&RegionMemo>,
                    diag: &mut PassDiagnostics| {
        let mut solved = 0usize;
        let mut lo = 0usize;
        while lo < SAMPLES {
            let len = CHUNK.min(SAMPLES - lo);
            batch.reset(&sg, len);
            sampler.fill(9, lo as u64, batch);
            cons.build_from(&sg, batch, &skews, period, step);
            for row in 0..len {
                let mut req =
                    SolveRequest::shared(&sg, cons.view(row), &space, PushObjective::ToZero, &opts);
                if let Some(m) = memo {
                    req = req.memo(m);
                }
                let out = solver.solve(req);
                diag.merge(&out.diag);
                let r = out.result;
                solved += usize::from(r.feasible);
            }
            lo += len;
        }
        solved
    };

    let mut group = c.benchmark_group("region_memo_hit_vs_cold");
    group.sample_size(10);
    group.bench_function("cold_search", |b| {
        let mut solver = SampleSolver::new();
        let mut batch = SampleBatch::new();
        let mut cons = ConstraintBatch::new();
        let mut diag = PassDiagnostics::default();
        b.iter(|| run_pass(&mut solver, &mut batch, &mut cons, None, &mut diag))
    });
    group.bench_function("memo_hit_replay", |b| {
        let mut solver = SampleSolver::new();
        let mut batch = SampleBatch::new();
        let mut cons = ConstraintBatch::new();
        let memo = RegionMemo::new();
        let mut diag = PassDiagnostics::default();
        // Prime: publish every region system of the population.
        run_pass(&mut solver, &mut batch, &mut cons, Some(&memo), &mut diag);
        assert!(!memo.is_empty(), "priming pass must publish");
        b.iter(|| run_pass(&mut solver, &mut batch, &mut cons, Some(&memo), &mut diag))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sample_solve,
    bench_pass_pipeline,
    bench_pass_resolve_warm_vs_cold,
    bench_region_memo_hit_vs_cold
);
criterion_main!(benches);
