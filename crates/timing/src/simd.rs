//! Runtime-dispatched wide (SIMD) kernels for the batch sampling engine.
//!
//! The Monte-Carlo hot loop spends nearly all of its time in two scalar
//! sweeps: the inverse-transform normal draw of
//! [`CanonicalBatchSampler::fill`] and the bound-extraction loop of
//! [`ConstraintBatch::build_from`].  This module provides wide versions of
//! both — AVX2 on `x86_64`, NEON on `aarch64`, and a portable four-lane
//! fallback everywhere — behind a per-process dispatch:
//!
//! * [`active`] picks the best available [`Backend`] **once per process**
//!   (`OnceLock`), so every flow, pass and fleet job in a process uses the
//!   same kernels — a prerequisite for the byte-determinism contracts;
//! * `PSBI_FORCE_SCALAR=1` forces the fused scalar reference path;
//! * `PSBI_SIMD_BACKEND=scalar|portable|avx2|neon` pins a specific
//!   backend (ignored when unavailable on the host).
//!
//! # Bit parity
//!
//! Every wide kernel evaluates the **identical IEEE expression tree** per
//! lane as the scalar reference: the same uniform-mapping constants, the
//! same Horner chains over [`acklam`]'s coefficients, the same
//! left-associated sensitivity accumulation, and min/max clamps whose
//! scalar and vector implementations agree bitwise on every value the
//! sampler can produce (all draws are finite; see [`clamp_nonneg`]).
//! Adds, multiplies, divides and `floor` are exactly rounded per lane in
//! every instruction set — none of the kernels use FMA contraction — so
//! SIMD and scalar paths produce **bit-identical** buffers:
//! `PSBI_FORCE_SCALAR=1` reproduces any run byte for byte, and the
//! `simd-parity` CI job enforces it for every backend its x86_64 runner
//! can execute (scalar, portable, AVX2); the NEON path is cross-compiled
//! there but its runtime parity is only exercised by running the test
//! suite on an aarch64 host.  The rare probit tail lanes (`u < P_LOW` or
//! `u > 1 − P_LOW`, ≈4.9 % of draws) are patched through the scalar
//! [`probit_fast`], which needs `ln`.
//!
//! [`CanonicalBatchSampler::fill`]: crate::sample::CanonicalBatchSampler::fill
//! [`ConstraintBatch::build_from`]: crate::constraint::ConstraintBatch::build_from

use psbi_variation::normal::{acklam, probit_central, probit_fast};
use psbi_variation::N_PARAMS;
use std::cell::RefCell;
use std::sync::OnceLock;

/// One family of canonical-form coefficients in structure-of-arrays
/// layout: `mean[k] + Σ_p sens[p][k]·δ_p + indep[k]·z` is draw `k`.
///
/// The sampler keeps four of these (setup, hold, edge-max, edge-min) so
/// the combine kernel streams contiguous coefficient lanes.
#[derive(Debug, Clone)]
pub(crate) struct FormGroup {
    /// Mean per form.
    pub(crate) mean: Vec<f64>,
    /// Global-parameter sensitivities, one array per parameter.
    pub(crate) sens: [Vec<f64>; N_PARAMS],
    /// Independent-term sigma per form (`0.0` ⇒ no local draw).
    pub(crate) indep: Vec<f64>,
}

impl FormGroup {
    pub(crate) fn new() -> Self {
        Self {
            mean: Vec::new(),
            sens: std::array::from_fn(|_| Vec::new()),
            indep: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, form: &psbi_variation::CanonicalForm) {
        self.mean.push(form.mean());
        for (dst, &s) in self.sens.iter_mut().zip(form.sensitivities()) {
            dst.push(s);
        }
        self.indep.push(form.indep());
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.mean.len()
    }
}

/// Which kernel implementation the sampling engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Fused scalar reference path — one form at a time, exactly the
    /// pre-SIMD code.  This is what `PSBI_FORCE_SCALAR=1` selects.
    Scalar,
    /// Portable four-lane kernels in plain Rust (no intrinsics); the
    /// compiler autovectorises them where the target allows.
    Portable,
    /// 256-bit AVX2 kernels (`x86_64`, runtime-detected).
    Avx2,
    /// 128-bit NEON kernels (`aarch64`).
    Neon,
}

impl Backend {
    /// Stable lower-case name (`scalar`, `portable`, `avx2`, `neon`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Portable => "portable",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    /// Parses [`Backend::name`] output (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(Backend::Scalar),
            "portable" => Some(Backend::Portable),
            "avx2" => Some(Backend::Avx2),
            "neon" => Some(Backend::Neon),
            _ => None,
        }
    }

    /// True when this backend can run on the current host.
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar | Backend::Portable => true,
            Backend::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Backend::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    /// Every backend runnable on this host (always starts with
    /// [`Backend::Scalar`] and [`Backend::Portable`]).
    pub fn available() -> Vec<Backend> {
        [
            Backend::Scalar,
            Backend::Portable,
            Backend::Avx2,
            Backend::Neon,
        ]
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
    }
}

/// The process-wide backend, selected once on first use.
///
/// Order of precedence: `PSBI_FORCE_SCALAR` (any value other than empty
/// or `0`) forces [`Backend::Scalar`]; else `PSBI_SIMD_BACKEND` names a
/// backend (ignored when unavailable); else the widest hardware backend
/// (AVX2 → NEON → portable).
pub fn active() -> Backend {
    static ACTIVE: OnceLock<Backend> = OnceLock::new();
    *ACTIVE.get_or_init(select)
}

fn select() -> Backend {
    if matches!(std::env::var("PSBI_FORCE_SCALAR"), Ok(v) if !v.is_empty() && v != "0") {
        return Backend::Scalar;
    }
    if let Ok(name) = std::env::var("PSBI_SIMD_BACKEND") {
        if let Some(b) = Backend::from_name(name.trim()) {
            if b.is_available() {
                return b;
            }
        }
    }
    best_wide()
}

fn best_wide() -> Backend {
    if Backend::Avx2.is_available() {
        Backend::Avx2
    } else if Backend::Neon.is_available() {
        Backend::Neon
    } else {
        Backend::Portable
    }
}

/// Per-thread staging buffers for the wide draw path: the per-chip
/// uniforms (dense form layout) and their probit images.
///
/// Uniform slots of forms with `indep == 0` are never written; they are
/// initialised to `0.5` and stay inside `(0, 1)`, so the dense probit
/// sweep never sees an out-of-domain value (the combine kernel masks the
/// resulting lanes out anyway).
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    pub(crate) u: Vec<f64>,
    pub(crate) z: Vec<f64>,
}

impl Scratch {
    pub(crate) fn ensure(&mut self, n: usize) {
        if self.u.len() < n {
            self.u.resize(n, 0.5);
            self.z.resize(n, 0.0);
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Runs `f` with this thread's staging buffers (allocation-free once
/// warm, shared by `fill` and the single-chip replay paths).
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Chip-invariant inputs of the bound-extraction kernel, all edge-indexed
/// (`setup_ff`/`hold_ff` are the capture-FF values pre-gathered per edge).
pub(crate) struct BoundLanes<'a> {
    pub(crate) setup_base: &'a [f64],
    pub(crate) setup_ff: &'a [f64],
    pub(crate) edge_max: &'a [f64],
    pub(crate) edge_min: &'a [f64],
    pub(crate) hold_ff: &'a [f64],
    pub(crate) hold_base: &'a [f64],
}

// ---------------------------------------------------------------------------
// Scalar lane reference — the single expression tree every backend must
// reproduce bit for bit.
// ---------------------------------------------------------------------------

/// `v` clamped to be non-negative: `v.max(0.0)`.
///
/// The wide backends implement this as `MAXPD`/`FMAX` against `+0.0`.
/// Draw values are always finite (finite coefficients, probit of a
/// uniform strictly inside `(0, 1)`), and for finite inputs the only
/// `max` cases where implementations may disagree — NaN and `-0.0`
/// versus `+0.0` operands — cannot arise: IEEE round-to-nearest addition
/// produces `-0.0` only from two `-0.0` terms, which the positive-mean
/// canonical forms never feed in.  Equal finite operands return the same
/// bit pattern from either side, so scalar and vector clamps agree
/// bit for bit.
#[inline]
pub(crate) fn clamp_nonneg(v: f64) -> f64 {
    v.max(0.0)
}

/// `(hi, lo)` ordering of an edge's (max, min) draw pair:
/// `(dmax.max(dmin), dmin.min(dmax))`, exactly as the scalar reference.
/// Bit-safe for the same reason as [`clamp_nonneg`]: both inputs are
/// finite and non-negative (already clamped), and equal operands give the
/// same bits from either implementation.
#[inline]
pub(crate) fn order_lane(dmax: f64, dmin: f64) -> (f64, f64) {
    (dmax.max(dmin), dmin.min(dmax))
}

/// One clamped draw of form `k` given its probit image `z`.
#[inline]
pub(crate) fn combine_lane(g: &FormGroup, k: usize, delta: &[f64; N_PARAMS], z: f64) -> f64 {
    let mut v = g.mean[k];
    for (s, &d) in g.sens.iter().zip(delta) {
        v += s[k] * d;
    }
    let ind = g.indep[k];
    let w = v + ind * z;
    clamp_nonneg(if ind != 0.0 { w } else { v })
}

/// One edge's floored integer bounds.
#[inline]
fn bounds_lane(l: &BoundLanes<'_>, e: usize, inv_step: f64) -> (i64, i64) {
    let setup_slack = l.setup_base[e] - l.setup_ff[e] - l.edge_max[e];
    let hold_slack = l.edge_min[e] - l.hold_ff[e] + l.hold_base[e];
    (
        (setup_slack * inv_step).floor() as i64,
        (hold_slack * inv_step).floor() as i64,
    )
}

// ---------------------------------------------------------------------------
// Dispatch entry points (crate-internal; callers have validated backend
// availability, which makes the `unsafe` intrinsic calls sound).
// ---------------------------------------------------------------------------

/// `z[i] = probit_fast(u[i])` over a dense SoA chunk.
pub(crate) fn probit_dense(b: Backend, u: &[f64], z: &mut [f64]) {
    assert_eq!(u.len(), z.len(), "probit buffers must match");
    debug_assert!(b.is_available());
    match b {
        Backend::Scalar => {
            for (zi, &ui) in z.iter_mut().zip(u) {
                *zi = probit_fast(ui);
            }
        }
        Backend::Portable => portable::probit_dense(u, z),
        Backend::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: dispatch/callers verified AVX2 is available.
            unsafe {
                avx2::probit_dense(u, z)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("AVX2 backend selected on non-x86_64 host")
        }
        Backend::Neon => {
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON is part of the aarch64 baseline.
            unsafe {
                neon::probit_dense(u, z)
            }
            #[cfg(not(target_arch = "aarch64"))]
            unreachable!("NEON backend selected on non-aarch64 host")
        }
    }
}

/// Clamped draws of a whole form group: `out[k] = combine_lane(g, k, …)`.
pub(crate) fn combine_draws(
    b: Backend,
    g: &FormGroup,
    delta: &[f64; N_PARAMS],
    z: &[f64],
    out: &mut [f64],
) {
    assert_eq!(g.len(), out.len(), "form group and output must match");
    assert_eq!(z.len(), out.len(), "probit chunk and output must match");
    debug_assert!(b.is_available());
    match b {
        Backend::Scalar => {
            for k in 0..out.len() {
                out[k] = combine_lane(g, k, delta, z[k]);
            }
        }
        Backend::Portable => portable::combine(g, delta, z, out),
        Backend::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: dispatch/callers verified AVX2 is available.
            unsafe {
                avx2::combine(g, delta, z, out)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("AVX2 backend selected on non-x86_64 host")
        }
        Backend::Neon => {
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON is part of the aarch64 baseline.
            unsafe {
                neon::combine(g, delta, z, out)
            }
            #[cfg(not(target_arch = "aarch64"))]
            unreachable!("NEON backend selected on non-aarch64 host")
        }
    }
}

/// In-place `(max, min)` ordering of the clamped edge draw pairs.
pub(crate) fn order_edge_pairs(b: Backend, emax: &mut [f64], emin: &mut [f64]) {
    assert_eq!(emax.len(), emin.len(), "edge pair buffers must match");
    debug_assert!(b.is_available());
    match b {
        Backend::Scalar | Backend::Portable => {
            for e in 0..emax.len() {
                let (hi, lo) = order_lane(emax[e], emin[e]);
                emax[e] = hi;
                emin[e] = lo;
            }
        }
        Backend::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: dispatch/callers verified AVX2 is available.
            unsafe {
                avx2::order_pairs(emax, emin)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("AVX2 backend selected on non-x86_64 host")
        }
        Backend::Neon => {
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON is part of the aarch64 baseline.
            unsafe {
                neon::order_pairs(emax, emin)
            }
            #[cfg(not(target_arch = "aarch64"))]
            unreachable!("NEON backend selected on non-aarch64 host")
        }
    }
}

/// Floored integer bounds of one chip over all edges.
pub(crate) fn extract_bounds(
    b: Backend,
    lanes: &BoundLanes<'_>,
    inv_step: f64,
    setup_bound: &mut [i64],
    hold_bound: &mut [i64],
) {
    let n = setup_bound.len();
    assert_eq!(hold_bound.len(), n);
    assert_eq!(lanes.setup_base.len(), n);
    assert_eq!(lanes.setup_ff.len(), n);
    assert_eq!(lanes.edge_max.len(), n);
    assert_eq!(lanes.edge_min.len(), n);
    assert_eq!(lanes.hold_ff.len(), n);
    assert_eq!(lanes.hold_base.len(), n);
    debug_assert!(b.is_available());
    match b {
        Backend::Scalar | Backend::Portable => {
            for e in 0..n {
                let (s, h) = bounds_lane(lanes, e, inv_step);
                setup_bound[e] = s;
                hold_bound[e] = h;
            }
        }
        Backend::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: dispatch/callers verified AVX2 is available.
            unsafe {
                avx2::bounds(lanes, inv_step, setup_bound, hold_bound)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("AVX2 backend selected on non-x86_64 host")
        }
        Backend::Neon => {
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON is part of the aarch64 baseline.
            unsafe {
                neon::bounds(lanes, inv_step, setup_bound, hold_bound)
            }
            #[cfg(not(target_arch = "aarch64"))]
            unreachable!("NEON backend selected on non-aarch64 host")
        }
    }
}

// ---------------------------------------------------------------------------
// Portable four-lane kernels: plain Rust, lane math written exactly as the
// scalar reference so the compiler may vectorise but can never re-associate.
// ---------------------------------------------------------------------------

mod portable {
    use super::*;

    const LANES: usize = 4;

    #[allow(clippy::needless_range_loop)]
    pub(super) fn probit_dense(u: &[f64], z: &mut [f64]) {
        use acklam::{A, B, P_LOW};
        let n = u.len();
        let mut i = 0;
        while i + LANES <= n {
            let mut q = [0.0f64; LANES];
            let mut r = [0.0f64; LANES];
            for l in 0..LANES {
                q[l] = u[i + l] - 0.5;
            }
            for l in 0..LANES {
                r[l] = q[l] * q[l];
            }
            let mut num = [A[0]; LANES];
            for &c in &A[1..] {
                for l in 0..LANES {
                    num[l] = num[l] * r[l] + c;
                }
            }
            let mut den = [B[0]; LANES];
            for &c in &B[1..] {
                for l in 0..LANES {
                    den[l] = den[l] * r[l] + c;
                }
            }
            for l in 0..LANES {
                den[l] = den[l] * r[l] + 1.0;
            }
            for l in 0..LANES {
                z[i + l] = num[l] * q[l] / den[l];
            }
            i += LANES;
        }
        while i < n {
            z[i] = probit_central(u[i]);
            i += 1;
        }
        // Tail patch: the scalar probit covers the `ln`-based branches.
        for (zk, &p) in z.iter_mut().zip(u) {
            if !(P_LOW..=1.0 - P_LOW).contains(&p) {
                *zk = probit_fast(p);
            }
        }
    }

    #[allow(clippy::needless_range_loop)]
    pub(super) fn combine(g: &FormGroup, delta: &[f64; N_PARAMS], z: &[f64], out: &mut [f64]) {
        let n = out.len();
        let mut i = 0;
        while i + LANES <= n {
            let mut v = [0.0f64; LANES];
            v.copy_from_slice(&g.mean[i..i + LANES]);
            for (s, &d) in g.sens.iter().zip(delta) {
                for l in 0..LANES {
                    v[l] += s[i + l] * d;
                }
            }
            for l in 0..LANES {
                let ind = g.indep[i + l];
                let w = v[l] + ind * z[i + l];
                out[i + l] = clamp_nonneg(if ind != 0.0 { w } else { v[l] });
            }
            i += LANES;
        }
        while i < n {
            out[i] = combine_lane(g, i, delta, z[i]);
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 kernels (x86_64).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;
    use core::arch::x86_64::*;

    const LANES: usize = 4;

    /// # Safety
    ///
    /// The host must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn probit_dense(u: &[f64], z: &mut [f64]) {
        use acklam::{A, B, P_LOW};
        let n = u.len();
        let half = _mm256_set1_pd(0.5);
        let one = _mm256_set1_pd(1.0);
        let mut i = 0;
        while i + LANES <= n {
            let p = _mm256_loadu_pd(u.as_ptr().add(i));
            let q = _mm256_sub_pd(p, half);
            let r = _mm256_mul_pd(q, q);
            let mut num = _mm256_set1_pd(A[0]);
            for &c in &A[1..] {
                num = _mm256_add_pd(_mm256_mul_pd(num, r), _mm256_set1_pd(c));
            }
            let mut den = _mm256_set1_pd(B[0]);
            for &c in &B[1..] {
                den = _mm256_add_pd(_mm256_mul_pd(den, r), _mm256_set1_pd(c));
            }
            den = _mm256_add_pd(_mm256_mul_pd(den, r), one);
            let res = _mm256_div_pd(_mm256_mul_pd(num, q), den);
            _mm256_storeu_pd(z.as_mut_ptr().add(i), res);
            i += LANES;
        }
        while i < n {
            z[i] = probit_central(u[i]);
            i += 1;
        }
        for (zk, &p) in z.iter_mut().zip(u) {
            if !(P_LOW..=1.0 - P_LOW).contains(&p) {
                *zk = probit_fast(p);
            }
        }
    }

    /// # Safety
    ///
    /// The host must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn combine(
        g: &FormGroup,
        delta: &[f64; N_PARAMS],
        z: &[f64],
        out: &mut [f64],
    ) {
        let n = out.len();
        let zero = _mm256_setzero_pd();
        let mut i = 0;
        while i + LANES <= n {
            let mut v = _mm256_loadu_pd(g.mean.as_ptr().add(i));
            for (s, &d) in g.sens.iter().zip(delta) {
                let sv = _mm256_loadu_pd(s.as_ptr().add(i));
                v = _mm256_add_pd(v, _mm256_mul_pd(sv, _mm256_set1_pd(d)));
            }
            let ind = _mm256_loadu_pd(g.indep.as_ptr().add(i));
            let zc = _mm256_loadu_pd(z.as_ptr().add(i));
            let w = _mm256_add_pd(v, _mm256_mul_pd(ind, zc));
            // Lanes with indep == 0 keep the global-only value, exactly as
            // the scalar path skips the local draw.
            let use_w = _mm256_cmp_pd::<_CMP_NEQ_OQ>(ind, zero);
            let sel = _mm256_blendv_pd(v, w, use_w);
            _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_max_pd(sel, zero));
            i += LANES;
        }
        while i < n {
            out[i] = combine_lane(g, i, delta, z[i]);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// The host must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn order_pairs(emax: &mut [f64], emin: &mut [f64]) {
        let n = emax.len();
        let mut i = 0;
        while i + LANES <= n {
            let a = _mm256_loadu_pd(emax.as_ptr().add(i));
            let b = _mm256_loadu_pd(emin.as_ptr().add(i));
            let hi = _mm256_max_pd(a, b);
            let lo = _mm256_min_pd(b, a);
            _mm256_storeu_pd(emax.as_mut_ptr().add(i), hi);
            _mm256_storeu_pd(emin.as_mut_ptr().add(i), lo);
            i += LANES;
        }
        while i < n {
            let (hi, lo) = order_lane(emax[i], emin[i]);
            emax[i] = hi;
            emin[i] = lo;
            i += 1;
        }
    }

    /// # Safety
    ///
    /// The host must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn bounds(
        lanes: &BoundLanes<'_>,
        inv_step: f64,
        setup_bound: &mut [i64],
        hold_bound: &mut [i64],
    ) {
        let n = setup_bound.len();
        let vis = _mm256_set1_pd(inv_step);
        let mut tmp = [0.0f64; LANES];
        let mut i = 0;
        while i + LANES <= n {
            let sb = _mm256_loadu_pd(lanes.setup_base.as_ptr().add(i));
            let sf = _mm256_loadu_pd(lanes.setup_ff.as_ptr().add(i));
            let em = _mm256_loadu_pd(lanes.edge_max.as_ptr().add(i));
            let s = _mm256_mul_pd(_mm256_sub_pd(_mm256_sub_pd(sb, sf), em), vis);
            _mm256_storeu_pd(tmp.as_mut_ptr(), _mm256_floor_pd(s));
            for l in 0..LANES {
                setup_bound[i + l] = tmp[l] as i64;
            }
            let emn = _mm256_loadu_pd(lanes.edge_min.as_ptr().add(i));
            let hf = _mm256_loadu_pd(lanes.hold_ff.as_ptr().add(i));
            let hb = _mm256_loadu_pd(lanes.hold_base.as_ptr().add(i));
            let h = _mm256_mul_pd(_mm256_add_pd(_mm256_sub_pd(emn, hf), hb), vis);
            _mm256_storeu_pd(tmp.as_mut_ptr(), _mm256_floor_pd(h));
            for l in 0..LANES {
                hold_bound[i + l] = tmp[l] as i64;
            }
            i += LANES;
        }
        while i < n {
            let (s, h) = bounds_lane(lanes, i, inv_step);
            setup_bound[i] = s;
            hold_bound[i] = h;
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// NEON kernels (aarch64), two f64 lanes.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::*;
    use core::arch::aarch64::*;

    const LANES: usize = 2;

    /// # Safety
    ///
    /// The host must support NEON (part of the aarch64 baseline).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn probit_dense(u: &[f64], z: &mut [f64]) {
        use acklam::{A, B, P_LOW};
        let n = u.len();
        let half = vdupq_n_f64(0.5);
        let one = vdupq_n_f64(1.0);
        let mut i = 0;
        while i + LANES <= n {
            let p = vld1q_f64(u.as_ptr().add(i));
            let q = vsubq_f64(p, half);
            let r = vmulq_f64(q, q);
            let mut num = vdupq_n_f64(A[0]);
            for &c in &A[1..] {
                num = vaddq_f64(vmulq_f64(num, r), vdupq_n_f64(c));
            }
            let mut den = vdupq_n_f64(B[0]);
            for &c in &B[1..] {
                den = vaddq_f64(vmulq_f64(den, r), vdupq_n_f64(c));
            }
            den = vaddq_f64(vmulq_f64(den, r), one);
            let res = vdivq_f64(vmulq_f64(num, q), den);
            vst1q_f64(z.as_mut_ptr().add(i), res);
            i += LANES;
        }
        while i < n {
            z[i] = probit_central(u[i]);
            i += 1;
        }
        for (zk, &p) in z.iter_mut().zip(u) {
            if !(P_LOW..=1.0 - P_LOW).contains(&p) {
                *zk = probit_fast(p);
            }
        }
    }

    /// # Safety
    ///
    /// The host must support NEON (part of the aarch64 baseline).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn combine(
        g: &FormGroup,
        delta: &[f64; N_PARAMS],
        z: &[f64],
        out: &mut [f64],
    ) {
        let n = out.len();
        let zero = vdupq_n_f64(0.0);
        let mut i = 0;
        while i + LANES <= n {
            let mut v = vld1q_f64(g.mean.as_ptr().add(i));
            for (s, &d) in g.sens.iter().zip(delta) {
                let sv = vld1q_f64(s.as_ptr().add(i));
                v = vaddq_f64(v, vmulq_f64(sv, vdupq_n_f64(d)));
            }
            let ind = vld1q_f64(g.indep.as_ptr().add(i));
            let zc = vld1q_f64(z.as_ptr().add(i));
            let w = vaddq_f64(v, vmulq_f64(ind, zc));
            // vbslq selects the first operand where the mask is set.
            let ind_zero = vceqzq_f64(ind);
            let sel = vbslq_f64(ind_zero, v, w);
            vst1q_f64(out.as_mut_ptr().add(i), vmaxq_f64(sel, zero));
            i += LANES;
        }
        while i < n {
            out[i] = combine_lane(g, i, delta, z[i]);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// The host must support NEON (part of the aarch64 baseline).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn order_pairs(emax: &mut [f64], emin: &mut [f64]) {
        let n = emax.len();
        let mut i = 0;
        while i + LANES <= n {
            let a = vld1q_f64(emax.as_ptr().add(i));
            let b = vld1q_f64(emin.as_ptr().add(i));
            let hi = vmaxq_f64(a, b);
            let lo = vminq_f64(b, a);
            vst1q_f64(emax.as_mut_ptr().add(i), hi);
            vst1q_f64(emin.as_mut_ptr().add(i), lo);
            i += LANES;
        }
        while i < n {
            let (hi, lo) = order_lane(emax[i], emin[i]);
            emax[i] = hi;
            emin[i] = lo;
            i += 1;
        }
    }

    /// # Safety
    ///
    /// The host must support NEON (part of the aarch64 baseline).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn bounds(
        lanes: &BoundLanes<'_>,
        inv_step: f64,
        setup_bound: &mut [i64],
        hold_bound: &mut [i64],
    ) {
        let n = setup_bound.len();
        let vis = vdupq_n_f64(inv_step);
        let mut tmp = [0.0f64; LANES];
        let mut i = 0;
        while i + LANES <= n {
            let sb = vld1q_f64(lanes.setup_base.as_ptr().add(i));
            let sf = vld1q_f64(lanes.setup_ff.as_ptr().add(i));
            let em = vld1q_f64(lanes.edge_max.as_ptr().add(i));
            let s = vmulq_f64(vsubq_f64(vsubq_f64(sb, sf), em), vis);
            vst1q_f64(tmp.as_mut_ptr(), vrndmq_f64(s));
            for l in 0..LANES {
                setup_bound[i + l] = tmp[l] as i64;
            }
            let emn = vld1q_f64(lanes.edge_min.as_ptr().add(i));
            let hf = vld1q_f64(lanes.hold_ff.as_ptr().add(i));
            let hb = vld1q_f64(lanes.hold_base.as_ptr().add(i));
            let h = vmulq_f64(vaddq_f64(vsubq_f64(emn, hf), hb), vis);
            vst1q_f64(tmp.as_mut_ptr(), vrndmq_f64(h));
            for l in 0..LANES {
                hold_bound[i + l] = tmp[l] as i64;
            }
            i += LANES;
        }
        while i < n {
            let (s, h) = bounds_lane(lanes, i, inv_step);
            setup_bound[i] = s;
            hold_bound[i] = h;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Uniform values exercising both tails, both branch boundaries, the
    /// centre, and enough entries that every chunk width leaves a
    /// remainder (11 = 2·4 + 3 = 5·2 + 1).
    fn tricky_uniforms() -> Vec<f64> {
        use acklam::P_LOW;
        vec![
            1e-300,
            1e-12,
            1e-6,
            P_LOW - 1e-9,
            P_LOW,
            0.5,
            1.0 - P_LOW,
            1.0 - P_LOW + 1e-9,
            1.0 - 1e-6,
            1.0 - 1e-12,
            1.0 - f64::EPSILON / 2.0,
        ]
    }

    #[test]
    fn probit_backends_bit_identical_including_tails() {
        let u = tricky_uniforms();
        let mut reference = vec![0.0; u.len()];
        for (r, &p) in reference.iter_mut().zip(&u) {
            *r = probit_fast(p);
        }
        for b in Backend::available() {
            let mut z = vec![f64::NAN; u.len()];
            probit_dense(b, &u, &mut z);
            for i in 0..u.len() {
                assert_eq!(
                    z[i].to_bits(),
                    reference[i].to_bits(),
                    "backend {} diverges at u = {}",
                    b.name(),
                    u[i]
                );
            }
        }
    }

    #[test]
    fn probit_central_matches_fast_inside_central_interval() {
        use acklam::P_LOW;
        for &p in &[P_LOW, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0 - P_LOW] {
            assert_eq!(probit_central(p).to_bits(), probit_fast(p).to_bits());
        }
    }

    fn synthetic_group(n: usize) -> FormGroup {
        let mut g = FormGroup::new();
        for k in 0..n {
            let mean = (k as f64) * 0.37 - 1.0;
            let mut sens = [0.0; N_PARAMS];
            for (p, s) in sens.iter_mut().enumerate() {
                *s = ((k + p) as f64).sin() * 0.2;
            }
            // Every third form has no independent term, exercising the
            // skip-lane mask.
            let indep = if k % 3 == 0 {
                0.0
            } else {
                0.05 + (k as f64) * 0.01
            };
            g.push(&psbi_variation::CanonicalForm::with_parts(
                mean, sens, indep,
            ));
        }
        g
    }

    #[test]
    fn combine_backends_bit_identical_with_remainders() {
        for n in [1usize, 3, 4, 5, 7, 8, 11, 16, 17] {
            let g = synthetic_group(n);
            let delta = [0.7, -1.3, 0.25];
            let z: Vec<f64> = (0..n).map(|k| ((k as f64) * 0.61).cos() * 2.0).collect();
            let mut reference = vec![0.0; n];
            for k in 0..n {
                reference[k] = combine_lane(&g, k, &delta, z[k]);
            }
            for b in Backend::available() {
                let mut out = vec![f64::NAN; n];
                combine_draws(b, &g, &delta, &z, &mut out);
                for k in 0..n {
                    assert_eq!(
                        out[k].to_bits(),
                        reference[k].to_bits(),
                        "backend {} diverges at n = {n}, k = {k}",
                        b.name()
                    );
                }
            }
        }
    }

    #[test]
    fn order_pairs_backends_bit_identical() {
        for n in [1usize, 2, 5, 9] {
            let base_max: Vec<f64> = (0..n).map(|k| ((k * 7) % 5) as f64 - 2.0).collect();
            let base_min: Vec<f64> = (0..n).map(|k| ((k * 3) % 5) as f64 - 2.0).collect();
            let mut ref_max = base_max.clone();
            let mut ref_min = base_min.clone();
            for e in 0..n {
                let (hi, lo) = order_lane(ref_max[e], ref_min[e]);
                ref_max[e] = hi;
                ref_min[e] = lo;
            }
            for b in Backend::available() {
                let mut emax = base_max.clone();
                let mut emin = base_min.clone();
                order_edge_pairs(b, &mut emax, &mut emin);
                assert_eq!(emax, ref_max, "backend {}", b.name());
                assert_eq!(emin, ref_min, "backend {}", b.name());
            }
        }
    }

    #[test]
    fn extract_bounds_backends_bit_identical() {
        for n in [1usize, 4, 6, 13] {
            let f = |k: usize, m: f64| ((k as f64) * m).sin() * 100.0;
            let setup_base: Vec<f64> = (0..n).map(|k| 500.0 + f(k, 0.3)).collect();
            let setup_ff: Vec<f64> = (0..n).map(|k| 30.0 + f(k, 0.7).abs()).collect();
            let edge_max: Vec<f64> = (0..n).map(|k| 300.0 + f(k, 1.1).abs()).collect();
            let edge_min: Vec<f64> = (0..n).map(|k| 100.0 + f(k, 0.9).abs()).collect();
            let hold_ff: Vec<f64> = (0..n).map(|k| 10.0 + f(k, 0.5).abs()).collect();
            let hold_base: Vec<f64> = (0..n).map(|k| f(k, 0.2)).collect();
            let lanes = BoundLanes {
                setup_base: &setup_base,
                setup_ff: &setup_ff,
                edge_max: &edge_max,
                edge_min: &edge_min,
                hold_ff: &hold_ff,
                hold_base: &hold_base,
            };
            let inv_step = 1.0 / 2.5;
            let mut ref_s = vec![0i64; n];
            let mut ref_h = vec![0i64; n];
            extract_bounds(Backend::Scalar, &lanes, inv_step, &mut ref_s, &mut ref_h);
            for b in Backend::available() {
                let mut s = vec![i64::MIN; n];
                let mut h = vec![i64::MIN; n];
                extract_bounds(b, &lanes, inv_step, &mut s, &mut h);
                assert_eq!(s, ref_s, "backend {}", b.name());
                assert_eq!(h, ref_h, "backend {}", b.name());
            }
        }
    }

    #[test]
    fn backend_names_round_trip() {
        for b in [
            Backend::Scalar,
            Backend::Portable,
            Backend::Avx2,
            Backend::Neon,
        ] {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name("AVX2"), Some(Backend::Avx2));
        assert_eq!(Backend::from_name("sse9"), None);
    }

    #[test]
    fn available_always_contains_reference_backends() {
        let av = Backend::available();
        assert!(av.contains(&Backend::Scalar));
        assert!(av.contains(&Backend::Portable));
        for b in av {
            assert!(b.is_available());
        }
    }

    #[test]
    fn active_is_stable_and_available() {
        let a = active();
        assert!(a.is_available());
        assert_eq!(active(), a, "active backend must be process-stable");
    }

    #[test]
    fn clamp_keeps_nonnegative_and_zeroes_negative() {
        assert_eq!(clamp_nonneg(3.5), 3.5);
        assert_eq!(clamp_nonneg(0.0), 0.0);
        assert_eq!(clamp_nonneg(-2.0), 0.0);
    }
}
