#![warn(missing_docs)]
//! Process-variation modelling for post-silicon buffer insertion.
//!
//! This crate provides the statistical substrate of the PSBI workspace:
//!
//! * [`normal`] — scalar normal-distribution math (`erf`, Φ, φ, probit) and a
//!   Box–Muller/polar standard-normal sampler built on [`rand`];
//! * [`params`] — the three-parameter process model used by the paper
//!   (transistor length, oxide thickness, threshold voltage) with a
//!   global/local variance decomposition;
//! * [`canonical`] — first-order canonical delay forms in the style of
//!   Visweswariah et al. (DAC 2004) with `add`, `scale` and Clark's
//!   moment-matching `max`/`min`;
//! * [`stats`] — the sample statistics the insertion flow needs (mean,
//!   standard deviation, quantiles, Pearson correlation and integer
//!   histograms with sliding-window queries);
//! * [`seeding`] — deterministic derivation of per-sample RNGs so Monte Carlo
//!   results are independent of thread scheduling.
//!
//! # Example
//!
//! ```
//! use psbi_variation::canonical::CanonicalForm;
//! use psbi_variation::params::N_PARAMS;
//!
//! // Two correlated delays: both depend on the global length source.
//! let a = CanonicalForm::with_parts(10.0, [0.8, 0.0, 0.0], 0.2);
//! let b = CanonicalForm::with_parts(9.0, [0.6, 0.1, 0.0], 0.3);
//! let m = a.max(&b);
//! assert!(m.mean() >= 10.0);
//! assert_eq!(N_PARAMS, 3);
//! ```

pub mod canonical;
pub mod normal;
pub mod params;
pub mod seeding;
pub mod stats;

pub use canonical::CanonicalForm;
pub use params::{GlobalSample, ProcessParam, VariationModel, N_PARAMS};
pub use seeding::sample_rng;
pub use stats::{mean, pearson, quantile, stddev, variance, Histogram, Summary};
