//! Difference-constraint feasibility via SPFA with negative-cycle detection.
//!
//! A system `x_to − x_from ≤ w` over integer variables is feasible iff the
//! constraint graph (arc `from → to` with weight `w`) has no negative
//! cycle; shortest-path distances from a source are then a witness
//! assignment.  Variable bounds are encoded by the caller as arcs to/from a
//! designated root variable that is pinned to zero.
//!
//! This is the workhorse of both the per-sample ILP (support-set
//! feasibility checks) and the yield evaluator, so the solver keeps all its
//! workspaces allocated across calls — including the combined-arc scratch
//! used by the bounded forms, which upstream callers hammer once per chip.
//!
//! # Warm starts
//!
//! Consecutive Monte-Carlo chips differ only slightly, so a witness that
//! configured the previous chip very often configures the next one too.
//! [`DiffSolver::feasible_bounded_warm`] exploits this: it first validates
//! the cached witness of the last feasible call against the new system in
//! `O(arcs + bounds)` — no graph build, no SPFA — and only falls back to
//! the cold solve when the check fails.  The cache starts as the all-zero
//! assignment, which instantly accepts every chip that needs no tuning at
//! all (the common case at realistic yields).  Soundness is unconditional:
//! a warm accept is a *verified* witness, and every reject re-runs the
//! exact cold path.

/// One arc of the constraint graph: `x[to] − x[from] ≤ weight`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arc {
    /// Variable on the right-hand side.
    pub from: u32,
    /// Variable on the left-hand side.
    pub to: u32,
    /// Upper bound on the difference.
    pub weight: i64,
}

impl Arc {
    /// Convenience constructor for `x[to] − x[from] ≤ weight`.
    #[inline]
    pub fn new(from: u32, to: u32, weight: i64) -> Self {
        Self { from, to, weight }
    }
}

/// Result of a feasibility check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Feasibility {
    /// A witness assignment with `x[source] = 0`.
    Feasible(Vec<i64>),
    /// The system contains a negative cycle.
    Infeasible,
}

impl Feasibility {
    /// True when feasible.
    pub fn is_feasible(&self) -> bool {
        matches!(self, Feasibility::Feasible(_))
    }

    /// The witness, if feasible.
    pub fn witness(&self) -> Option<&[i64]> {
        match self {
            Feasibility::Feasible(x) => Some(x),
            Feasibility::Infeasible => None,
        }
    }
}

/// Reusable SPFA solver.
#[derive(Debug, Default)]
pub struct DiffSolver {
    // CSR adjacency built per call.
    head: Vec<u32>,
    next_out: Vec<u32>,
    arc_to: Vec<u32>,
    arc_w: Vec<i64>,
    dist: Vec<i64>,
    /// Edge count of the current shortest path per node; reaching `n`
    /// proves a negative cycle (a simple path has at most `n − 1` arcs).
    path_len: Vec<u32>,
    in_queue: Vec<bool>,
    queue: std::collections::VecDeque<u32>,
    /// Scratch for the bounded forms: input arcs + bound arcs combined.
    bound_arcs: Vec<Arc>,
    /// Parent arc per node (cycle-extracting core only).
    parent_arc: Vec<u32>,
    /// Witness of the last feasible bounded call (see module docs).
    warm: Vec<i64>,
    /// Whether `warm` holds a usable assignment (sized for `warm.len()`
    /// variables).
    warm_valid: bool,
}

const NO_ARC: u32 = u32::MAX;
/// Distances are clamped well below `i64::MAX` so additions cannot overflow.
const INF: i64 = i64::MAX / 4;

impl DiffSolver {
    /// Creates a solver with empty workspaces.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks feasibility of `arcs` over `n` variables, using `source` as
    /// the zero-pinned variable.
    ///
    /// Variables not reachable from `source` keep the value `0` in the
    /// witness; their constraints are still verified (a post-pass checks
    /// every arc), so the result is sound even for disconnected systems.
    ///
    /// # Panics
    ///
    /// Panics if an arc references a variable `>= n` or `source >= n`.
    pub fn solve(&mut self, n: usize, source: u32, arcs: &[Arc]) -> Feasibility {
        if self.solve_core(n, source, arcs) {
            let witness: Vec<i64> = (0..n).map(|i| self.witness_value(i)).collect();
            Feasibility::Feasible(witness)
        } else {
            Feasibility::Infeasible
        }
    }

    /// Witness value of variable `i` after a feasible [`solve_core`] run
    /// (unreachable variables default to 0).
    ///
    /// [`solve_core`]: DiffSolver::solve_core
    #[inline]
    fn witness_value(&self, i: usize) -> i64 {
        if self.dist[i] >= INF {
            0
        } else {
            self.dist[i]
        }
    }

    /// Allocation-free SPFA core; leaves the witness in `self.dist`.
    fn solve_core(&mut self, n: usize, source: u32, arcs: &[Arc]) -> bool {
        assert!((source as usize) < n, "source out of range");
        // Build CSR.
        self.head.clear();
        self.head.resize(n, NO_ARC);
        self.next_out.clear();
        self.next_out.resize(arcs.len(), NO_ARC);
        self.arc_to.clear();
        self.arc_w.clear();
        for (k, a) in arcs.iter().enumerate() {
            assert!(
                (a.from as usize) < n && (a.to as usize) < n,
                "arc out of range"
            );
            self.arc_to.push(a.to);
            self.arc_w.push(a.weight);
            self.next_out[k] = self.head[a.from as usize];
            self.head[a.from as usize] = k as u32;
        }
        self.dist.clear();
        self.dist.resize(n, INF);
        self.path_len.clear();
        self.path_len.resize(n, 0);
        self.in_queue.clear();
        self.in_queue.resize(n, false);
        self.queue.clear();

        self.dist[source as usize] = 0;
        self.queue.push_back(source);
        self.in_queue[source as usize] = true;

        while let Some(u) = self.queue.pop_front() {
            self.in_queue[u as usize] = false;
            let du = self.dist[u as usize];
            let lu = self.path_len[u as usize];
            let mut k = self.head[u as usize];
            while k != NO_ARC {
                let v = self.arc_to[k as usize];
                let nd = du + self.arc_w[k as usize];
                if nd < self.dist[v as usize] {
                    self.dist[v as usize] = nd.max(-INF);
                    // A simple path has at most n − 1 arcs; reaching n arcs
                    // proves a negative cycle on the path.
                    self.path_len[v as usize] = lu + 1;
                    if self.path_len[v as usize] >= n as u32 {
                        return false;
                    }
                    if !self.in_queue[v as usize] {
                        self.in_queue[v as usize] = true;
                        self.queue.push_back(v);
                    }
                }
                k = self.next_out[k as usize];
            }
        }

        // Unreachable variables default to 0; verify every arc holds.
        for a in arcs {
            if self.witness_value(a.to as usize) - self.witness_value(a.from as usize) > a.weight {
                return false;
            }
        }
        true
    }

    /// Feasibility of a bounded system: `x[to] − x[from] ≤ w` plus
    /// `lo_i ≤ x_i ≤ hi_i` with the root variable (index `n`, added
    /// internally) pinned to zero.
    ///
    /// This is the form the insertion flow uses: `bounds[i]` are the buffer
    /// range windows in steps, and any FF without a buffer is simply not a
    /// variable here (the caller contracts it into the root).
    ///
    /// # Panics
    ///
    /// Panics if any `lo > hi` or an arc references a variable `>= n`.
    pub fn solve_bounded(&mut self, n: usize, arcs: &[Arc], bounds: &[(i64, i64)]) -> Feasibility {
        if self.solve_bounded_core(n, arcs, bounds) {
            let witness: Vec<i64> = (0..n).map(|i| self.witness_value(i)).collect();
            Feasibility::Feasible(witness)
        } else {
            Feasibility::Infeasible
        }
    }

    /// Shared bounded solve: combines `arcs` with the bound arcs in the
    /// reusable scratch buffer, runs the SPFA core, leaves the witness in
    /// `self.dist`.
    fn solve_bounded_core(&mut self, n: usize, arcs: &[Arc], bounds: &[(i64, i64)]) -> bool {
        assert_eq!(bounds.len(), n, "one bound pair per variable");
        let root = n as u32;
        let mut all = std::mem::take(&mut self.bound_arcs);
        all.clear();
        all.reserve(arcs.len() + 2 * n);
        all.extend_from_slice(arcs);
        for (i, (lo, hi)) in bounds.iter().enumerate() {
            assert!(lo <= hi, "bound lo > hi for variable {i}");
            // x_i − root ≤ hi  and  root − x_i ≤ −lo.
            all.push(Arc::new(root, i as u32, *hi));
            all.push(Arc::new(i as u32, root, -*lo));
        }
        let feasible = self.solve_core(n + 1, root, &all);
        self.bound_arcs = all;
        feasible
    }

    /// Decides feasibility of a bounded system without materialising a
    /// witness vector and without touching the warm cache — for search
    /// loops that probe many small, unrelated subsystems (the support
    /// branch-and-bound).  Retrieve the witness of a feasible call with
    /// [`DiffSolver::copy_witness`].
    pub fn decide_bounded(&mut self, n: usize, arcs: &[Arc], bounds: &[(i64, i64)]) -> bool {
        self.solve_bounded_core(n, arcs, bounds)
    }

    /// Like [`DiffSolver::decide_bounded`], but on infeasibility writes
    /// the *arc indices* of one negative cycle into `cycle` (cleared
    /// first).  Indices `< arcs.len()` refer to the caller's arcs; larger
    /// ones are the internal window bound arcs (`arcs.len() + 2·i` is
    /// variable `i`'s upper-bound arc, `… + 2·i + 1` its lower).  A
    /// separate SPFA core keeps the parent-tracking cost out of the plain
    /// decide path.
    pub fn decide_bounded_cycle(
        &mut self,
        n: usize,
        arcs: &[Arc],
        bounds: &[(i64, i64)],
        cycle: &mut Vec<u32>,
    ) -> bool {
        assert_eq!(bounds.len(), n, "one bound pair per variable");
        let root = n as u32;
        let mut all = std::mem::take(&mut self.bound_arcs);
        all.clear();
        all.reserve(arcs.len() + 2 * n);
        all.extend_from_slice(arcs);
        for (i, (lo, hi)) in bounds.iter().enumerate() {
            assert!(lo <= hi, "bound lo > hi for variable {i}");
            all.push(Arc::new(root, i as u32, *hi));
            all.push(Arc::new(i as u32, root, -*lo));
        }
        let feasible = self.solve_core_cycle(n + 1, root, &all, cycle);
        self.bound_arcs = all;
        feasible
    }

    /// SPFA with per-node parent arcs; on a negative cycle, recovers its
    /// arc set.  Mirrors [`solve_core`] exactly apart from the parent
    /// bookkeeping — kept separate so the hot probe path pays nothing.
    ///
    /// [`solve_core`]: DiffSolver::solve_core
    fn solve_core_cycle(
        &mut self,
        n: usize,
        source: u32,
        arcs: &[Arc],
        cycle: &mut Vec<u32>,
    ) -> bool {
        assert!((source as usize) < n, "source out of range");
        cycle.clear();
        self.head.clear();
        self.head.resize(n, NO_ARC);
        self.next_out.clear();
        self.next_out.resize(arcs.len(), NO_ARC);
        self.arc_to.clear();
        self.arc_w.clear();
        for (k, a) in arcs.iter().enumerate() {
            assert!(
                (a.from as usize) < n && (a.to as usize) < n,
                "arc out of range"
            );
            self.arc_to.push(a.to);
            self.arc_w.push(a.weight);
            self.next_out[k] = self.head[a.from as usize];
            self.head[a.from as usize] = k as u32;
        }
        self.dist.clear();
        self.dist.resize(n, INF);
        self.path_len.clear();
        self.path_len.resize(n, 0);
        self.in_queue.clear();
        self.in_queue.resize(n, false);
        self.queue.clear();
        self.parent_arc.clear();
        self.parent_arc.resize(n, NO_ARC);

        self.dist[source as usize] = 0;
        self.queue.push_back(source);
        self.in_queue[source as usize] = true;

        while let Some(u) = self.queue.pop_front() {
            self.in_queue[u as usize] = false;
            let du = self.dist[u as usize];
            let lu = self.path_len[u as usize];
            let mut k = self.head[u as usize];
            while k != NO_ARC {
                let v = self.arc_to[k as usize];
                let nd = du + self.arc_w[k as usize];
                if nd < self.dist[v as usize] {
                    self.dist[v as usize] = nd.max(-INF);
                    self.path_len[v as usize] = lu + 1;
                    self.parent_arc[v as usize] = k;
                    if self.path_len[v as usize] >= n as u32 {
                        self.extract_cycle(n, v, arcs, cycle);
                        return false;
                    }
                    if !self.in_queue[v as usize] {
                        self.in_queue[v as usize] = true;
                        self.queue.push_back(v);
                    }
                }
                k = self.next_out[k as usize];
            }
        }

        for a in arcs {
            if self.witness_value(a.to as usize) - self.witness_value(a.from as usize) > a.weight {
                // Inconsistency among source-unreachable variables.  The
                // bounded form connects every variable to the root, so
                // this cannot happen there; report infeasible with an
                // empty cycle and let callers fall back gracefully.
                return false;
            }
        }
        true
    }

    /// Walks parent arcs back from `v` (whose path length reached `n`) to
    /// find a vertex inside the negative cycle, then collects the cycle's
    /// arc indices (each cycle vertex's entering parent arc).
    fn extract_cycle(&self, n: usize, v: u32, arcs: &[Arc], cycle: &mut Vec<u32>) {
        // n parent steps from v always land inside the cycle.
        let mut cur = v;
        for _ in 0..n {
            let pa = self.parent_arc[cur as usize];
            debug_assert!(pa != NO_ARC, "cycle walk fell off the parent chain");
            cur = arcs[pa as usize].from;
        }
        let start = cur;
        loop {
            let pa = self.parent_arc[cur as usize];
            cycle.push(pa);
            cur = arcs[pa as usize].from;
            if cur == start {
                break;
            }
        }
    }

    /// Copies the first `n` witness values of the most recent *feasible*
    /// solve into `out` (cleared first).  Only meaningful directly after a
    /// call that returned feasible.
    pub fn copy_witness(&self, n: usize, out: &mut Vec<i64>) {
        out.clear();
        out.extend((0..n).map(|i| self.witness_value(i)));
    }

    /// Decides feasibility of a bounded system without materialising a
    /// witness vector.  Cold path of the warm-start pair: always runs the
    /// SPFA and refreshes the cached witness on success.
    pub fn feasible_bounded(&mut self, n: usize, arcs: &[Arc], bounds: &[(i64, i64)]) -> bool {
        let feasible = self.solve_bounded_core(n, arcs, bounds);
        if feasible {
            let mut warm = std::mem::take(&mut self.warm);
            warm.clear();
            warm.extend((0..n).map(|i| self.witness_value(i)));
            self.warm = warm;
            self.warm_valid = true;
        }
        feasible
    }

    /// The cached warm witness of the last feasible bounded solve, if one
    /// is held.  Callers that carry per-chip solver state across passes
    /// export the witness here after a feasible
    /// [`DiffSolver::feasible_bounded_warm`] call and re-import it with
    /// [`DiffSolver::import_witness`] before the next call on the *same*
    /// chip — raising the validation hit rate without ever weakening the
    /// check (an imported witness is still fully validated against the new
    /// system before it is trusted).
    pub fn export_witness(&self) -> Option<&[i64]> {
        self.warm_valid.then_some(&self.warm[..])
    }

    /// Seeds the warm-witness cache with an externally carried assignment
    /// (see [`DiffSolver::export_witness`]).  Purely a hint: the next
    /// warm-start call validates it in full and falls back to the cold
    /// solve when it no longer fits, so importing can never change any
    /// feasibility verdict.
    pub fn import_witness(&mut self, witness: &[i64]) {
        self.warm.clear();
        self.warm.extend_from_slice(witness);
        self.warm_valid = true;
    }

    /// Warm-start feasibility: validates the cached witness of the last
    /// feasible call in `O(arcs + bounds)` and only falls back to the cold
    /// SPFA when the check fails.  The cache starts as the all-zero
    /// assignment.  See the module docs for the soundness argument.
    ///
    /// # Panics
    ///
    /// Panics if any `lo > hi` or an arc references a variable `> n` (the
    /// root index `n` is allowed, pinned to zero).
    pub fn feasible_bounded_warm(&mut self, n: usize, arcs: &[Arc], bounds: &[(i64, i64)]) -> bool {
        assert_eq!(bounds.len(), n, "one bound pair per variable");
        if !self.warm_valid || self.warm.len() != n {
            // Seed with the zero assignment: accepts every chip that is
            // already feasible untouched.
            self.warm.clear();
            self.warm.resize(n, 0);
            self.warm_valid = true;
        }
        let warm_ok = bounds.iter().enumerate().all(|(i, (lo, hi))| {
            assert!(lo <= hi, "bound lo > hi for variable {i}");
            (*lo..=*hi).contains(&self.warm[i])
        }) && arcs.iter().all(|a| {
            let value = |i: u32| {
                if (i as usize) == n {
                    0
                } else {
                    self.warm[i as usize]
                }
            };
            value(a.to) - value(a.from) <= a.weight
        });
        if warm_ok {
            return true;
        }
        self.feasible_bounded(n, arcs, bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_feasible_system() {
        let mut s = DiffSolver::new();
        // x1 - x0 <= 3, x2 - x1 <= -2, x2 - x0 <= 0
        let arcs = [Arc::new(0, 1, 3), Arc::new(1, 2, -2), Arc::new(0, 2, 0)];
        let sol = s.solve(3, 0, &arcs);
        let w = sol.witness().expect("feasible");
        assert!(w[1] - w[0] <= 3);
        assert!(w[2] - w[1] <= -2);
        assert!(w[2] - w[0] <= 0);
    }

    #[test]
    fn negative_cycle_is_infeasible() {
        let mut s = DiffSolver::new();
        // x1 - x0 <= -1 and x0 - x1 <= 0 → cycle weight -1.
        let arcs = [Arc::new(0, 1, -1), Arc::new(1, 0, 0)];
        assert_eq!(s.solve(2, 0, &arcs), Feasibility::Infeasible);
    }

    #[test]
    fn bounded_feasible_and_witness_in_bounds() {
        let mut s = DiffSolver::new();
        // x0 - x1 <= -5 (x0 at least 5 below x1), bounds [-10, 10].
        let arcs = [Arc::new(1, 0, -5)];
        let sol = s.solve_bounded(2, &arcs, &[(-10, 10), (-10, 10)]);
        let w = sol.witness().expect("feasible");
        assert!(w[0] - w[1] <= -5);
        for &x in w {
            assert!((-10..=10).contains(&x));
        }
    }

    #[test]
    fn bounds_can_make_system_infeasible() {
        let mut s = DiffSolver::new();
        // Need x0 ≥ x1 + 5, but both are confined to [0, 2].
        let arcs = [Arc::new(0, 1, -5)];
        assert_eq!(
            s.solve_bounded(2, &arcs, &[(0, 2), (0, 2)]),
            Feasibility::Infeasible
        );
        // Loosening the bounds fixes it.
        assert!(s.solve_bounded(2, &arcs, &[(0, 7), (0, 2)]).is_feasible());
    }

    #[test]
    fn disconnected_variables_default_to_zero() {
        let mut s = DiffSolver::new();
        // Variable 2 has no arcs at all.
        let arcs = [Arc::new(0, 1, 1)];
        let sol = s.solve(3, 0, &arcs);
        let w = sol.witness().unwrap();
        assert_eq!(w[2], 0);
    }

    #[test]
    fn disconnected_but_violated_is_caught() {
        let mut s = DiffSolver::new();
        // 1 and 2 are unreachable from source 0, but their mutual
        // constraints are inconsistent: x2 - x1 <= -1, x1 - x2 <= 0.
        let arcs = [Arc::new(1, 2, -1), Arc::new(2, 1, 0)];
        assert_eq!(s.solve(3, 0, &arcs), Feasibility::Infeasible);
    }

    #[test]
    fn solver_is_reusable() {
        let mut s = DiffSolver::new();
        for _ in 0..3 {
            assert!(s.solve(2, 0, &[Arc::new(0, 1, 1)]).is_feasible());
            assert_eq!(
                s.solve(2, 0, &[Arc::new(0, 1, -1), Arc::new(1, 0, 0)]),
                Feasibility::Infeasible
            );
        }
    }

    #[test]
    fn tight_equality_chain() {
        // x1 = x0 + 2 exactly (both directions), x2 = x1 - 7.
        let mut s = DiffSolver::new();
        let arcs = [
            Arc::new(0, 1, 2),
            Arc::new(1, 0, -2),
            Arc::new(1, 2, -7),
            Arc::new(2, 1, 7),
        ];
        let w = s.solve(3, 0, &arcs);
        let w = w.witness().unwrap();
        assert_eq!(w[1] - w[0], 2);
        assert_eq!(w[2] - w[1], -7);
    }

    #[test]
    #[should_panic(expected = "bound lo > hi")]
    fn invalid_bounds_panic() {
        let mut s = DiffSolver::new();
        let _ = s.solve_bounded(1, &[], &[(3, 1)]);
    }

    #[test]
    fn warm_agrees_with_cold_on_a_chip_stream() {
        // The warm path must decide exactly like the cold path over a
        // stream of slightly-varying systems (the yield-eval pattern).
        let mut warm = DiffSolver::new();
        let mut cold = DiffSolver::new();
        let bounds = [(-5i64, 5), (-5, 5), (0, 0)];
        for chip in 0..200i64 {
            // Drift the weights so some chips are feasible at zero, some
            // need a nonzero witness, and some are infeasible.
            let w1 = (chip % 11) - 5;
            let w2 = (chip % 7) - 3;
            let w3 = -(chip % 13);
            let arcs = [Arc::new(0, 1, w1), Arc::new(1, 2, w2), Arc::new(2, 0, w3)];
            let got = warm.feasible_bounded_warm(3, &arcs, &bounds);
            let want = cold.solve_bounded(3, &arcs, &bounds).is_feasible();
            assert_eq!(got, want, "chip {chip}: warm {got} vs cold {want}");
        }
    }

    /// Decodes an arc index reported by [`DiffSolver::decide_bounded_cycle`]
    /// back into the `(from, to, weight)` it stands for, mirroring the
    /// documented layout: indices `< arcs.len()` are caller arcs,
    /// `arcs.len() + 2·i` is variable `i`'s upper-bound arc (root → i,
    /// weight hi) and `arcs.len() + 2·i + 1` its lower-bound arc
    /// (i → root, weight −lo).
    fn decode_cycle_arc(
        idx: u32,
        n: usize,
        arcs: &[Arc],
        bounds: &[(i64, i64)],
    ) -> (u32, u32, i64) {
        let root = n as u32;
        let idx = idx as usize;
        if idx < arcs.len() {
            let a = &arcs[idx];
            (a.from, a.to, a.weight)
        } else {
            let off = idx - arcs.len();
            let i = (off / 2) as u32;
            if off.is_multiple_of(2) {
                (root, i, bounds[i as usize].1)
            } else {
                (i, root, -bounds[i as usize].0)
            }
        }
    }

    /// Asserts the reported cycle is closed (each arc's tail is the next
    /// arc's head — the extraction walks parent arcs backwards) and has
    /// negative total weight under the documented index encoding.
    fn assert_closed_negative_cycle(cycle: &[u32], n: usize, arcs: &[Arc], bounds: &[(i64, i64)]) {
        assert!(!cycle.is_empty(), "infeasible solve must report a cycle");
        let decoded: Vec<_> = cycle
            .iter()
            .map(|&i| decode_cycle_arc(i, n, arcs, bounds))
            .collect();
        let total: i64 = decoded.iter().map(|(_, _, w)| w).sum();
        assert!(total < 0, "cycle weight {total} not negative: {decoded:?}");
        for k in 0..decoded.len() {
            let next = decoded[(k + 1) % decoded.len()];
            assert_eq!(decoded[k].0, next.1, "cycle not closed: {decoded:?}");
        }
    }

    #[test]
    fn cycle_reports_caller_arc_indices() {
        let mut s = DiffSolver::new();
        // x0 − x1 ≤ −3 and x1 − x0 ≤ 2: the two caller arcs close a −1
        // cycle on their own; the windows are slack and take no part.
        let arcs = [Arc::new(1, 0, -3), Arc::new(0, 1, 2)];
        let bounds = [(-10i64, 10), (-10, 10)];
        let mut cycle = Vec::new();
        assert!(!s.decide_bounded_cycle(2, &arcs, &bounds, &mut cycle));
        assert!(!s.decide_bounded(2, &arcs, &bounds));
        let mut sorted = cycle.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1], "cycle must name the two caller arcs");
        assert_closed_negative_cycle(&cycle, 2, &arcs, &bounds);
    }

    #[test]
    fn cycle_reports_window_bound_arcs() {
        let mut s = DiffSolver::new();
        // x0 − x1 ≤ −5 is consistent on its own; only the windows
        // (x0 ≥ 3, x1 ≤ 3) close a negative cycle through the root.
        let arcs = [Arc::new(1, 0, -5)];
        let bounds = [(3i64, 10), (0, 3)];
        let mut cycle = Vec::new();
        assert!(!s.decide_bounded_cycle(2, &arcs, &bounds, &mut cycle));
        let mut sorted = cycle.clone();
        sorted.sort_unstable();
        // Caller arc 0, x0's lower-bound arc (1 + 2·0 + 1 = 2) and x1's
        // upper-bound arc (1 + 2·1 = 3).
        assert_eq!(sorted, vec![0, 2, 3]);
        assert_closed_negative_cycle(&cycle, 2, &arcs, &bounds);
    }

    #[test]
    fn cycle_variant_feasible_matches_plain_witness() {
        let mut s = DiffSolver::new();
        let arcs = [Arc::new(1, 0, -5)];
        let bounds = [(-10i64, 10), (-10, 10)];
        let mut cycle = vec![7]; // stale content must be cleared
        assert!(s.decide_bounded_cycle(2, &arcs, &bounds, &mut cycle));
        assert!(cycle.is_empty(), "feasible decide must clear the cycle");
        let mut w = Vec::new();
        s.copy_witness(2, &mut w);
        assert!(w[0] - w[1] <= -5);
        // Fixpoint distances are unique, so the cycle-tracking core must
        // land on the same witness as the plain decide path.
        let mut plain = DiffSolver::new();
        assert!(plain.decide_bounded(2, &arcs, &bounds));
        let mut pw = Vec::new();
        plain.copy_witness(2, &mut pw);
        assert_eq!(w, pw);
    }

    #[test]
    fn warm_zero_seed_accepts_trivial_system() {
        let mut s = DiffSolver::new();
        // All weights non-negative, bounds contain zero: the zero witness
        // must accept without a solve (observable only via correctness).
        assert!(s.feasible_bounded_warm(2, &[Arc::new(0, 1, 3)], &[(-1, 1), (-1, 1)]));
        // A shifted system that the zero witness fails must still be
        // decided correctly.
        assert!(s.feasible_bounded_warm(2, &[Arc::new(0, 1, -1)], &[(-1, 1), (-1, 1)]));
        assert!(!s.feasible_bounded_warm(2, &[Arc::new(0, 1, -3)], &[(-1, 1), (-1, 1)]));
        // And the cached witness from the feasible solve is revalidated.
        assert!(s.feasible_bounded_warm(2, &[Arc::new(0, 1, -1)], &[(-1, 1), (-1, 1)]));
    }

    #[test]
    fn witness_export_import_round_trips_and_stays_verified() {
        let mut a = DiffSolver::new();
        let bounds = [(-5i64, 5), (-5, 5)];
        assert!(a.feasible_bounded_warm(2, &[Arc::new(0, 1, -3)], &bounds));
        let witness: Vec<i64> = a.export_witness().expect("witness cached").to_vec();
        assert!(witness[1] - witness[0] <= -3);
        // A fresh solver seeded with the exported witness must decide the
        // same system without weakening: matching system accepts, a
        // contradicting one still rejects through the cold path.
        let mut b = DiffSolver::new();
        b.import_witness(&witness);
        assert!(b.feasible_bounded_warm(2, &[Arc::new(0, 1, -3)], &bounds));
        assert!(!b.feasible_bounded_warm(2, &[Arc::new(0, 1, -3), Arc::new(1, 0, 2)], &bounds));
        // A garbage import is validated away, not trusted.
        let mut c = DiffSolver::new();
        c.import_witness(&[9999, -9999]);
        assert!(c.feasible_bounded_warm(2, &[Arc::new(0, 1, -3)], &bounds));
    }

    #[test]
    fn warm_cache_survives_dimension_changes() {
        let mut s = DiffSolver::new();
        assert!(s.feasible_bounded_warm(2, &[], &[(0, 1), (0, 1)]));
        assert!(s.feasible_bounded_warm(4, &[], &[(0, 1); 4]));
        assert!(s.feasible_bounded_warm(2, &[Arc::new(0, 1, 0)], &[(0, 1), (0, 1)]));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// A witness returned by the solver always satisfies every
            /// arc and every bound.
            #[test]
            fn witness_satisfies_system(
                n in 2usize..8,
                arcs in proptest::collection::vec((0u32..8, 0u32..8, -10i64..10), 0..20),
                hi in 0i64..15,
            ) {
                let arcs: Vec<Arc> = arcs
                    .into_iter()
                    .filter(|(a, b, _)| (*a as usize) < n && (*b as usize) < n)
                    .map(|(a, b, w)| Arc::new(a, b, w))
                    .collect();
                let bounds = vec![(-hi, hi); n];
                let mut s = DiffSolver::new();
                if let Feasibility::Feasible(w) = s.solve_bounded(n, &arcs, &bounds) {
                    for a in &arcs {
                        prop_assert!(w[a.to as usize] - w[a.from as usize] <= a.weight);
                    }
                    for &x in &w {
                        prop_assert!((-hi..=hi).contains(&x));
                    }
                }
            }

            /// Brute force agreement on tiny systems: the solver says
            /// feasible iff some assignment in the bound box works.
            #[test]
            fn agrees_with_brute_force(
                arcs in proptest::collection::vec((0u32..3, 0u32..3, -4i64..4), 0..8),
            ) {
                let arcs: Vec<Arc> =
                    arcs.into_iter().map(|(a, b, w)| Arc::new(a, b, w)).collect();
                let bounds = [(-2i64, 2i64); 3];
                let mut s = DiffSolver::new();
                let got = s.solve_bounded(3, &arcs, &bounds).is_feasible();
                let mut any = false;
                for x0 in -2..=2i64 {
                    for x1 in -2..=2i64 {
                        for x2 in -2..=2i64 {
                            let x = [x0, x1, x2];
                            if arcs.iter().all(|a| {
                                x[a.to as usize] - x[a.from as usize] <= a.weight
                            }) {
                                any = true;
                            }
                        }
                    }
                }
                prop_assert_eq!(got, any);
            }
        }
    }
}
