//! Per-flip-flop combinational fanout cones.
//!
//! For every source flip-flop `i` the cone is the set of gates reachable
//! from `i`'s Q output without passing through another register, in global
//! topological order, together with the flip-flop sinks whose data input is
//! driven from inside the cone.  Both the SSTA edge extraction and the
//! exact gate-level sampler walk these cones.

use crate::graph::TimingGraph;
use psbi_netlist::NodeId;

/// The fanout cone of one source flip-flop.
#[derive(Debug, Clone, Default)]
pub struct Cone {
    /// Gates of the cone in topological order.
    pub gates: Vec<NodeId>,
    /// `(sink_ff_index, d_driver)` pairs: flip-flops reached by this cone.
    /// `d_driver` is the node driving the sink's D pin (a cone gate, or the
    /// source FF itself for a direct register-to-register connection).
    pub sinks: Vec<(usize, NodeId)>,
}

/// All cones, indexed by dense source-FF index.
#[derive(Debug, Clone)]
pub struct ConeSet {
    cones: Vec<Cone>,
}

impl ConeSet {
    /// An empty cone set (used by [`crate::seq::SequentialGraph::from_parts`]).
    pub fn empty() -> Self {
        Self { cones: Vec::new() }
    }

    /// Extracts every flip-flop's fanout cone.
    pub fn extract(tg: &TimingGraph<'_>) -> Self {
        let circuit = tg.circuit;
        let n = circuit.len();
        let mut mark = vec![u32::MAX; n];
        let mut cones = Vec::with_capacity(circuit.num_ffs());

        for (i, &ff) in circuit.ff_ids().iter().enumerate() {
            let stamp = i as u32;
            let mut gates: Vec<NodeId> = Vec::new();
            let mut sinks: Vec<(usize, NodeId)> = Vec::new();
            let mut stack: Vec<NodeId> = vec![ff];
            mark[ff.index()] = stamp;
            while let Some(node) = stack.pop() {
                for &out in circuit.fanouts(node) {
                    let kind = &circuit.node(out).kind;
                    if kind.is_gate() {
                        if mark[out.index()] != stamp {
                            mark[out.index()] = stamp;
                            gates.push(out);
                            stack.push(out);
                        }
                    } else if kind.is_ff() {
                        let j = circuit.ff_index(out).expect("dense ff index");
                        sinks.push((j, node));
                    }
                }
            }
            // The same sink can be recorded once per driving node visit
            // order; dedup on (sink, driver).
            sinks.sort_unstable_by_key(|(j, d)| (*j, d.index()));
            sinks.dedup();
            gates.sort_unstable_by_key(|g| tg.topo_pos(*g));
            cones.push(Cone { gates, sinks });
        }
        Self { cones }
    }

    /// The cone of source FF `i`.
    #[inline]
    pub fn cone(&self, i: usize) -> &Cone {
        &self.cones[i]
    }

    /// Number of cones (= number of flip-flops).
    pub fn len(&self) -> usize {
        self.cones.len()
    }

    /// True when there are no flip-flops.
    pub fn is_empty(&self) -> bool {
        self.cones.is_empty()
    }

    /// Total gate visits across all cones (a cost measure).
    pub fn total_gate_visits(&self) -> usize {
        self.cones.iter().map(|c| c.gates.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TimingGraph;
    use psbi_liberty::Library;
    use psbi_netlist::bench_format::{parse_bench, EXAMPLE_BENCH};
    use psbi_netlist::bench_suite;
    use psbi_variation::VariationModel;

    #[test]
    fn example_cones_are_correct() {
        let c = parse_bench(EXAMPLE_BENCH).unwrap();
        let lib = Library::industry_like();
        let model = VariationModel::paper_defaults();
        let tg = TimingGraph::build(&c, &lib, &model).unwrap();
        let cones = ConeSet::extract(&tg);
        assert_eq!(cones.len(), 3);

        // F0 feeds N1->N2->N3->N4 (to F0) and N5->N6 (to F1), N5->N7 (to F2).
        let f0_idx = c.ff_index(c.by_name("F0").unwrap()).unwrap();
        let cone = cones.cone(f0_idx);
        let gate_names: Vec<&str> = cone
            .gates
            .iter()
            .map(|g| c.node(*g).name.as_str())
            .collect();
        for g in ["N1", "N2", "N3", "N4", "N5", "N6", "N7"] {
            assert!(gate_names.contains(&g), "missing {g} in {gate_names:?}");
        }
        // Sinks: F0 (self-loop via N4), F1 (via N6), F2 (via N7).
        let sink_ffs: Vec<usize> = cone.sinks.iter().map(|(j, _)| *j).collect();
        assert!(sink_ffs.contains(&f0_idx));
        assert_eq!(cone.sinks.len(), 3);
    }

    #[test]
    fn cone_gates_are_topologically_ordered() {
        let c = bench_suite::small_demo(3);
        let lib = Library::industry_like();
        let model = VariationModel::paper_defaults();
        let tg = TimingGraph::build(&c, &lib, &model).unwrap();
        let cones = ConeSet::extract(&tg);
        for i in 0..cones.len() {
            let gates = &cones.cone(i).gates;
            for w in gates.windows(2) {
                assert!(tg.topo_pos(w[0]) < tg.topo_pos(w[1]));
            }
        }
    }

    #[test]
    fn every_ff_with_ff_driver_appears_as_direct_sink() {
        // Direct FF->FF connection must produce a sink with driver == source.
        let mut cc = psbi_netlist::Circuit::new("direct");
        let a = cc.add_input("a");
        let f1 = cc.add_ff("f1", "DFF_X1");
        let f2 = cc.add_ff("f2", "DFF_X1");
        cc.connect_ff_data(f1, a).unwrap();
        cc.connect_ff_data(f2, f1).unwrap();
        cc.add_output("o", f2);
        let lib = Library::industry_like();
        let model = VariationModel::paper_defaults();
        let tg = TimingGraph::build(&cc, &lib, &model).unwrap();
        let cones = ConeSet::extract(&tg);
        let f1_idx = cc.ff_index(f1).unwrap();
        let f2_idx = cc.ff_index(f2).unwrap();
        let cone = cones.cone(f1_idx);
        assert_eq!(cone.gates.len(), 0);
        assert_eq!(cone.sinks, vec![(f2_idx, f1)]);
    }

    #[test]
    fn visits_are_bounded() {
        let c = bench_suite::small_demo(5);
        let lib = Library::industry_like();
        let model = VariationModel::paper_defaults();
        let tg = TimingGraph::build(&c, &lib, &model).unwrap();
        let cones = ConeSet::extract(&tg);
        // Each cone visits each gate at most once.
        assert!(cones.total_gate_visits() <= c.num_ffs() * c.num_gates());
        assert!(!cones.is_empty());
    }
}
