//! The per-sample buffer-minimisation solver.
//!
//! For one Monte-Carlo sample the paper solves two ILPs (eqs. (8)–(13) and
//! (14)–(17)): first minimise the number of adjusted buffers `Σ c_i`, then
//! — with that count as a budget — minimise the total tuning magnitude.
//! This module solves the same problems exactly but exploits their
//! structure:
//!
//! * **Localisation.** Only constraints violated at `x = 0` force tunings.
//!   In any *minimal* solution, every connected component of the tuned set
//!   (in the constraint graph) touches a violated constraint — otherwise
//!   zeroing that component keeps feasibility and is smaller.  A component
//!   of `m` tuned buffers therefore lies within `m` hops of a violated
//!   endpoint, so solving inside a radius-`R` region is globally optimal as
//!   soon as the optimum count is `≤ R`; the region is grown until that
//!   holds (or it saturates its connected component, proving
//!   infeasibility).
//! * **Support-set branch and bound.** Inside a region the search branches
//!   on "buffer is adjusted / not adjusted".  Feasibility of a candidate
//!   support is a bounded difference-constraint system —
//!   [`psbi_timing::DiffSolver`] decides it in near-linear time — and a
//!   matching over still-uncovered violated constraints gives a
//!   vertex-cover lower bound.
//! * **Value concentration.** With the budget fixed, `min Σ|x_i − a_i|` is
//!   solved as a MILP ([`psbi_milp`]) with indicator constraints — the
//!   exact formulation of the paper's eqs. (14)–(21) — on the small region.
//!
//! The generic big-M MILP formulation of the whole problem is also
//! available ([`SampleSolver::solve_reference_milp`]) and is used by tests
//! to cross-validate the specialised path.

use psbi_milp::{Model, Op, Status};
use psbi_timing::feasibility::{Arc, DiffSolver};
use psbi_timing::{ConstraintsView, IntegerConstraints, SequentialGraph};

/// Which buffers exist and their tuning windows (in steps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferSpace {
    /// Per FF: does it (still) have a tuning buffer?
    pub has_buffer: Vec<bool>,
    /// Per FF: inclusive tuning bounds in steps (only meaningful where
    /// `has_buffer`).  Must contain 0 so that "not adjusted" is feasible.
    pub bounds: Vec<(i64, i64)>,
}

impl BufferSpace {
    /// Every FF gets a buffer with the paper's step-1 floating window: the
    /// window of width `steps` must contain both 0 and the tuning value, so
    /// the value ranges over `[-steps, steps]`.
    pub fn floating(n_ffs: usize, steps: i64) -> Self {
        Self {
            has_buffer: vec![true; n_ffs],
            bounds: vec![(-steps, steps); n_ffs],
        }
    }

    /// Number of FFs with buffers.
    pub fn num_buffers(&self) -> usize {
        self.has_buffer.iter().filter(|b| **b).count()
    }

    /// Validates that all active windows contain zero.
    ///
    /// # Errors
    ///
    /// Returns the index of the first offending FF.
    pub fn validate(&self) -> Result<(), usize> {
        for (i, has) in self.has_buffer.iter().enumerate() {
            if *has {
                let (lo, hi) = self.bounds[i];
                if lo > 0 || hi < 0 {
                    return Err(i);
                }
            }
        }
        Ok(())
    }
}

/// Secondary objective after the buffer count is minimised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PushObjective<'a> {
    /// Stop after minimising the count (paper §III-A1 / §III-B1).
    None,
    /// Minimise `Σ|x_i|` (paper §III-A3).
    ToZero,
    /// Minimise `Σ|x_i − a_i|` with per-FF targets (paper §III-B2).
    ToTargets(&'a [f64]),
}

/// Tunable solver limits.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SolverOptions {
    /// Initial region radius (hops around violated constraints).
    pub region_radius: usize,
    /// Hard cap on FFs per region (beyond it results are marked inexact).
    pub region_cap: usize,
    /// Maximum branch-and-bound nodes per region before greedy fallback.
    pub bb_node_cap: usize,
    /// Regions larger than this solve the concentration MILP on the fixed
    /// optimal support instead of branching over supports.
    pub exact_push_cap: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            region_radius: 2,
            region_cap: 48,
            bb_node_cap: 3_000,
            exact_push_cap: 14,
        }
    }
}

/// Solution of one sample.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SampleResult {
    /// Can this chip be configured at all (with the given buffer space)?
    pub feasible: bool,
    /// Whether the result is proven optimal (greedy fallbacks clear this).
    pub exact: bool,
    /// Nonzero tunings `(ff_index, steps)`.
    pub tunings: Vec<(u32, i64)>,
}

impl SampleResult {
    /// Number of adjusted buffers (the paper's `n_k`).
    pub fn count(&self) -> usize {
        self.tunings.len()
    }
}

/// Normalised constraint `k(a) − k(b) ≤ bound` with FF endpoints.
#[derive(Debug, Clone, Copy)]
struct RegCons {
    a: u32,
    b: u32,
    bound: i64,
}

/// Reusable per-sample solver (one per worker thread).
///
/// Every workspace the per-chip pipeline needs — the SPFA solver, region
/// scratch, the branch-and-bound's per-node buffers and the saturation
/// screen's arc/bound arrays — lives in this struct and is reused across
/// chips, so a steady-state pass performs no per-chip allocation outside
/// the result vectors themselves.
#[derive(Debug, Default)]
pub struct SampleSolver {
    diff: DiffSolver,
    /// Scratch: per-FF region id (or `NONE`).
    region_of: Vec<u32>,
    /// Scratch: per-FF variable slot within a support check.
    var_of: Vec<u32>,
    /// Scratch: visited stamp for BFS.
    dist: Vec<u32>,
    /// Scratch: violated constraints of the current chip.
    violated: Vec<RegCons>,
    /// Scratch: per-edge visit stamp for region-constraint attachment.
    edge_stamp: Vec<u32>,
    /// Current epoch for `edge_stamp`.
    epoch: u32,
    /// Scratch for the whole-chip saturation screen.
    fx_vars: Vec<u32>,
    fx_arcs: Vec<Arc>,
    fx_bounds: Vec<(i64, i64)>,
    /// Per-node scratch reused by every support-search in every region.
    ss_vars: Vec<u32>,
    ss_slot: Vec<u32>,
    ss_arcs: Vec<Arc>,
    ss_bounds: Vec<(i64, i64)>,
}

const NONE: u32 = u32::MAX;

impl SampleSolver {
    /// Creates a solver with empty workspaces.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves one sample: minimum buffer count, then (optionally) value
    /// concentration.
    pub fn solve(
        &mut self,
        sg: &SequentialGraph,
        ic: &IntegerConstraints,
        space: &BufferSpace,
        push: PushObjective<'_>,
        opts: &SolverOptions,
    ) -> SampleResult {
        self.solve_view(sg, ic.as_view(), space, push, opts)
    }

    /// Solves one sample from a borrowed constraint view (an
    /// [`IntegerConstraints`] or one row of a
    /// [`psbi_timing::ConstraintBatch`]).
    pub fn solve_view(
        &mut self,
        sg: &SequentialGraph,
        ic: ConstraintsView<'_>,
        space: &BufferSpace,
        push: PushObjective<'_>,
        opts: &SolverOptions,
    ) -> SampleResult {
        let n = sg.n_ffs;
        debug_assert_eq!(space.has_buffer.len(), n);

        // 1. Violated constraints at x = 0 (reused scratch).
        let mut violated = std::mem::take(&mut self.violated);
        violated.clear();
        for (e, edge) in sg.edges.iter().enumerate() {
            if ic.setup_bound[e] < 0 {
                violated.push(RegCons {
                    a: edge.from,
                    b: edge.to,
                    bound: ic.setup_bound[e],
                });
            }
            if ic.hold_bound[e] < 0 {
                violated.push(RegCons {
                    a: edge.to,
                    b: edge.from,
                    bound: ic.hold_bound[e],
                });
            }
        }
        let result = self.solve_with_violated(sg, ic, space, push, opts, &violated);
        self.violated = violated;
        result
    }

    /// The solve pipeline after violation collection (split out so the
    /// violation scratch can be taken and restored around it).
    fn solve_with_violated(
        &mut self,
        sg: &SequentialGraph,
        ic: ConstraintsView<'_>,
        space: &BufferSpace,
        push: PushObjective<'_>,
        opts: &SolverOptions,
        violated: &[RegCons],
    ) -> SampleResult {
        if violated.is_empty() {
            return SampleResult {
                feasible: true,
                exact: true,
                tunings: Vec::new(),
            };
        }
        // A violated constraint between two bufferless FFs is unfixable.
        for v in violated {
            if !space.has_buffer[v.a as usize] && !space.has_buffer[v.b as usize] {
                return SampleResult {
                    feasible: false,
                    exact: true,
                    tunings: Vec::new(),
                };
            }
        }

        // 2. Infeasibility screen at full saturation: if the chip cannot be
        // configured even with *every* buffer free, no region growth can
        // help (a negative cycle stays negative), so decide this once with
        // a single SPFA instead of growing regions toward it.
        if !self.chip_fixable(sg, ic, space) {
            return SampleResult {
                feasible: false,
                exact: true,
                tunings: Vec::new(),
            };
        }

        // 3. Region growth: solve at the initial radius, then — if some
        // region's optimal count exceeds the radius — once more at
        // radius = count, which provably contains a global optimum (any
        // better solution's components span fewer hops).  Two rounds
        // suffice; a third guards the inexact (node-capped) case.
        let mut radius = opts.region_radius;
        for round in 0..3 {
            let regions = self.collect_regions(sg, space, violated, radius);
            let mut all_tunings: Vec<(u32, i64)> = Vec::new();
            let mut exact = true;
            let mut need_radius = radius;
            for region in &regions {
                let sol = self.solve_region(ic, space, region, push, opts);
                match sol {
                    RegionOutcome::Feasible {
                        tunings,
                        count,
                        exact: ex,
                    } => {
                        if count > radius && !region.saturated {
                            need_radius = need_radius.max(count);
                        }
                        all_tunings.extend(tunings);
                        exact &= ex;
                    }
                    RegionOutcome::Infeasible => {
                        // The chip as a whole is fixable (screened above);
                        // a region-local infeasibility means the region is
                        // too small — grow it.
                        need_radius = need_radius.max(radius * 2 + 1);
                        exact = false;
                    }
                }
            }
            if need_radius == radius || round == 2 {
                return SampleResult {
                    feasible: true,
                    exact: exact && need_radius == radius,
                    tunings: all_tunings,
                };
            }
            radius = need_radius;
        }
        unreachable!("growth loop returns within three rounds");
    }

    /// One SPFA over the whole circuit with every buffer free: can this
    /// chip be configured at all?
    ///
    /// Uses the warm-started solver: the previous chip's witness usually
    /// still fits (chips differ only slightly), in which case this is a
    /// single `O(edges)` validation sweep with no graph build at all.
    fn chip_fixable(
        &mut self,
        sg: &SequentialGraph,
        ic: ConstraintsView<'_>,
        space: &BufferSpace,
    ) -> bool {
        let n = sg.n_ffs;
        self.var_of.clear();
        self.var_of.resize(n, NONE);
        let mut vars = std::mem::take(&mut self.fx_vars);
        let mut arcs = std::mem::take(&mut self.fx_arcs);
        let mut bounds = std::mem::take(&mut self.fx_bounds);
        vars.clear();
        arcs.clear();
        bounds.clear();
        for ff in 0..n {
            if space.has_buffer[ff] {
                self.var_of[ff] = vars.len() as u32;
                vars.push(ff as u32);
            }
        }
        let root = vars.len() as u32;
        let resolve = |ff: u32, var_of: &[u32]| -> u32 {
            let v = var_of[ff as usize];
            if v == NONE {
                root
            } else {
                v
            }
        };
        let mut fixable = true;
        for (e, edge) in sg.edges.iter().enumerate() {
            let vf = resolve(edge.from, &self.var_of);
            let vt = resolve(edge.to, &self.var_of);
            // Setup: k_from − k_to ≤ sb → arc to→from.
            let sb = ic.setup_bound[e];
            if vf == root && vt == root {
                if sb < 0 {
                    fixable = false;
                    break;
                }
            } else {
                arcs.push(Arc::new(vt, vf, sb));
            }
            let hb = ic.hold_bound[e];
            if vf == root && vt == root {
                if hb < 0 {
                    fixable = false;
                    break;
                }
            } else {
                arcs.push(Arc::new(vf, vt, hb));
            }
        }
        if fixable {
            bounds.extend(vars.iter().map(|&ff| space.bounds[ff as usize]));
            fixable = self.diff.feasible_bounded_warm(vars.len(), &arcs, &bounds);
        }
        self.fx_vars = vars;
        self.fx_arcs = arcs;
        self.fx_bounds = bounds;
        fixable
    }

    /// Builds regions: buffered FFs within `radius` hops of a violated
    /// constraint endpoint, split into connected components.
    fn collect_regions(
        &mut self,
        sg: &SequentialGraph,
        space: &BufferSpace,
        violated: &[RegCons],
        radius: usize,
    ) -> Vec<Region> {
        let n = sg.n_ffs;
        self.dist.clear();
        self.dist.resize(n, NONE);
        let mut frontier: Vec<u32> = Vec::new();
        for v in violated {
            for ff in [v.a, v.b] {
                if space.has_buffer[ff as usize] && self.dist[ff as usize] == NONE {
                    self.dist[ff as usize] = 0;
                    frontier.push(ff);
                }
            }
        }
        // Multi-source BFS over buffered adjacency.
        let mut collected: Vec<u32> = frontier.clone();
        let mut d = 0usize;
        while d < radius && !frontier.is_empty() {
            d += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for v in sg.neighbors(u as usize) {
                    if space.has_buffer[v] && self.dist[v] == NONE {
                        self.dist[v] = d as u32;
                        next.push(v as u32);
                        collected.push(v as u32);
                    }
                }
            }
            frontier = next;
        }
        // Saturation: no neighbour of the collected set is buffered and
        // uncollected (the set already fills its connected components).
        // Components of the induced subgraph.
        self.region_of.clear();
        self.region_of.resize(n, NONE);
        let mut regions: Vec<Region> = Vec::new();
        for &start in &collected {
            if self.region_of[start as usize] != NONE {
                continue;
            }
            let rid = regions.len() as u32;
            let mut ffs = vec![start];
            self.region_of[start as usize] = rid;
            let mut stack = vec![start];
            let mut saturated = true;
            while let Some(u) = stack.pop() {
                for v in sg.neighbors(u as usize) {
                    if !space.has_buffer[v] {
                        continue;
                    }
                    if self.dist[v] == NONE {
                        saturated = false; // a buffered FF just outside
                        continue;
                    }
                    if self.region_of[v] == NONE {
                        self.region_of[v] = rid;
                        ffs.push(v as u32);
                        stack.push(v as u32);
                    }
                }
            }
            regions.push(Region {
                ffs,
                cons: Vec::new(),
                saturated,
            });
        }
        // Attach constraints: any setup/hold constraint touching a region
        // FF.  An edge never spans two regions (adjacent collected FFs are
        // in the same component), so marking edges globally is safe.  The
        // per-edge marks are a reused stamp array (no per-chip allocation).
        self.epoch = self.epoch.wrapping_add(1);
        if self.edge_stamp.len() < sg.edges.len() || self.epoch == 0 {
            self.epoch = 1;
            self.edge_stamp.clear();
            self.edge_stamp.resize(sg.edges.len(), 0);
        }
        for region in regions.iter_mut() {
            for &ff in &region.ffs {
                for &e in sg
                    .out_edges(ff as usize)
                    .iter()
                    .chain(sg.in_edges(ff as usize))
                {
                    if self.edge_stamp[e as usize] == self.epoch {
                        continue;
                    }
                    self.edge_stamp[e as usize] = self.epoch;
                    let edge = &sg.edges[e as usize];
                    region.cons.push(ConsRef {
                        a: edge.from,
                        b: edge.to,
                        edge: e,
                        kind: Kind::Setup,
                    });
                    region.cons.push(ConsRef {
                        a: edge.to,
                        b: edge.from,
                        edge: e,
                        kind: Kind::Hold,
                    });
                }
            }
        }
        regions
    }

    /// Solves one region.
    fn solve_region(
        &mut self,
        ic: ConstraintsView<'_>,
        space: &BufferSpace,
        region: &Region,
        push: PushObjective<'_>,
        opts: &SolverOptions,
    ) -> RegionOutcome {
        let m = region.ffs.len();
        // Map ff -> local slot.
        self.var_of.clear();
        self.var_of.resize(space.has_buffer.len(), NONE);
        for (slot, &ff) in region.ffs.iter().enumerate() {
            self.var_of[ff as usize] = slot as u32;
        }
        // Materialise constraints with bounds.
        let cons: Vec<RegCons> = region
            .cons
            .iter()
            .map(|c| RegCons {
                a: c.a,
                b: c.b,
                bound: match c.kind {
                    Kind::Setup => ic.setup_bound[c.edge as usize],
                    Kind::Hold => ic.hold_bound[c.edge as usize],
                },
            })
            .collect();
        let violated_local: Vec<usize> = cons
            .iter()
            .enumerate()
            .filter(|(_, c)| c.bound < 0)
            .map(|(i, _)| i)
            .collect();

        // Branch and bound over supports.  The per-node buffers (variable
        // maps, arc and bound arrays) come from the solver's scratch pool,
        // so thousands of feasibility probes share four allocations.
        let mut search = SupportSearch {
            solver: &mut self.diff,
            var_of: &self.var_of,
            region_ffs: &region.ffs,
            cons: &cons,
            violated: &violated_local,
            bounds: &space.bounds,
            best: None,
            nodes: 0,
            node_cap: opts.bb_node_cap,
            exact: true,
            vars_scratch: std::mem::take(&mut self.ss_vars),
            slot_scratch: std::mem::take(&mut self.ss_slot),
            arcs_scratch: std::mem::take(&mut self.ss_arcs),
            bounds_scratch: std::mem::take(&mut self.ss_bounds),
        };
        let phase = run_support_search(&mut search, m, opts.region_cap);
        // Return the per-node scratch to the pool before `finish_region`
        // needs `&mut self` again.
        let (sv, ssl, sa, sb) = search.into_scratch();
        self.ss_vars = sv;
        self.ss_slot = ssl;
        self.ss_arcs = sa;
        self.ss_bounds = sb;
        match phase {
            SearchPhase::Infeasible => RegionOutcome::Infeasible,
            SearchPhase::Fallback { support, witness } => {
                let count = support.len();
                let tunings =
                    self.finish_region(region, &cons, space, count, &support, &witness, push, opts);
                RegionOutcome::Feasible {
                    tunings,
                    count,
                    exact: false,
                }
            }
            SearchPhase::Best {
                count,
                support,
                witness,
                exact,
            } => {
                let tunings =
                    self.finish_region(region, &cons, space, count, &support, &witness, push, opts);
                RegionOutcome::Feasible {
                    tunings,
                    count,
                    exact,
                }
            }
        }
    }

    /// Applies the push objective to a solved region.
    #[allow(clippy::too_many_arguments)]
    fn finish_region(
        &mut self,
        region: &Region,
        cons: &[RegCons],
        space: &BufferSpace,
        count: usize,
        support: &[u32],
        witness: &[i64],
        push: PushObjective<'_>,
        opts: &SolverOptions,
    ) -> Vec<(u32, i64)> {
        match push {
            PushObjective::None => support
                .iter()
                .zip(witness)
                .filter(|(_, k)| **k != 0)
                .map(|(ff, k)| (*ff, *k))
                .collect(),
            PushObjective::ToZero => {
                self.concentrate(region, cons, space, count, support, witness, None, opts)
            }
            PushObjective::ToTargets(targets) => self.concentrate(
                region,
                cons,
                space,
                count,
                support,
                witness,
                Some(targets),
                opts,
            ),
        }
    }

    /// Solves `min Σ|k_i − a_i|` subject to the constraints and the buffer
    /// budget, as a MILP over the region (paper eqs. (14)–(21)).
    #[allow(clippy::too_many_arguments)]
    fn concentrate(
        &mut self,
        region: &Region,
        cons: &[RegCons],
        space: &BufferSpace,
        budget: usize,
        support: &[u32],
        witness: &[i64],
        targets: Option<&[f64]>,
        opts: &SolverOptions,
    ) -> Vec<(u32, i64)> {
        let m = region.ffs.len();
        let over_supports = m <= opts.exact_push_cap;
        // Very large supports (greedy fallback on oversized regions): skip
        // the MILP and keep the witness values.
        const PUSH_SUPPORT_CAP: usize = 48;
        if !over_supports && support.len() > PUSH_SUPPORT_CAP {
            return support
                .iter()
                .zip(witness)
                .filter(|(_, k)| **k != 0)
                .map(|(ff, k)| (*ff, *k))
                .collect();
        }
        let mut model = Model::new();
        model.node_limit = 30_000;
        // Variables for either the full region (support is chosen by the
        // model) or just the fixed optimal support.
        let active: Vec<u32> = if over_supports {
            region.ffs.clone()
        } else {
            support.to_vec()
        };
        let mut var_slot = vec![NONE; self.var_of.len()];
        let mut kvars = Vec::with_capacity(active.len());
        for (s, &ff) in active.iter().enumerate() {
            var_slot[ff as usize] = s as u32;
            let (lo, hi) = space.bounds[ff as usize];
            let k = model.add_var(format!("k{ff}"), lo as f64, hi as f64, 0.0, true);
            kvars.push(k);
        }
        if over_supports {
            let mut cterms = Vec::with_capacity(active.len());
            for (s, &ff) in active.iter().enumerate() {
                let c = model.add_binary(format!("c{ff}"), 0.0);
                let (lo, hi) = space.bounds[ff as usize];
                let big_m = (lo.abs().max(hi.abs()) as f64).max(1.0);
                model.add_indicator(kvars[s], c, big_m);
                cterms.push((c, 1.0));
            }
            model.add_cons(cterms, Op::Le, budget as f64);
        }
        for c in cons {
            let sa = var_slot[c.a as usize];
            let sb = var_slot[c.b as usize];
            let mut terms = Vec::new();
            if sa != NONE {
                terms.push((kvars[sa as usize], 1.0));
            }
            if sb != NONE {
                terms.push((kvars[sb as usize], -1.0));
            }
            if terms.is_empty() {
                continue; // root-root, checked during feasibility
            }
            model.add_cons(terms, Op::Le, c.bound as f64);
        }
        for (s, &ff) in active.iter().enumerate() {
            let target = targets.map_or(0.0, |t| t[ff as usize]);
            model.add_abs_deviation(kvars[s], target, 1.0);
        }
        let sol = model.solve();
        if matches!(sol.status, Status::Optimal | Status::Feasible) {
            active
                .iter()
                .enumerate()
                .map(|(s, &ff)| (ff, sol.int_value(kvars[s])))
                .filter(|(_, k)| *k != 0)
                .collect()
        } else {
            // Should not happen (feasibility proven); fall back to witness.
            support
                .iter()
                .zip(witness)
                .filter(|(_, k)| **k != 0)
                .map(|(ff, k)| (*ff, *k))
                .collect()
        }
    }

    /// Solves the paper's full big-M ILP over *all* buffered FFs at once —
    /// exponentially slower but a direct transcription of eqs. (8)–(17);
    /// used by tests as a reference oracle.
    pub fn solve_reference_milp(
        &mut self,
        sg: &SequentialGraph,
        ic: &IntegerConstraints,
        space: &BufferSpace,
        push: PushObjective<'_>,
    ) -> SampleResult {
        let n = sg.n_ffs;
        let mut model = Model::new();
        let mut kvars = vec![None; n];
        let mut cterms = Vec::new();
        let mut cvars = vec![None; n];
        for ff in 0..n {
            if !space.has_buffer[ff] {
                continue;
            }
            let (lo, hi) = space.bounds[ff];
            let k = model.add_var(format!("k{ff}"), lo as f64, hi as f64, 0.0, true);
            let c = model.add_binary(format!("c{ff}"), 1.0);
            let big_m = (lo.abs().max(hi.abs()) as f64).max(1.0);
            model.add_indicator(k, c, big_m);
            kvars[ff] = Some(k);
            cvars[ff] = Some(c);
            cterms.push((c, 1.0));
        }
        let add_cons = |model: &mut Model, a: usize, b: usize, bound: i64| -> bool {
            match (kvars[a], kvars[b]) {
                (None, None) => bound >= 0,
                (ka, kb) => {
                    let mut terms = Vec::new();
                    if let Some(k) = ka {
                        terms.push((k, 1.0));
                    }
                    if let Some(k) = kb {
                        terms.push((k, -1.0));
                    }
                    model.add_cons(terms, Op::Le, bound as f64);
                    true
                }
            }
        };
        for (e, edge) in sg.edges.iter().enumerate() {
            let (i, j) = (edge.from as usize, edge.to as usize);
            if !add_cons(&mut model, i, j, ic.setup_bound[e])
                || !add_cons(&mut model, j, i, ic.hold_bound[e])
            {
                return SampleResult {
                    feasible: false,
                    exact: true,
                    tunings: Vec::new(),
                };
            }
        }
        let first = model.solve();
        if first.status != Status::Optimal {
            return SampleResult {
                feasible: false,
                exact: first.status == Status::Infeasible,
                tunings: Vec::new(),
            };
        }
        let nk = first.objective.round() as usize;
        let result_vals = match push {
            PushObjective::None => first,
            _ => {
                // Second stage: budget + |.| objective.
                let mut m2 = model.clone();
                for c in cvars.iter().flatten() {
                    m2.set_objective(*c, 0.0);
                }
                m2.add_cons(
                    cvars.iter().flatten().map(|c| (*c, 1.0)).collect(),
                    Op::Le,
                    nk as f64,
                );
                for ff in 0..n {
                    if let Some(k) = kvars[ff] {
                        let t = match push {
                            PushObjective::ToTargets(t) => t[ff],
                            _ => 0.0,
                        };
                        m2.add_abs_deviation(k, t, 1.0);
                    }
                }
                let second = m2.solve();
                if matches!(second.status, Status::Optimal | Status::Feasible) {
                    second
                } else {
                    first
                }
            }
        };
        let tunings = (0..n)
            .filter_map(|ff| {
                kvars[ff].and_then(|k| {
                    let v = result_vals.int_value(k);
                    (v != 0).then_some((ff as u32, v))
                })
            })
            .collect();
        SampleResult {
            feasible: true,
            exact: true,
            tunings,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Kind {
    Setup,
    Hold,
}

#[derive(Debug, Clone, Copy)]
struct ConsRef {
    a: u32,
    b: u32,
    edge: u32,
    kind: Kind,
}

#[derive(Debug)]
struct Region {
    ffs: Vec<u32>,
    cons: Vec<ConsRef>,
    saturated: bool,
}

enum RegionOutcome {
    Feasible {
        tunings: Vec<(u32, i64)>,
        count: usize,
        exact: bool,
    },
    Infeasible,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decision {
    In,
    Out,
    Undecided,
}

/// Outcome of one region's support search.
enum SearchPhase {
    Infeasible,
    /// Greedy (inexact) support from witness sparsification.
    Fallback {
        support: Vec<u32>,
        witness: Vec<i64>,
    },
    /// Proven-best support from the branch and bound.
    Best {
        count: usize,
        support: Vec<u32>,
        witness: Vec<i64>,
        exact: bool,
    },
}

/// Drives one region's support search to a [`SearchPhase`].
fn run_support_search(search: &mut SupportSearch<'_>, m: usize, region_cap: usize) -> SearchPhase {
    let mut state = vec![Decision::Undecided; m];
    // Quick relaxation check with everything allowed.
    if !search.feasible_support(&state, true) {
        return SearchPhase::Infeasible;
    }
    let mut full_witness = Vec::new();
    search.solver.copy_witness(m, &mut full_witness);
    if m > region_cap {
        // Region too large for exact search: sparsify the full witness
        // greedily (drop small tunings while feasibility holds).
        let (support, witness) = search.sparsify(&full_witness);
        return SearchPhase::Fallback { support, witness };
    }
    search.recurse(&mut state);
    match search.best.take() {
        Some((count, support, witness)) => SearchPhase::Best {
            count,
            support,
            witness,
            exact: search.exact,
        },
        None if !search.exact => {
            // Node cap exhausted with no incumbent: fall back to the
            // sparsified relaxation witness.
            let (support, witness) = search.sparsify(&full_witness);
            SearchPhase::Fallback { support, witness }
        }
        None => SearchPhase::Infeasible,
    }
}

/// Branch-and-bound over support sets.
struct SupportSearch<'a> {
    solver: &'a mut DiffSolver,
    var_of: &'a [u32],
    region_ffs: &'a [u32],
    cons: &'a [RegCons],
    violated: &'a [usize],
    bounds: &'a [(i64, i64)],
    /// `(count, support ffs, witness values per support entry)`.
    best: Option<(usize, Vec<u32>, Vec<i64>)>,
    nodes: usize,
    node_cap: usize,
    exact: bool,
    /// Per-node scratch, borrowed from [`SampleSolver`] for the region's
    /// lifetime and reused by every feasibility probe.
    vars_scratch: Vec<u32>,
    slot_scratch: Vec<u32>,
    arcs_scratch: Vec<Arc>,
    bounds_scratch: Vec<(i64, i64)>,
}

impl SupportSearch<'_> {
    /// Returns the scratch buffers to their owner.
    #[allow(clippy::type_complexity)]
    fn into_scratch(self) -> (Vec<u32>, Vec<u32>, Vec<Arc>, Vec<(i64, i64)>) {
        (
            self.vars_scratch,
            self.slot_scratch,
            self.arcs_scratch,
            self.bounds_scratch,
        )
    }

    /// Greedy fallback for oversized regions: start from the all-variables
    /// witness and drop tunings (smallest magnitude first) while the system
    /// stays feasible.  Returns `(support, witness values)`.
    fn sparsify(&mut self, full_witness: &[i64]) -> (Vec<u32>, Vec<i64>) {
        let m = self.region_ffs.len();
        let mut state: Vec<Decision> = (0..m)
            .map(|i| {
                if full_witness[i] != 0 {
                    Decision::In
                } else {
                    Decision::Out
                }
            })
            .collect();
        // Candidates ordered by |value| ascending: cheap drops first.
        let mut order: Vec<usize> = (0..m).filter(|&i| full_witness[i] != 0).collect();
        order.sort_by_key(|&i| full_witness[i].abs());
        for &i in &order {
            state[i] = Decision::Out;
            if !self.feasible_support(&state, false) {
                state[i] = Decision::In;
            }
        }
        let support: Vec<u32> = state
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == Decision::In)
            .map(|(i, _)| self.region_ffs[i])
            .collect();
        assert!(
            self.feasible_support(&state, false),
            "sparsify only removes while feasibility holds"
        );
        let mut witness = Vec::new();
        self.solver.copy_witness(support.len(), &mut witness);
        (support, witness)
    }

    /// Feasibility with support = In (or In ∪ Undecided when `relaxed`).
    ///
    /// Builds the subsystem in the reusable scratch buffers; the witness of
    /// a feasible check can be read back with `solver.copy_witness` (the
    /// variable order is the support order).
    fn feasible_support(&mut self, state: &[Decision], relaxed: bool) -> bool {
        self.vars_scratch.clear();
        self.slot_scratch.clear();
        self.slot_scratch.resize(state.len(), NONE);
        for (i, d) in state.iter().enumerate() {
            let included = match d {
                Decision::In => true,
                Decision::Undecided => relaxed,
                Decision::Out => false,
            };
            if included {
                self.slot_scratch[i] = self.vars_scratch.len() as u32;
                self.vars_scratch.push(self.region_ffs[i]);
            }
        }
        let root = self.vars_scratch.len() as u32;
        self.arcs_scratch.clear();
        for c in self.cons {
            let la = self.local_of(c.a);
            let lb = self.local_of(c.b);
            let slot = &self.slot_scratch;
            let va = la.map_or(root, |l| if slot[l] != NONE { slot[l] } else { root });
            let vb = lb.map_or(root, |l| if slot[l] != NONE { slot[l] } else { root });
            if va == root && vb == root {
                if c.bound < 0 {
                    return false;
                }
                continue;
            }
            // k(a) − k(b) ≤ bound  →  arc b → a with weight bound.
            self.arcs_scratch.push(Arc::new(vb, va, c.bound));
        }
        self.bounds_scratch.clear();
        self.bounds_scratch
            .extend(self.vars_scratch.iter().map(|&ff| self.bounds[ff as usize]));
        self.solver.decide_bounded(
            self.vars_scratch.len(),
            &self.arcs_scratch,
            &self.bounds_scratch,
        )
    }

    #[inline]
    fn local_of(&self, ff: u32) -> Option<usize> {
        let v = self.var_of[ff as usize];
        (v != NONE).then_some(v as usize)
    }

    fn in_count(state: &[Decision]) -> usize {
        state.iter().filter(|d| **d == Decision::In).count()
    }

    /// Matching-based lower bound: violated constraints not covered by In
    /// whose endpoints are still undecided each need one more buffer, and
    /// vertex-disjoint ones need distinct buffers.
    fn matching_lb(&self, state: &[Decision]) -> usize {
        let mut used = vec![false; state.len()];
        let mut lb = 0usize;
        for &v in self.violated {
            let c = &self.cons[v];
            let la = self.local_of(c.a);
            let lb_ = self.local_of(c.b);
            let covered = [la, lb_]
                .iter()
                .any(|l| l.is_some_and(|i| state[i] == Decision::In));
            if covered {
                continue;
            }
            // Usable endpoints: undecided, unused so far.
            let mut usable: Vec<usize> = Vec::new();
            for l in [la, lb_].into_iter().flatten() {
                if state[l] == Decision::Undecided && !used[l] {
                    usable.push(l);
                }
            }
            if usable.is_empty() {
                continue; // handled by feasibility pruning
            }
            // Claim both endpoints so the next edge must be disjoint.
            for l in [la, lb_].into_iter().flatten() {
                used[l] = true;
            }
            lb += 1;
        }
        lb
    }

    fn recurse(&mut self, state: &mut Vec<Decision>) {
        self.nodes += 1;
        if self.nodes > self.node_cap {
            self.exact = false;
            return;
        }
        let in_count = Self::in_count(state);
        if let Some((best, _, _)) = &self.best {
            if in_count >= *best {
                return;
            }
            if in_count + self.matching_lb(state) >= *best {
                return;
            }
        }
        // Relaxation: can anything still work?
        if !self.feasible_support(state, true) {
            return;
        }
        // Is In alone already enough?
        if self.feasible_support(state, false) {
            let support: Vec<u32> = state
                .iter()
                .enumerate()
                .filter(|(_, d)| **d == Decision::In)
                .map(|(i, _)| self.region_ffs[i])
                .collect();
            let better = self
                .best
                .as_ref()
                .is_none_or(|(c, _, _)| support.len() < *c);
            if better {
                // Witness values of support vars, in support order.
                let mut values = Vec::new();
                self.solver.copy_witness(support.len(), &mut values);
                self.best = Some((support.len(), support, values));
            }
            return;
        }
        // Branch: pick an undecided endpoint of an uncovered violated
        // constraint; fall back to any undecided vertex.
        let pick = self.pick_branch_var(state);
        let Some(v) = pick else {
            return; // everything decided yet infeasible with In
        };
        state[v] = Decision::In;
        self.recurse(state);
        state[v] = Decision::Out;
        self.recurse(state);
        state[v] = Decision::Undecided;
    }

    fn pick_branch_var(&self, state: &[Decision]) -> Option<usize> {
        // Count appearances of undecided vars in uncovered violated
        // constraints; pick the most frequent.
        let mut score = vec![0usize; state.len()];
        for &v in self.violated {
            let c = &self.cons[v];
            let la = self.local_of(c.a);
            let lb = self.local_of(c.b);
            let covered = [la, lb]
                .iter()
                .any(|l| l.is_some_and(|i| state[i] == Decision::In));
            if covered {
                continue;
            }
            for l in [la, lb].into_iter().flatten() {
                if state[l] == Decision::Undecided {
                    score[l] += 1;
                }
            }
        }
        let best = score
            .iter()
            .enumerate()
            .filter(|(i, s)| **s > 0 && state[*i] == Decision::Undecided)
            .max_by_key(|(_, s)| **s)
            .map(|(i, _)| i);
        best.or_else(|| state.iter().position(|d| *d == Decision::Undecided))
    }
}

#[cfg(test)]
mod tests;
