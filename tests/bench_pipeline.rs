//! Cross-crate pipeline tests: `.bench` netlists and `.plib` libraries all
//! the way through the insertion flow.

use psbi::core::flow::{BufferInsertionFlow, FlowConfig, TargetPeriod};
use psbi::liberty::{parse as parse_plib, to_text, Library};
use psbi::netlist::bench_format::{parse_bench, to_bench, EXAMPLE_BENCH};
use psbi::variation::VariationModel;

fn tiny_cfg() -> FlowConfig {
    FlowConfig {
        samples: 80,
        yield_samples: 200,
        calibration_samples: 200,
        seed: 3,
        threads: 1,
        target: TargetPeriod::SigmaFactor(0.0),
        ..FlowConfig::default()
    }
}

#[test]
fn bench_netlist_through_flow() {
    let circuit = parse_bench(EXAMPLE_BENCH).expect("parses");
    let flow = BufferInsertionFlow::builder(&circuit, tiny_cfg())
        .build()
        .expect("valid");
    let r = flow.run();
    assert_eq!(r.n_ffs, 3);
    assert!(r.mu_t > 0.0);
    assert!(r.yield_with_buffers >= r.yield_baseline - 1e-9);
}

#[test]
fn bench_round_trip_preserves_flow_results() {
    let lib = Library::industry_like();
    let c1 = parse_bench(EXAMPLE_BENCH).unwrap();
    let text = to_bench(&c1, &lib);
    let c2 = parse_bench(&text).unwrap();
    let r1 = BufferInsertionFlow::builder(&c1, tiny_cfg())
        .build()
        .unwrap()
        .run();
    let r2 = BufferInsertionFlow::builder(&c2, tiny_cfg())
        .build()
        .unwrap()
        .run();
    // Same structure and same seeds → identical calibration.
    assert_eq!(r1.mu_t, r2.mu_t);
    assert_eq!(r1.nb, r2.nb);
}

#[test]
fn plib_library_through_flow() {
    let text = to_text(&Library::industry_like());
    let lib = parse_plib(&text).expect("parses");
    let circuit = psbi::netlist::bench_suite::tiny_demo(2);
    let flow = BufferInsertionFlow::builder(&circuit, tiny_cfg())
        .library(lib)
        .model(VariationModel::paper_defaults())
        .build()
        .expect("valid");
    let r = flow.run();
    assert!(r.mu_t > 0.0);
}

#[test]
fn slower_library_means_longer_period() {
    let mut slow = Library::new("slow");
    slow.wire_cap_per_fanout = Library::industry_like().wire_cap_per_fanout;
    for c in Library::industry_like().cells() {
        let mut c = c.clone();
        c.intrinsic *= 2.0;
        c.drive *= 2.0;
        slow.add_cell(c).unwrap();
    }
    for ff in Library::industry_like().ffs() {
        slow.add_ff(ff.clone()).unwrap();
    }
    let circuit = psbi::netlist::bench_suite::tiny_demo(3);
    let fast_flow = BufferInsertionFlow::builder(&circuit, tiny_cfg())
        .build()
        .unwrap();
    let slow_flow = BufferInsertionFlow::builder(&circuit, tiny_cfg())
        .library(slow)
        .model(VariationModel::paper_defaults())
        .build()
        .unwrap();
    let rf = fast_flow.run();
    let rs = slow_flow.run();
    assert!(
        rs.mu_t > rf.mu_t * 1.5,
        "doubled delays should raise muT: {} vs {}",
        rs.mu_t,
        rf.mu_t
    );
}

#[test]
fn no_variation_means_deterministic_chips() {
    // With zero variation every chip is identical: yield is 0 or 100.
    let circuit = psbi::netlist::bench_suite::tiny_demo(4);
    let mut cfg = tiny_cfg();
    cfg.target = TargetPeriod::SigmaFactor(0.0);
    let flow = BufferInsertionFlow::builder(&circuit, cfg)
        .library(Library::industry_like())
        .model(VariationModel::none())
        .build()
        .unwrap();
    let r = flow.run();
    assert!(r.sigma_t.abs() < 1e-9);
    assert!(
        r.yield_baseline == 0.0 || r.yield_baseline == 100.0,
        "deterministic chips: {}",
        r.yield_baseline
    );
}
