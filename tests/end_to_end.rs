//! Cross-crate integration: the full insertion flow, its determinism, and
//! the consistency between yield evaluation and post-silicon configuration.

use psbi::core::configure::{configure_chip, verify};
use psbi::core::flow::{BufferInsertionFlow, FlowConfig, SampleRequest, TargetPeriod};
use psbi::netlist::bench_suite;
use psbi::timing::DiffSolver;

fn cfg(samples: usize) -> FlowConfig {
    FlowConfig {
        samples,
        yield_samples: 400,
        calibration_samples: 400,
        seed: 11,
        threads: 2,
        target: TargetPeriod::SigmaFactor(0.0),
        ..FlowConfig::default()
    }
}

#[test]
fn flow_improves_yield_on_small_demo() {
    let circuit = bench_suite::small_demo(3);
    let flow = BufferInsertionFlow::builder(&circuit, cfg(250))
        .build()
        .unwrap();
    let r = flow.run();
    assert!(r.nb >= 1, "expected at least one buffer at muT");
    assert!(
        r.improvement > 2.0,
        "expected a real improvement, got {} (Y {} from {})",
        r.improvement,
        r.yield_with_buffers,
        r.yield_baseline
    );
    // Windows are within the floating bound and non-degenerate.
    for g in &r.groups {
        assert!(g.lo >= -20 && g.hi <= 20 && g.lo <= g.hi);
    }
    // Ab is measured in steps and bounded by the maximum range.
    assert!(r.ab >= 0.0 && r.ab <= 40.0);
}

#[test]
fn results_are_reproducible() {
    let circuit = bench_suite::small_demo(4);
    let a = BufferInsertionFlow::builder(&circuit, cfg(150))
        .build()
        .unwrap()
        .run();
    let b = BufferInsertionFlow::builder(&circuit, cfg(150))
        .build()
        .unwrap()
        .run();
    assert_eq!(a.groups, b.groups);
    assert_eq!(a.yield_with_buffers, b.yield_with_buffers);
    assert_eq!(a.mu_t, b.mu_t);
}

#[test]
fn yield_eval_and_configuration_agree() {
    // Every chip the yield evaluator accepts must be configurable, and the
    // produced settings must verify; every rejected chip must not be.
    let circuit = bench_suite::small_demo(5);
    let flow = BufferInsertionFlow::builder(&circuit, cfg(200))
        .build()
        .unwrap();
    let r = flow.run();
    let sg = flow.sequential_graph();
    let mut solver = DiffSolver::new();
    let mut arcs = Vec::new();
    let mut passes = 0;
    for chip in 0..120u64 {
        let ic = flow.chip_constraints(SampleRequest::new("yield", chip, r.period, r.step));
        let evaluator_says = r.deployment.chip_passes(sg, &ic, &mut solver, &mut arcs);
        let config = configure_chip(sg, &ic, &r.deployment);
        assert_eq!(
            evaluator_says,
            config.is_some(),
            "evaluator and configurator disagree on chip {chip}"
        );
        if let Some(c) = config {
            assert!(verify(sg, &ic, &r.deployment, &c.settings), "chip {chip}");
            passes += 1;
        }
    }
    assert!(passes > 0, "some chips must pass");
}

#[test]
fn tighter_period_needs_more_buffers() {
    let circuit = bench_suite::small_demo(6);
    let mut tight = cfg(200);
    tight.target = TargetPeriod::SigmaFactor(0.0);
    let mut loose = cfg(200);
    loose.target = TargetPeriod::SigmaFactor(2.0);
    let rt = BufferInsertionFlow::builder(&circuit, tight)
        .build()
        .unwrap()
        .run();
    let rl = BufferInsertionFlow::builder(&circuit, loose)
        .build()
        .unwrap()
        .run();
    assert!(
        rt.nb >= rl.nb,
        "tight target should need at least as many buffers ({} vs {})",
        rt.nb,
        rl.nb
    );
    assert!(rl.yield_baseline > rt.yield_baseline);
}
