//! Synthetic sequential-benchmark generator.
//!
//! The paper evaluates on ISCAS89 and TAU-2013 circuits mapped to a
//! proprietary industry library; neither the mapped netlists nor the library
//! are available.  This generator is the documented substitution
//! (`DESIGN.md` §2): it produces circuits with a *prescribed number of
//! flip-flops and gates* and a realistic sequential structure —
//!
//! * locality: flip-flops belong to clusters and exchange data mostly with
//!   their own and neighbouring clusters (so physical placement correlates
//!   with logical adjacency, which the grouping step needs);
//! * fan-in trees followed by gate chains of varying depth (so stage delays
//!   differ and some FF pairs are near-critical);
//! * reconvergence: cones tap signals of earlier cones, sharing sub-paths
//!   (so path delays of different FF pairs are correlated);
//! * a configurable fraction of intentionally deep cones (the critical-path
//!   tail the insertion flow feeds on).
//!
//! Generation is fully deterministic for a given profile and seed.

use crate::graph::{Circuit, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Tunable shape of a generated benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorProfile {
    /// Circuit name.
    pub name: String,
    /// Number of flip-flops (`ns`).
    pub n_ffs: usize,
    /// Number of combinational gates (`ng`), matched exactly.
    pub n_gates: usize,
    /// Number of primary inputs.
    pub n_inputs: usize,
    /// Number of primary outputs (must be ≥ 1 so gate padding has a home).
    pub n_outputs: usize,
    /// Flip-flops per locality cluster.
    pub cluster_size: usize,
    /// Probability that a sequential edge stays within the local
    /// neighbourhood (own and adjacent clusters).
    pub intra_cluster_prob: f64,
    /// Minimum number of source FFs feeding a cone.
    pub min_sources: usize,
    /// Maximum number of source FFs feeding a cone.
    pub max_sources: usize,
    /// Mean gate-chain depth appended after the fan-in tree.
    pub depth_mean: f64,
    /// Relative uniform spread of the chain depth (0.3 → ±30 %).
    pub depth_spread: f64,
    /// Fraction of cones that get an intentionally deeper chain.
    pub long_path_fraction: f64,
    /// Depth multiplier for those long cones.
    pub long_path_boost: f64,
    /// Probability that a chain step reconverges with an earlier signal.
    pub reconvergence_prob: f64,
    /// Probability that a cone taps one primary input as an extra leaf.
    pub pi_tap_prob: f64,
    /// Fraction of clusters containing a *critical loop*: a ring of
    /// registers whose stages are all deep.  A directed cycle's total slack
    /// is invariant under clock tuning (the shifts cancel around the
    /// cycle), so chips whose global corner makes a loop's summed slack
    /// negative are unfixable — the structural effect that caps the
    /// paper's yield improvement below 100 %.
    pub critical_loop_fraction: f64,
    /// Registers per critical loop.
    pub critical_loop_len: usize,
    /// Stage depth of loop stages relative to `depth_mean`.
    pub critical_loop_depth_scale: f64,
}

impl GeneratorProfile {
    /// A profile with sensible defaults for the given size, deriving the
    /// chain depth from the gate/FF ratio so the gate budget is spent on
    /// realistic cone shapes.
    pub fn sized(name: impl Into<String>, n_ffs: usize, n_gates: usize) -> Self {
        let ratio = n_gates as f64 / n_ffs.max(1) as f64;
        // Budget per cone ≈ ratio; a cone with s sources and chain c uses
        // (s - 1) + c gates, so aim the chain depth at ratio minus the tree.
        let depth_mean = (ratio - 1.2).max(1.0);
        Self {
            name: name.into(),
            n_ffs,
            n_gates,
            n_inputs: (n_ffs / 12).clamp(4, 128),
            n_outputs: (n_ffs / 16).clamp(4, 128),
            cluster_size: 12,
            intra_cluster_prob: 0.85,
            min_sources: 1,
            max_sources: 3,
            depth_mean,
            depth_spread: 0.45,
            long_path_fraction: 0.08,
            long_path_boost: 1.6,
            reconvergence_prob: 0.04,
            pi_tap_prob: 0.25,
            critical_loop_fraction: 0.25,
            critical_loop_len: 3,
            critical_loop_depth_scale: 1.35,
        }
    }

    /// Validates profile invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_ffs == 0 {
            return Err("n_ffs must be > 0".into());
        }
        if self.n_outputs == 0 {
            return Err("n_outputs must be > 0".into());
        }
        if self.n_inputs == 0 {
            return Err("n_inputs must be > 0".into());
        }
        if self.min_sources == 0 || self.min_sources > self.max_sources {
            return Err("need 1 <= min_sources <= max_sources".into());
        }
        if self.cluster_size == 0 {
            return Err("cluster_size must be > 0".into());
        }
        for (name, p) in [
            ("intra_cluster_prob", self.intra_cluster_prob),
            ("long_path_fraction", self.long_path_fraction),
            ("reconvergence_prob", self.reconvergence_prob),
            ("pi_tap_prob", self.pi_tap_prob),
            ("critical_loop_fraction", self.critical_loop_fraction),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0,1], got {p}"));
            }
        }
        if self.critical_loop_fraction > 0.0 && self.critical_loop_len < 2 {
            return Err("critical_loop_len must be >= 2".into());
        }
        Ok(())
    }

    /// Generates the circuit.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`GeneratorProfile::validate`].
    pub fn generate(&self, seed: u64) -> Circuit {
        self.validate().expect("invalid generator profile");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(self.name.clone());

        let pis: Vec<NodeId> = (0..self.n_inputs)
            .map(|i| c.add_input(format!("pi{i}")))
            .collect();
        let ffs: Vec<NodeId> = (0..self.n_ffs)
            .map(|i| c.add_ff(format!("ff{i}"), "DFF_X1"))
            .collect();

        let mut gate_budget = self.n_gates;
        let mut gate_count = 0usize;
        // Recent gate outputs available for reconvergent taps.
        let mut recent: Vec<NodeId> = Vec::new();
        const RECENT_CAP: usize = 256;

        // Critical-loop membership: ring_pred[j] = the FF whose output
        // feeds j's (deep) loop stage.
        let mut ring_pred: Vec<Option<usize>> = vec![None; self.n_ffs];
        if self.critical_loop_fraction > 0.0 {
            let n_clusters = self.n_ffs.div_ceil(self.cluster_size);
            for c in 0..n_clusters {
                if !rng.gen_bool(self.critical_loop_fraction) {
                    continue;
                }
                let start = c * self.cluster_size;
                let len = self.critical_loop_len.min(self.n_ffs - start);
                if len < 2 {
                    continue;
                }
                for i in 0..len {
                    ring_pred[start + i] = Some(start + (i + len - 1) % len);
                }
            }
        }

        for j in 0..self.n_ffs {
            let remaining_ffs = self.n_ffs - j;
            // Keep at least one gate of headroom per remaining cone when
            // possible so late cones are not starved.
            let fair_cap = (gate_budget / remaining_ffs).max(1) * 2 + 2;

            if let Some(pred) = ring_pred[j] {
                // Critical-loop stage: a pure deep chain from the ring
                // predecessor (no reconvergence, so the loop depth is
                // controlled and its slack sum is tuning-invariant).
                let jitter = 1.0 + rng.gen_range(-0.08..=0.08);
                let depth = (self.depth_mean * self.critical_loop_depth_scale * jitter)
                    .round()
                    .max(1.0) as usize;
                let chain = depth.min(gate_budget).min(fair_cap);
                let mut signal = ffs[pred];
                for _ in 0..chain {
                    // Two-input cells with a PI side input keep the loop's
                    // per-stage delay comparable to ordinary cone stages.
                    let cell = pick_two_input_cell(&mut rng);
                    let side = pis[rng.gen_range(0..pis.len())];
                    let g = c.add_gate(format!("g{gate_count}"), cell, &[signal, side]);
                    gate_count += 1;
                    gate_budget -= 1;
                    signal = g;
                }
                c.connect_ff_data(ffs[j], signal)
                    .expect("fresh flip-flop accepts data");
                continue;
            }

            let mut k = rng.gen_range(self.min_sources..=self.max_sources);
            // The fan-in tree needs k-1 gates; shrink if the budget is gone.
            while k > 1 && k - 1 > gate_budget {
                k -= 1;
            }
            let mut leaves: Vec<NodeId> =
                (0..k).map(|_| ffs[self.pick_source(j, &mut rng)]).collect();
            if rng.gen_bool(self.pi_tap_prob) && gate_budget > leaves.len() {
                leaves.push(pis[rng.gen_range(0..pis.len())]);
            }

            // Fan-in tree.  Tree outputs go into the reconvergence pool:
            // their transitive source sets are small (≤ the cone's own
            // sources), which keeps sequential fan-in bounded when other
            // cones tap them.
            let mut tree_gates = 0usize;
            while leaves.len() > 1 && gate_budget > 0 {
                let a = leaves.swap_remove(rng.gen_range(0..leaves.len()));
                let b = leaves.swap_remove(rng.gen_range(0..leaves.len()));
                let cell = pick_two_input_cell(&mut rng);
                let g = c.add_gate(format!("g{gate_count}"), cell, &[a, b]);
                gate_count += 1;
                gate_budget -= 1;
                tree_gates += 1;
                leaves.push(g);
                if recent.len() < RECENT_CAP {
                    recent.push(g);
                } else {
                    let at = rng.gen_range(0..RECENT_CAP);
                    recent[at] = g;
                }
            }
            let mut signal = leaves[0];

            // Chain of the sampled depth.
            let spread = 1.0 + rng.gen_range(-self.depth_spread..=self.depth_spread);
            let mut depth = (self.depth_mean * spread).round().max(0.0) as usize;
            if rng.gen_bool(self.long_path_fraction) {
                depth = ((depth as f64) * self.long_path_boost).round() as usize + 1;
            }
            let chain = depth
                .saturating_sub(tree_gates)
                .min(gate_budget)
                .min(fair_cap);
            for _ in 0..chain {
                let g = if rng.gen_bool(self.reconvergence_prob) && !recent.is_empty() {
                    let partner = recent[rng.gen_range(0..recent.len())];
                    let cell = pick_two_input_cell(&mut rng);
                    c.add_gate(format!("g{gate_count}"), cell, &[signal, partner])
                } else {
                    let cell = pick_one_input_cell(&mut rng);
                    c.add_gate(format!("g{gate_count}"), cell, &[signal])
                };
                gate_count += 1;
                gate_budget -= 1;
                signal = g;
            }
            c.connect_ff_data(ffs[j], signal)
                .expect("fresh flip-flop accepts data");
        }

        // Primary outputs absorb the remaining gate budget exactly: each
        // output is a chain of inverters/buffers hanging off some signal.
        let mut po_chains = vec![0usize; self.n_outputs];
        let mut left = gate_budget;
        while left > 0 {
            let at = rng.gen_range(0..self.n_outputs);
            po_chains[at] += 1;
            left -= 1;
        }
        for (o, chain) in po_chains.iter().enumerate() {
            let mut signal = ffs[rng.gen_range(0..self.n_ffs)];
            for _ in 0..*chain {
                let cell = pick_one_input_cell(&mut rng);
                let g = c.add_gate(format!("g{gate_count}"), cell, &[signal]);
                gate_count += 1;
                signal = g;
            }
            c.add_output(format!("po{o}"), signal);
        }

        debug_assert_eq!(c.num_gates(), self.n_gates);
        debug_assert_eq!(c.num_ffs(), self.n_ffs);
        c
    }

    /// Picks a source FF for the cone of sink `j`, respecting locality.
    fn pick_source(&self, j: usize, rng: &mut StdRng) -> usize {
        if self.n_ffs == 1 {
            return 0;
        }
        if rng.gen_bool(self.intra_cluster_prob) {
            let cluster = j / self.cluster_size;
            // Own cluster plus the previous and next ones.
            let lo = cluster.saturating_sub(1) * self.cluster_size;
            let hi = ((cluster + 2) * self.cluster_size).min(self.n_ffs);
            rng.gen_range(lo..hi)
        } else {
            rng.gen_range(0..self.n_ffs)
        }
    }
}

fn pick_two_input_cell(rng: &mut StdRng) -> &'static str {
    // Weighted mix typical of mapped control/datapath logic.
    const CELLS: [(&str, u32); 6] = [
        ("NAND2_X1", 30),
        ("NOR2_X1", 20),
        ("AND2_X1", 15),
        ("OR2_X1", 15),
        ("XOR2_X1", 10),
        ("XNOR2_X1", 10),
    ];
    weighted(rng, &CELLS)
}

fn pick_one_input_cell(rng: &mut StdRng) -> &'static str {
    const CELLS: [(&str, u32); 3] = [("INV_X1", 55), ("BUF_X1", 30), ("INV_X2", 15)];
    weighted(rng, &CELLS)
}

fn weighted(rng: &mut StdRng, cells: &[(&'static str, u32)]) -> &'static str {
    let total: u32 = cells.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen_range(0..total);
    for (cell, w) in cells {
        if pick < *w {
            return cell;
        }
        pick -= w;
    }
    cells[cells.len() - 1].0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts() {
        let p = GeneratorProfile::sized("t", 50, 600);
        let c = p.generate(1);
        assert_eq!(c.num_ffs(), 50);
        assert_eq!(c.num_gates(), 600);
        assert_eq!(c.num_inputs(), p.n_inputs);
        assert_eq!(c.num_outputs(), p.n_outputs);
        assert!(c.check().is_ok());
    }

    #[test]
    fn deterministic_per_seed() {
        let p = GeneratorProfile::sized("t", 30, 200);
        let a = p.generate(7);
        let b = p.generate(7);
        assert_eq!(a.num_gates(), b.num_gates());
        for id in a.node_ids() {
            assert_eq!(a.node(id), b.node(id));
            assert_eq!(a.fanins(id), b.fanins(id));
        }
        let c = p.generate(8);
        // Different seed ⇒ different wiring somewhere.
        let differs = a
            .node_ids()
            .any(|id| a.fanins(id) != c.fanins(id) || a.node(id) != c.node(id));
        assert!(differs);
    }

    #[test]
    fn validates_against_library() {
        let lib = psbi_liberty::Library::industry_like();
        let c = GeneratorProfile::sized("t", 40, 300).generate(3);
        assert!(c.validate_against(&lib).is_ok());
    }

    #[test]
    fn tight_gate_budget_still_exact() {
        // Fewer gates than FFs: most cones collapse to direct connections.
        let p = GeneratorProfile::sized("t", 60, 30);
        let c = p.generate(5);
        assert_eq!(c.num_gates(), 30);
        assert_eq!(c.num_ffs(), 60);
        assert!(c.check().is_ok());
    }

    #[test]
    fn profile_validation_errors() {
        let mut p = GeneratorProfile::sized("t", 10, 50);
        p.min_sources = 0;
        assert!(p.validate().is_err());
        let mut p = GeneratorProfile::sized("t", 10, 50);
        p.intra_cluster_prob = 1.5;
        assert!(p.validate().is_err());
        let mut p = GeneratorProfile::sized("t", 10, 50);
        p.n_outputs = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn every_ff_is_driven() {
        let c = GeneratorProfile::sized("t", 80, 500).generate(11);
        for &ff in c.ff_ids() {
            assert_eq!(c.fanins(ff).len(), 1, "{}", c.node(ff).name);
        }
    }

    #[test]
    fn locality_holds_statistically() {
        let p = GeneratorProfile::sized("t", 120, 400);
        let c = p.generate(13);
        // Count FF->FF tree edges that stay within +-2 clusters by looking
        // at direct fanins of each cone through gates (approximation: check
        // the D-driver tree sources via BFS limited to gates).
        let mut local = 0usize;
        let mut total = 0usize;
        for (j, &ff) in c.ff_ids().iter().enumerate() {
            let mut stack = vec![c.fanins(ff)[0]];
            let mut seen = std::collections::HashSet::new();
            while let Some(n) = stack.pop() {
                if !seen.insert(n) {
                    continue;
                }
                if c.node(n).kind.is_ff() {
                    let i = c.ff_index(n).unwrap();
                    total += 1;
                    let cj = j / p.cluster_size;
                    let ci = i / p.cluster_size;
                    if ci.abs_diff(cj) <= 2 {
                        local += 1;
                    }
                } else if c.node(n).kind.is_gate() {
                    stack.extend(c.fanins(n).iter().copied());
                }
            }
        }
        assert!(total > 0);
        let frac = local as f64 / total as f64;
        assert!(frac > 0.6, "locality fraction {frac}");
    }
}
