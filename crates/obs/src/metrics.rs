//! Process-wide metrics registry: counters, gauges, log-bucketed
//! histograms.
//!
//! Every instrument is addressed by a `&'static str` name at the call
//! site — there is no handle object to thread through APIs, which is what
//! lets deep layers (the solver's stage timers, the sampler's batch
//! counters) record without any plumbing changes.  All recording
//! functions are **disarmed no-ops** behind a single relaxed atomic load;
//! the registry arms in one of two ways:
//!
//! * `PSBI_METRICS=<path>` in the environment (read once) — [`flush`]
//!   writes the JSON snapshot to `<path>` and the Prometheus text
//!   exposition to `<path>.prom`;
//! * programmatically via [`arm`] (with or without an output path — the
//!   fleet runner arms a path-less registry to drive `--progress`, and
//!   `perf_json` reads [`snapshot`] in-process).
//!
//! # Instruments
//!
//! * **Counter** — monotone `u64`, [`counter_add`].  Counts on
//!   deterministic code paths (batches filled, chunks mapped, jobs
//!   committed) are reproducible across worker counts; counts on racy
//!   paths (memo hit/miss, workspace creation) are not, and are named in
//!   the README so tests know to exclude them.
//! * **Gauge** — last-write-wins `u64`, [`gauge_set`].
//! * **Histogram** — count, sum and power-of-two buckets, [`observe`] /
//!   [`Timer`].  Used for wall-clock nanoseconds (solver stages, flow
//!   passes, job walls); values are non-canonical like wall times
//!   everywhere else in the repo.
//!
//! Wall-clock histograms come from [`timer`]: the returned RAII guard
//! reads the clock only when the registry is armed, so a disarmed timer
//! site does not even pay an `Instant::now()` — cheaper than the
//! unconditional `StageTimes` plumbing it replaced.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, PoisonError};
use std::time::Instant;

/// Number of power-of-two histogram buckets: bucket 0 holds zero values,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`; the last bucket also
/// absorbs everything above `2^(BUCKETS-1)` (≈ 9 minutes in nanoseconds).
pub const BUCKETS: usize = 40;

/// Fast-path gate: `true` iff the registry is armed.
static ARMED: AtomicBool = AtomicBool::new(false);
/// One-shot `PSBI_METRICS` environment read.
static ENV_INIT: Once = Once::new();
/// The registry and its flush destination (slow path only).
static REGISTRY: Mutex<Registry> = Mutex::new(Registry::new());

struct Hist {
    count: u64,
    sum: u64,
    buckets: [u64; BUCKETS],
}

struct Registry {
    out_path: Option<PathBuf>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Hist>,
}

impl Registry {
    const fn new() -> Self {
        Self {
            out_path: None,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.hists.clear();
    }
}

fn registry() -> std::sync::MutexGuard<'static, Registry> {
    // Every update completes under the lock (no multi-step invariants
    // spanning unlocks), so a poisoned registry is consistent — recover.
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether the registry is armed.  This is the recording fast path: one
/// relaxed atomic load once the environment has been read.
pub fn enabled() -> bool {
    ENV_INIT.call_once(|| {
        if let Ok(path) = std::env::var("PSBI_METRICS") {
            if !path.trim().is_empty() {
                arm(Some(PathBuf::from(path.trim())));
            }
        }
    });
    ARMED.load(Ordering::Relaxed)
}

/// Arms the registry, clearing all previously recorded values.  With
/// `Some(path)`, [`flush`] writes the snapshot there; with `None` the
/// registry records for in-process readers ([`snapshot`],
/// [`counter_value`]) only.
pub fn arm(path: Option<PathBuf>) {
    let mut reg = registry();
    reg.clear();
    reg.out_path = path;
    drop(reg);
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms the registry and drops every recorded value (recording sites
/// return to the one-load fast path).
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
    let mut reg = registry();
    reg.out_path = None;
    reg.clear();
}

/// Adds `delta` to counter `name` (no-op while disarmed).
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    *registry().counters.entry(name).or_insert(0) += delta;
}

/// Sets gauge `name` to `value` (no-op while disarmed).
#[inline]
pub fn gauge_set(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    registry().gauges.insert(name, value);
}

fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (BUCKETS - 1).min(64 - value.leading_zeros() as usize)
    }
}

/// Records `value` into histogram `name` (no-op while disarmed).
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    let mut reg = registry();
    let hist = reg.hists.entry(name).or_insert(Hist {
        count: 0,
        sum: 0,
        buckets: [0; BUCKETS],
    });
    hist.count += 1;
    hist.sum = hist.sum.saturating_add(value);
    hist.buckets[bucket_of(value)] += 1;
}

/// Reads counter `name` (0 when absent or disarmed).  In-process consumer
/// API — the fleet `--progress` reporter polls job counters through this.
pub fn counter_value(name: &str) -> u64 {
    registry().counters.get(name).copied().unwrap_or(0)
}

/// An RAII wall-clock timer: created armed, it records the elapsed
/// nanoseconds into histogram `name` on drop.  Created disarmed, it is a
/// complete no-op — the clock is never read.
#[must_use = "a timer measures nothing unless it is held for the region's duration"]
pub struct Timer {
    armed: Option<(&'static str, Instant)>,
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some((name, start)) = self.armed {
            observe(
                name,
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
    }
}

/// Starts a [`Timer`] for histogram `name`.
#[inline]
pub fn timer(name: &'static str) -> Timer {
    Timer {
        armed: enabled().then(|| (name, Instant::now())),
    }
}

/// One histogram in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Instrument name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (nanoseconds for the `*.ns`-semantic
    /// timers), saturating.
    pub sum: u64,
    /// Non-empty `(bucket_index, count)` pairs; bucket `i ≥ 1` covers
    /// `[2^(i-1), 2^i)`, bucket 0 covers exactly 0.
    pub buckets: Vec<(usize, u64)>,
}

/// A point-in-time copy of the registry, in deterministic (sorted-name)
/// order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, name-sorted.
    pub gauges: Vec<(String, u64)>,
    /// Histograms, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Looks up a counter value.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge value.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The snapshot as a JSON object (counters and gauges as name→value
    /// maps, histograms as `{count, sum, buckets: [[index, count], ...]}`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let comma = if i == 0 { "" } else { "," };
            let _ = write!(out, "{comma}\n    \"{name}\": {v}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let comma = if i == 0 { "" } else { "," };
            let _ = write!(out, "{comma}\n    \"{name}\": {v}");
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            let comma = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{comma}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                h.name, h.count, h.sum
            );
            for (j, (idx, c)) in h.buckets.iter().enumerate() {
                let comma = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{comma}[{idx}, {c}]");
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// The snapshot in Prometheus text exposition format (names have `.`
    /// mapped to `_` and a `psbi_` prefix; histogram buckets are
    /// cumulative with power-of-two `le` bounds).
    pub fn to_prometheus(&self) -> String {
        let prom = |name: &str| format!("psbi_{}", name.replace('.', "_"));
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom(name);
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom(name);
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {v}");
        }
        for h in &self.histograms {
            let n = prom(&h.name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for (idx, c) in &h.buckets {
                cumulative += c;
                // Bucket `idx` covers values < 2^idx (idx 0 covers 0).
                let le = if *idx == 0 { 1 } else { 1u64 << idx };
                let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}\n{n}_count {}", h.sum, h.count);
        }
        out
    }
}

/// Copies the current registry contents (empty while disarmed).
pub fn snapshot() -> Snapshot {
    let reg = registry();
    Snapshot {
        counters: reg
            .counters
            .iter()
            .map(|(n, v)| (n.to_string(), *v))
            .collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(n, v)| (n.to_string(), *v))
            .collect(),
        histograms: reg
            .hists
            .iter()
            .map(|(n, h)| HistogramSnapshot {
                name: n.to_string(),
                count: h.count,
                sum: h.sum,
                buckets: h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| **c > 0)
                    .map(|(i, c)| (i, *c))
                    .collect(),
            })
            .collect(),
    }
}

/// Writes the current snapshot to the armed path (JSON) and to
/// `<path>.prom` (Prometheus text), returning the JSON path — or
/// `Ok(None)` when the registry was armed without a path (or never).
/// The registry is retained, so later flushes rewrite a superset.
///
/// # Errors
///
/// Propagates the underlying file write error.
pub fn flush() -> std::io::Result<Option<PathBuf>> {
    let Some(path) = registry().out_path.clone() else {
        return Ok(None);
    };
    let snap = snapshot();
    std::fs::write(&path, snap.to_json())?;
    let mut prom_path = path.clone().into_os_string();
    prom_path.push(".prom");
    std::fs::write(&prom_path, snap.to_prometheus())?;
    Ok(Some(path))
}

/// Runs `f` with the registry armed (flushing to `path` when given),
/// disarming afterwards (also on panic — the disarm, not the flush),
/// serialised against every other observability test helper through the
/// crate-wide gate.  Test helper, analogous to [`crate::trace::with_trace`].
///
/// # Panics
///
/// Panics if the final flush fails.
pub fn with_metrics<R>(path: Option<&Path>, f: impl FnOnce() -> R) -> R {
    let _gate = crate::test_gate();
    struct DisarmOnDrop;
    impl Drop for DisarmOnDrop {
        fn drop(&mut self) {
            disarm();
        }
    }
    let _disarm = DisarmOnDrop;
    arm(path.map(Path::to_path_buf));
    let result = f();
    flush().expect("metrics flush failed");
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn counters_gauges_histograms_round_trip() {
        with_metrics(None, || {
            counter_add("test.counter", 2);
            counter_add("test.counter", 3);
            gauge_set("test.gauge", 7);
            gauge_set("test.gauge", 9);
            observe("test.hist", 0);
            observe("test.hist", 5);
            observe("test.hist", 1_000_000);
            let snap = snapshot();
            assert_eq!(snap.counter("test.counter"), Some(5));
            assert_eq!(counter_value("test.counter"), 5);
            assert_eq!(snap.gauge("test.gauge"), Some(9));
            let h = snap.histogram("test.hist").unwrap();
            assert_eq!(h.count, 3);
            assert_eq!(h.sum, 1_000_005);
            assert_eq!(h.buckets.len(), 3);
        });
    }

    #[test]
    fn disarmed_recording_is_dropped_and_timer_reads_no_clock() {
        // Outside the gate another test may be armed; only assert the
        // no-op shape of a disarmed-constructed timer.
        let t = Timer { armed: None };
        drop(t);
    }

    #[test]
    fn json_and_prometheus_exposition_render() {
        with_metrics(None, || {
            counter_add("exp.jobs", 4);
            gauge_set("exp.workers", 2);
            observe("exp.wall", 3);
            observe("exp.wall", 300);
            let snap = snapshot();
            let json = snap.to_json();
            assert!(json.contains("\"exp.jobs\": 4"));
            assert!(json.contains("\"exp.workers\": 2"));
            assert!(json.contains("\"count\": 2"));
            let prom = snap.to_prometheus();
            assert!(prom.contains("# TYPE psbi_exp_jobs counter"));
            assert!(prom.contains("psbi_exp_jobs 4"));
            assert!(prom.contains("# TYPE psbi_exp_wall histogram"));
            assert!(prom.contains("psbi_exp_wall_bucket{le=\"+Inf\"} 2"));
            assert!(prom.contains("psbi_exp_wall_sum 303"));
        });
    }

    #[test]
    fn flush_writes_json_and_prom_files() {
        let path =
            std::env::temp_dir().join(format!("psbi_obs_metrics_{}.json", std::process::id()));
        with_metrics(Some(&path), || {
            counter_add("file.counter", 1);
            drop(timer("file.timer"));
        });
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"file.counter\": 1"));
        assert!(json.contains("\"file.timer\""));
        let prom = std::fs::read_to_string(format!("{}.prom", path.display())).unwrap();
        assert!(prom.contains("psbi_file_counter 1"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(format!("{}.prom", path.display()));
    }

    #[test]
    fn rearming_clears_previous_values() {
        with_metrics(None, || {
            counter_add("stale.counter", 1);
        });
        with_metrics(None, || {
            counter_add("fresh.counter", 1);
            let snap = snapshot();
            assert_eq!(snap.counter("stale.counter"), None);
            assert_eq!(snap.counter("fresh.counter"), Some(1));
        });
    }
}
