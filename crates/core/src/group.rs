//! Buffer grouping (paper §III-C, Fig. 6).
//!
//! Buffers whose tuning values are highly correlated across samples
//! (Pearson r ≥ 0.8) *and* whose flip-flops are physically close
//! (Manhattan distance ≤ 10 × the minimum FF spacing) share one physical
//! buffer.  Groups are formed greedily by descending correlation with a
//! complete-linkage check, so every pair inside a group satisfies both
//! thresholds.  A designer-imposed cap then removes the groups with the
//! fewest tunings.

use psbi_netlist::Placement;
use psbi_variation::pearson;
use serde::{Deserialize, Serialize};

/// Grouping thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupConfig {
    /// Minimum pairwise correlation (`r_t`, paper: 0.8).
    pub correlation_threshold: f64,
    /// Distance threshold as a multiple of the minimum FF spacing (`d_t`,
    /// paper: 10×).
    pub distance_factor: f64,
    /// Optional cap on the number of physical buffers.
    pub max_buffers: Option<usize>,
}

impl Default for GroupConfig {
    fn default() -> Self {
        Self {
            correlation_threshold: 0.8,
            distance_factor: 10.0,
            max_buffers: None,
        }
    }
}

/// One physical buffer serving one or more flip-flops.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Group {
    /// Member flip-flops (dense FF indices).
    pub members: Vec<usize>,
    /// Combined window lower bound (steps).
    pub lo: i64,
    /// Combined window upper bound (steps).
    pub hi: i64,
    /// Total tunings across members (for the cap heuristic).
    pub usage: u64,
}

impl Group {
    /// Window width in steps.
    pub fn range(&self) -> i64 {
        self.hi - self.lo
    }
}

/// Result of grouping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grouping {
    /// Physical buffers after grouping (and capping).
    pub groups: Vec<Group>,
    /// Buffers dropped by the cap (their FFs lose their buffer).
    pub dropped: Vec<usize>,
    /// Number of pairs that passed the correlation threshold.
    pub correlated_pairs: usize,
    /// Number of those that also passed the distance threshold.
    pub merged_pairs: usize,
}

impl Grouping {
    /// Average window width over groups (the paper's `Ab`).
    pub fn average_range(&self) -> f64 {
        if self.groups.is_empty() {
            return 0.0;
        }
        self.groups.iter().map(|g| g.range() as f64).sum::<f64>() / self.groups.len() as f64
    }

    /// Group index serving FF `ff`, if any.
    pub fn group_of(&self, ff: usize) -> Option<usize> {
        self.groups.iter().position(|g| g.members.contains(&ff))
    }
}

/// A buffer candidate entering grouping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferCandidate {
    /// Flip-flop index.
    pub ff: usize,
    /// Final window (steps).
    pub lo: i64,
    /// Final window (steps).
    pub hi: i64,
    /// Number of samples in which the buffer was tuned.
    pub usage: u64,
    /// Tuning value per sample (zeros included), used for correlation.
    pub column: Vec<f32>,
}

/// Groups buffer candidates.
///
/// # Panics
///
/// Panics if candidate columns have differing lengths.
pub fn group_buffers(
    candidates: &[BufferCandidate],
    placement: &Placement,
    cfg: &GroupConfig,
) -> Grouping {
    let n = candidates.len();
    if n > 1 {
        let len0 = candidates[0].column.len();
        assert!(
            candidates.iter().all(|c| c.column.len() == len0),
            "tuning columns must have equal length"
        );
    }
    let dt = cfg.distance_factor * placement.spacing;

    // Pairwise correlations above threshold.
    let columns: Vec<Vec<f64>> = candidates
        .iter()
        .map(|c| c.column.iter().map(|v| *v as f64).collect())
        .collect();
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    let mut correlated_pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let r = pearson(&columns[i], &columns[j]);
            if r >= cfg.correlation_threshold {
                correlated_pairs += 1;
                let d = placement.manhattan(candidates[i].ff, candidates[j].ff);
                if d <= dt {
                    pairs.push((i, j, r));
                }
            }
        }
    }
    pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("correlations are finite"));
    let merged_pairs = pairs.len();

    // Greedy complete-linkage merging.
    let mut member_of: Vec<usize> = (0..n).collect();
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let ok = |a: usize, b: usize, columns: &[Vec<f64>]| {
        let r = pearson(&columns[a], &columns[b]);
        let d = placement.manhattan(candidates[a].ff, candidates[b].ff);
        r >= cfg.correlation_threshold && d <= dt
    };
    for (i, j, _) in pairs {
        let (ci, cj) = (member_of[i], member_of[j]);
        if ci == cj {
            continue;
        }
        let compatible = clusters[ci]
            .iter()
            .all(|&a| clusters[cj].iter().all(|&b| ok(a, b, &columns)));
        if compatible {
            let moved = std::mem::take(&mut clusters[cj]);
            for &m in &moved {
                member_of[m] = ci;
            }
            clusters[ci].extend(moved);
        }
    }

    let mut groups: Vec<Group> = clusters
        .into_iter()
        .filter(|c| !c.is_empty())
        .map(|cluster| {
            let lo = cluster
                .iter()
                .map(|&i| candidates[i].lo)
                .min()
                .expect("nonempty");
            let hi = cluster
                .iter()
                .map(|&i| candidates[i].hi)
                .max()
                .expect("nonempty");
            let usage = cluster.iter().map(|&i| candidates[i].usage).sum();
            Group {
                members: cluster.into_iter().map(|i| candidates[i].ff).collect(),
                lo,
                hi,
                usage,
            }
        })
        .collect();

    // Cap: drop least-used groups first.
    let mut dropped = Vec::new();
    if let Some(cap) = cfg.max_buffers {
        groups.sort_by_key(|g| std::cmp::Reverse(g.usage));
        while groups.len() > cap {
            let g = groups.pop().expect("len > cap >= 0");
            dropped.extend(g.members);
        }
    }
    // Deterministic output order: by first member.
    for g in &mut groups {
        g.members.sort_unstable();
    }
    groups.sort_by_key(|g| g.members[0]);
    dropped.sort_unstable();

    Grouping {
        groups,
        dropped,
        correlated_pairs,
        merged_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbi_netlist::bench_suite;

    fn placement() -> Placement {
        // 24-FF demo circuit on a unit grid.
        Placement::grid(&bench_suite::tiny_demo(1), 1.0)
    }

    fn cand(ff: usize, column: Vec<f32>, lo: i64, hi: i64) -> BufferCandidate {
        let usage = column.iter().filter(|v| **v != 0.0).count() as u64;
        BufferCandidate {
            ff,
            lo,
            hi,
            usage,
            column,
        }
    }

    #[test]
    fn correlated_close_buffers_merge() {
        let p = placement();
        // FFs 0 and 1 are placed adjacently by the BFS layout of the demo…
        // use identical columns so r = 1.
        let col = vec![0.0, 3.0, 3.0, 0.0, 5.0, 0.0, 4.0, 4.0];
        let cands = vec![cand(0, col.clone(), 2, 6), cand(1, col.clone(), 3, 7)];
        let g = group_buffers(&cands, &p, &GroupConfig::default());
        assert_eq!(g.groups.len(), 1);
        assert_eq!(g.groups[0].members, vec![0, 1]);
        assert_eq!((g.groups[0].lo, g.groups[0].hi), (2, 7));
        assert_eq!(g.groups[0].usage, 10);
    }

    #[test]
    fn uncorrelated_buffers_stay_separate() {
        let p = placement();
        let a = vec![0.0, 3.0, 0.0, 3.0, 0.0, 3.0, 0.0, 3.0];
        let b = vec![3.0, 0.0, 3.0, 0.0, 3.0, 0.0, 3.0, 0.0];
        let g = group_buffers(
            &[cand(0, a, 1, 4), cand(1, b, 1, 4)],
            &p,
            &GroupConfig::default(),
        );
        assert_eq!(g.groups.len(), 2);
        assert_eq!(g.merged_pairs, 0);
    }

    #[test]
    fn distance_threshold_blocks_merging() {
        let p = placement();
        // Find two FFs that are far apart on the grid.
        let mut far = (0, 1);
        let mut best = 0.0;
        for i in 0..p.len() {
            for j in (i + 1)..p.len() {
                let d = p.manhattan(i, j);
                if d > best {
                    best = d;
                    far = (i, j);
                }
            }
        }
        assert!(best > 5.0, "demo grid should span more than 5 units");
        let col = vec![0.0, 2.0, 2.0, 0.0, 2.0, 0.0];
        let cfg = GroupConfig {
            distance_factor: 5.0,
            ..GroupConfig::default()
        };
        let g = group_buffers(
            &[cand(far.0, col.clone(), 1, 3), cand(far.1, col, 1, 3)],
            &p,
            &cfg,
        );
        assert_eq!(g.groups.len(), 2);
        assert_eq!(g.correlated_pairs, 1);
        assert_eq!(g.merged_pairs, 0);
    }

    #[test]
    fn cap_drops_least_used() {
        let p = placement();
        let a = vec![5.0, 5.0, 5.0, 5.0]; // used 4 times
        let b = vec![0.0, -7.0, 0.0, 7.0]; // used 2 times, uncorrelated-ish
        let c = vec![1.0, 0.0, 0.0, 0.0]; // used once
        let cfg = GroupConfig {
            max_buffers: Some(2),
            ..GroupConfig::default()
        };
        let g = group_buffers(
            &[cand(0, a, 5, 5), cand(5, b, -7, 7), cand(9, c, 1, 1)],
            &p,
            &cfg,
        );
        assert_eq!(g.groups.len(), 2);
        assert_eq!(g.dropped, vec![9]);
    }

    #[test]
    fn group_of_and_average_range() {
        let p = placement();
        let col = vec![0.0, 4.0, 4.0, 0.0];
        let g = group_buffers(
            &[cand(0, col.clone(), 2, 6), cand(1, col, 2, 6)],
            &p,
            &GroupConfig::default(),
        );
        assert_eq!(g.group_of(0), Some(0));
        assert_eq!(g.group_of(1), Some(0));
        assert_eq!(g.group_of(2), None);
        assert!((g.average_range() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let p = placement();
        let g = group_buffers(&[], &p, &GroupConfig::default());
        assert!(g.groups.is_empty());
        assert_eq!(g.average_range(), 0.0);
    }

    #[test]
    fn complete_linkage_is_enforced() {
        let p = placement();
        // a ~ b and b ~ c strongly, but a ~ c weakly: merging all three
        // must be refused; expect {a, b} + {c} (or {b, c} + {a}).
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.9];
        let c = vec![1.0, 2.2, 2.7, 4.4, 4.4, -9.0];
        let cands = vec![cand(0, a, 1, 6), cand(1, b, 1, 7), cand(2, c, 1, 5)];
        let g = group_buffers(&cands, &p, &GroupConfig::default());
        assert_eq!(g.groups.len(), 2, "{:?}", g.groups);
        for grp in &g.groups {
            for &x in &grp.members {
                for &y in &grp.members {
                    if x != y {
                        let cx = &cands.iter().find(|c| c.ff == x).unwrap().column;
                        let cy = &cands.iter().find(|c| c.ff == y).unwrap().column;
                        let cxf: Vec<f64> = cx.iter().map(|v| *v as f64).collect();
                        let cyf: Vec<f64> = cy.iter().map(|v| *v as f64).collect();
                        assert!(pearson(&cxf, &cyf) >= 0.8);
                    }
                }
            }
        }
    }
}
