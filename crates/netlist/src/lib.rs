#![warn(missing_docs)]
//! Sequential circuit representation for the PSBI workspace.
//!
//! Provides everything the timing and insertion layers need to know about a
//! design:
//!
//! * [`graph`] — the circuit graph itself: primary inputs/outputs, gates and
//!   flip-flops with ordered fanins, plus validation (combinational cycle
//!   detection, arity checks) and combinational topological order;
//! * [`bench_format`] — a complete ISCAS89 `.bench` reader/writer so real
//!   benchmark netlists can be used when available;
//! * [`generator`] — the synthetic benchmark generator used as the
//!   substitute for the proprietary ISCAS89/TAU-2013 mappings (see
//!   `DESIGN.md` §2): it reproduces each paper circuit's flip-flop and gate
//!   counts with realistic sequential topology;
//! * [`bench_suite`] — named descriptors of the paper's eight circuits;
//! * [`placement`] — locality-preserving grid placement of flip-flops with
//!   Manhattan distances (needed by the grouping step);
//! * [`skew`] — clock-skew assignment ("we also added clock skews so that
//!   they have more critical paths", §IV);
//! * [`dot`] — Graphviz export for debugging.
//!
//! # Example
//!
//! ```
//! use psbi_netlist::graph::Circuit;
//!
//! let mut c = Circuit::new("demo");
//! let a = c.add_input("a");
//! let ff1 = c.add_ff("ff1", "DFF_X1");
//! let g = c.add_gate("g", "INV_X1", &[ff1]);
//! let n = c.add_gate("n", "NAND2_X1", &[g, a]);
//! let ff2 = c.add_ff("ff2", "DFF_X1");
//! c.connect_ff_data(ff2, n).unwrap();
//! c.connect_ff_data(ff1, n).unwrap(); // feedback through a register is fine
//! c.add_output("out", ff2);
//! c.check().expect("well-formed");
//! assert_eq!(c.num_ffs(), 2);
//! ```

pub mod bench_format;
pub mod bench_suite;
pub mod dot;
pub mod generator;
pub mod graph;
pub mod placement;
pub mod skew;

pub use bench_suite::BenchmarkSpec;
pub use generator::GeneratorProfile;
pub use graph::{Circuit, NetlistError, Node, NodeId, NodeKind};
pub use placement::Placement;
pub use skew::SkewConfig;
