//! Buffer area estimation.
//!
//! The paper's motivation for narrowing tuning ranges is area: "the ranges
//! of buffers are much smaller than the maximum buffer range 20 so that the
//! area taken by inserted buffers can be reduced" (§IV).  Following the
//! buffer structure of Fig. 1 (a chain of delay elements selected by
//! configuration bits), a buffer covering `range` steps needs `range` delay
//! elements and `⌈log2(range + 1)⌉` configuration register bits.

use crate::group::Group;
use serde::{Deserialize, Serialize};

/// Area summary of a buffer deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AreaReport {
    /// Physical buffers.
    pub buffers: usize,
    /// Total delay elements (one per covered step).
    pub delay_elements: u64,
    /// Total configuration register bits.
    pub config_bits: u64,
    /// Delay elements a naive design (every buffer at the maximum range)
    /// would need for the same buffer count.
    pub max_range_elements: u64,
}

impl AreaReport {
    /// Computes the report for a set of physical buffers.
    ///
    /// `max_range` is the hardware's maximum range in steps (paper: 20).
    pub fn of(groups: &[Group], max_range: u32) -> Self {
        let mut delay_elements = 0u64;
        let mut config_bits = 0u64;
        for g in groups {
            let range = g.range().max(0) as u64;
            delay_elements += range;
            config_bits += bits_for(range);
        }
        Self {
            buffers: groups.len(),
            delay_elements,
            config_bits,
            max_range_elements: groups.len() as u64 * u64::from(max_range),
        }
    }

    /// Fraction of the naive maximum-range area actually used (`< 1` when
    /// concentration narrowed the windows).
    pub fn area_saving(&self) -> f64 {
        if self.max_range_elements == 0 {
            return 0.0;
        }
        1.0 - self.delay_elements as f64 / self.max_range_elements as f64
    }
}

/// Configuration bits needed to select one of `range + 1` settings.
fn bits_for(range: u64) -> u64 {
    let settings = range + 1;
    let mut bits = 0;
    while (1u64 << bits) < settings {
        bits += 1;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(lo: i64, hi: i64) -> Group {
        Group {
            members: vec![0],
            lo,
            hi,
            usage: 1,
        }
    }

    #[test]
    fn bits_follow_log2() {
        assert_eq!(bits_for(0), 0); // a fixed buffer needs no register
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(20), 5); // the paper's 20-step buffer: 5 bits
    }

    #[test]
    fn report_accumulates() {
        let groups = [group(0, 8), group(-2, 2), group(5, 5)];
        let r = AreaReport::of(&groups, 20);
        assert_eq!(r.buffers, 3);
        assert_eq!(r.delay_elements, 8 + 4);
        assert_eq!(r.config_bits, 4 + 3);
        assert_eq!(r.max_range_elements, 60);
        assert!(r.area_saving() > 0.7);
    }

    #[test]
    fn empty_deployment() {
        let r = AreaReport::of(&[], 20);
        assert_eq!(r.buffers, 0);
        assert_eq!(r.area_saving(), 0.0);
    }

    #[test]
    fn full_range_saves_nothing() {
        let r = AreaReport::of(&[group(0, 20)], 20);
        assert!(r.area_saving().abs() < 1e-12);
    }
}
