//! Vendored, offline stand-in for the `proptest` crate.
//!
//! Implements the subset the PSBI test suites use: the [`proptest!`] and
//! [`prop_compose!`] macros, range/tuple/`Just`/string strategies,
//! `prop_map`, `proptest::collection::vec`, [`prop_oneof!`],
//! `any::<bool>()`, `prop_assert!` / `prop_assert_eq!`, and
//! [`prelude::ProptestConfig`] with a configurable case count.
//!
//! Differences from upstream: no shrinking (a failing case panics with its
//! inputs via the assertion message), and string strategies ignore their
//! regex pattern, generating arbitrary printable-ish strings instead.
//! Cases are generated from a deterministic per-test RNG, so failures are
//! reproducible run-to-run.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// A generator of arbitrary values (no shrinking).
    pub trait Strategy {
        /// The value type produced.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (upstream `prop_map`).
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map::new(self, f)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy (helper for [`prop_oneof!`]).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Always produces a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform draw from a half-open numeric range.
    impl<T: rand::SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// Uniform draw from an inclusive numeric range.
    impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// Arbitrary printable-ish string; the regex pattern is ignored.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let len = rng.gen_range(0usize..48);
            (0..len)
                .map(|_| {
                    // Mix printable ASCII with some whitespace and a few
                    // multi-byte characters to exercise parsers.
                    match rng.gen_range(0u32..20) {
                        0 => '\n',
                        1 => '\t',
                        2 => 'µ',
                        3 => '€',
                        _ => rng.gen_range(0x20u8..0x7f) as char,
                    }
                })
                .collect()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F> Map<S, F> {
        /// Wraps `inner`, mapping through `f`.  The bounds pin the
        /// closure's argument type so `prop_compose!` bodies infer.
        pub fn new<O>(inner: S, f: F) -> Self
        where
            F: Fn(S::Value) -> O,
        {
            Self { inner, f }
        }
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies ([`prop_oneof!`]).
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Builds from a non-empty option list.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0usize..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// `any::<T>()` support.
    pub trait ArbitraryValue {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen_bool(0.5)
        }
    }

    impl ArbitraryValue for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen_range(0u8..=u8::MAX)
        }
    }

    impl ArbitraryValue for i64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen_range(i64::MIN..=i64::MAX)
        }
    }

    /// Strategy form of [`ArbitraryValue`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Upstream-style `any::<T>()`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_strategy_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($( self.$idx.generate(rng), )+)
                }
            }
        };
    }

    impl_strategy_tuple!(S0: 0);
    impl_strategy_tuple!(S0: 0, S1: 1);
    impl_strategy_tuple!(S0: 0, S1: 1, S2: 2);
    impl_strategy_tuple!(S0: 0, S1: 1, S2: 2, S3: 3);
    impl_strategy_tuple!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4);
    impl_strategy_tuple!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5);
    impl_strategy_tuple!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6);
    impl_strategy_tuple!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6, S7: 7);
    impl_strategy_tuple!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6, S7: 7, S8: 8);
    impl_strategy_tuple!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6, S7: 7, S8: 8, S9: 9);
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Sizes accepted by [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Vector-of-`element` strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Upstream-style `proptest::collection::vec(element, len)`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Test-runner plumbing used by the macros.
pub mod test_runner {
    use rand::SeedableRng;

    pub use super::strategy::TestRng;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Overrides the case count.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic RNG derived from the property name, so failures
    /// reproduce across runs and machines.
    pub fn deterministic_rng(test_name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }
}

/// Common imports (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![ $( $crate::strategy::boxed($strategy) ),+ ])
    };
}

/// Composes sub-strategies into a derived-value strategy (upstream form).
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ($($arg:ident : $argty:ty),* $(,)?)
            ($($pat:pat_param in $strat:expr),+ $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            let strategies = ( $( $strat, )+ );
            $crate::strategy::Map::new(strategies, move |( $($pat,)+ )| $body)
        }
    };
}

/// Declares property tests (upstream form, without shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategies = ( $( $strat, )+ );
                let mut rng = $crate::test_runner::deterministic_rng(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..config.cases {
                    let ( $($pat,)+ ) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    // Upstream proptest bodies may `return Ok(())` early;
                    // run them in a Result-returning closure to allow it.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { { $body } ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("property failed: {message}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_point()(x in -10i64..10, y in -10i64..10) -> (i64, i64) {
            (x, y)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 0usize..7, b in -2.5f64..2.5) {
            prop_assert!(a < 7);
            prop_assert!((-2.5..2.5).contains(&b));
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| *x < 5));
        }

        #[test]
        fn oneof_and_compose(p in arb_point(), c in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(p.0 >= -10 && p.0 < 10);
            prop_assert!(c == 1 || c == 2);
        }

        #[test]
        fn string_strategy_generates(s in "\\PC*", flag in any::<bool>()) {
            prop_assert!(s.len() < 256);
            let _ = flag;
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let mut r1 = crate::test_runner::deterministic_rng("x");
        let mut r2 = crate::test_runner::deterministic_rng("x");
        for _ in 0..16 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
