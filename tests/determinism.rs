//! Determinism regression: the flow result — insertion ranges, deployment
//! and yields — is bit-identical with `RAYON_NUM_THREADS=1` and with the
//! default worker count.
//!
//! This pins the batched engine's contract: fixed chunk boundaries,
//! per-chip seeded RNGs and chunk-ordered merges make the outcome
//! independent of how the work-stealing scheduler interleaves chunks.

use psbi::core::flow::{BufferInsertionFlow, FlowConfig, InsertionResult, TargetPeriod};
use psbi::netlist::bench_suite;

fn run_once(threads: usize) -> InsertionResult {
    let circuit = bench_suite::tiny_demo(42);
    let cfg = FlowConfig {
        samples: 200,
        yield_samples: 400,
        calibration_samples: 300,
        seed: 2024,
        // 0 = let the parallel runtime decide (RAYON_NUM_THREADS / cores);
        // > 0 = explicit worker pool.
        threads,
        target: TargetPeriod::SigmaFactor(0.0),
        record_histograms: 2,
        ..FlowConfig::default()
    };
    BufferInsertionFlow::builder(&circuit, cfg)
        .build()
        .expect("valid circuit")
        .run()
}

/// Strips the non-canonical surfaces: wall-clock times (including the
/// per-stage solver times inside the diagnostics) legitimately differ
/// between runs, and the cache counters vary with worker scheduling.
fn normalized(mut r: InsertionResult) -> InsertionResult {
    r.runtime = Default::default();
    r.diagnostics = Default::default();
    r
}

#[test]
fn flow_is_bit_identical_across_thread_counts() {
    // Leg 1: RAYON_NUM_THREADS=1 versus the default worker count.
    // Single test function: the runs must not interleave with other tests
    // mutating the same process-wide environment variable.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let env_single = normalized(run_once(0));
    std::env::remove_var("RAYON_NUM_THREADS");
    let env_default = normalized(run_once(0));
    assert!(
        env_single.nb > 0,
        "flow should deploy at least one buffer at µT"
    );
    assert_eq!(
        env_single, env_default,
        "flow result differs between RAYON_NUM_THREADS=1 and the default"
    );

    // Leg 2: explicit 1-thread and 8-thread pools.  This leg stays
    // meaningful on single-core machines (and under runtimes that read
    // RAYON_NUM_THREADS only once at global-pool initialisation): eight
    // oversubscribed workers still race for chunks in a different order.
    let pool_single = normalized(run_once(1));
    let pool_eight = normalized(run_once(8));
    assert_eq!(
        pool_single, pool_eight,
        "flow result differs between explicit 1-thread and 8-thread pools"
    );
    assert_eq!(
        env_single, pool_single,
        "env-capped and pool-capped single-thread runs disagree"
    );
}
