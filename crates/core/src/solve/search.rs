//! The per-region support-set branch and bound.
//!
//! Split out of the orchestration layer ([`super`]) so region *solving* is
//! a pure function of its inputs: the region's flip-flops, the
//! materialised constraint bounds, the tuning windows and the solver
//! limits.  Nothing here reads or writes cross-pass state — incremental
//! reuse happens one level up by *replaying* a cached outcome after an
//! exact input comparison, never by steering this search.
//!
//! # Pinned tie-breaking
//!
//! Minimum-count supports are often not unique.  The search returns the
//! **first optimum in a pinned depth-first order**, which makes the result
//! a deterministic function of the inputs:
//!
//! * the branch variable is the undecided endpoint covering the most
//!   uncovered violated constraints, ties broken to the **lowest region
//!   slot** (explicit in [`SupportSearch::pick_branch_var`]);
//! * the `In` branch is explored before the `Out` branch;
//! * an incumbent is only replaced by a *strictly smaller* support, so the
//!   first optimal-count support reached in that order is the one
//!   returned.
//!
//! This is what lets the incremental layer cache a region's outcome and
//! replay it later: re-running the search on identical inputs provably
//! reproduces the cached support bit for bit.  (Seeding the search with a
//! cached incumbent instead was considered and rejected: under
//! [`SolverOptions::bb_node_cap`](super::SolverOptions::bb_node_cap) a
//! seeded search can exhaust its node budget at a different point than an
//! unseeded one and return an observably different fallback, breaking the
//! `PSBI_NO_INCREMENTAL` bit-identity contract.)

use super::{RegCons, NONE};
use psbi_timing::feasibility::{Arc, DiffSolver};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Decision {
    In,
    Out,
    Undecided,
}

/// Outcome of one region's support search.
pub(crate) enum SearchPhase {
    Infeasible,
    /// Greedy (inexact) support from witness sparsification.
    Fallback {
        support: Vec<u32>,
        witness: Vec<i64>,
    },
    /// Proven-best support from the branch and bound.
    Best {
        count: usize,
        support: Vec<u32>,
        witness: Vec<i64>,
        exact: bool,
    },
}

/// Drives one region's support search to a [`SearchPhase`].
pub(crate) fn run_support_search(
    search: &mut SupportSearch<'_>,
    m: usize,
    region_cap: usize,
) -> SearchPhase {
    let mut state = vec![Decision::Undecided; m];
    // Quick relaxation check with everything allowed.
    if !search.feasible_support(&state, true) {
        return SearchPhase::Infeasible;
    }
    let mut full_witness = Vec::new();
    search.solver.copy_witness(m, &mut full_witness);
    if m > region_cap {
        // Region too large for exact search: sparsify the full witness
        // greedily (drop small tunings while feasibility holds).
        let (support, witness) = search.sparsify(&full_witness);
        return SearchPhase::Fallback { support, witness };
    }
    search.recurse(&mut state);
    match search.best.take() {
        Some((count, support, witness)) => SearchPhase::Best {
            count,
            support,
            witness,
            exact: search.exact,
        },
        None if !search.exact => {
            // Node cap exhausted with no incumbent: fall back to the
            // sparsified relaxation witness.
            let (support, witness) = search.sparsify(&full_witness);
            SearchPhase::Fallback { support, witness }
        }
        None => SearchPhase::Infeasible,
    }
}

/// Branch-and-bound over support sets.
pub(crate) struct SupportSearch<'a> {
    pub(crate) solver: &'a mut DiffSolver,
    pub(crate) var_of: &'a [u32],
    pub(crate) region_ffs: &'a [u32],
    pub(crate) cons: &'a [RegCons],
    pub(crate) violated: &'a [usize],
    pub(crate) bounds: &'a [(i64, i64)],
    /// `(count, support ffs, witness values per support entry)`.
    pub(crate) best: Option<(usize, Vec<u32>, Vec<i64>)>,
    pub(crate) nodes: usize,
    pub(crate) node_cap: usize,
    pub(crate) exact: bool,
    /// Per-node scratch, borrowed from [`super::SampleSolver`] for the
    /// region's lifetime and reused by every feasibility probe.
    pub(crate) vars_scratch: Vec<u32>,
    pub(crate) slot_scratch: Vec<u32>,
    pub(crate) arcs_scratch: Vec<Arc>,
    pub(crate) bounds_scratch: Vec<(i64, i64)>,
}

impl SupportSearch<'_> {
    /// Returns the scratch buffers to their owner.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_scratch(self) -> (Vec<u32>, Vec<u32>, Vec<Arc>, Vec<(i64, i64)>) {
        (
            self.vars_scratch,
            self.slot_scratch,
            self.arcs_scratch,
            self.bounds_scratch,
        )
    }

    /// Greedy fallback for oversized regions: start from the all-variables
    /// witness and drop tunings (smallest magnitude first) while the system
    /// stays feasible.  Returns `(support, witness values)`.
    fn sparsify(&mut self, full_witness: &[i64]) -> (Vec<u32>, Vec<i64>) {
        let m = self.region_ffs.len();
        let mut state: Vec<Decision> = (0..m)
            .map(|i| {
                if full_witness[i] != 0 {
                    Decision::In
                } else {
                    Decision::Out
                }
            })
            .collect();
        // Candidates ordered by |value| ascending: cheap drops first.
        let mut order: Vec<usize> = (0..m).filter(|&i| full_witness[i] != 0).collect();
        order.sort_by_key(|&i| full_witness[i].abs());
        for &i in &order {
            state[i] = Decision::Out;
            if !self.feasible_support(&state, false) {
                state[i] = Decision::In;
            }
        }
        let support: Vec<u32> = state
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == Decision::In)
            .map(|(i, _)| self.region_ffs[i])
            .collect();
        assert!(
            self.feasible_support(&state, false),
            "sparsify only removes while feasibility holds"
        );
        let mut witness = Vec::new();
        self.solver.copy_witness(support.len(), &mut witness);
        (support, witness)
    }

    /// Feasibility with support = In (or In ∪ Undecided when `relaxed`).
    ///
    /// Builds the subsystem in the reusable scratch buffers; the witness of
    /// a feasible check can be read back with `solver.copy_witness` (the
    /// variable order is the support order).
    fn feasible_support(&mut self, state: &[Decision], relaxed: bool) -> bool {
        self.vars_scratch.clear();
        self.slot_scratch.clear();
        self.slot_scratch.resize(state.len(), NONE);
        for (i, d) in state.iter().enumerate() {
            let included = match d {
                Decision::In => true,
                Decision::Undecided => relaxed,
                Decision::Out => false,
            };
            if included {
                self.slot_scratch[i] = self.vars_scratch.len() as u32;
                self.vars_scratch.push(self.region_ffs[i]);
            }
        }
        let root = self.vars_scratch.len() as u32;
        self.arcs_scratch.clear();
        for c in self.cons {
            let la = self.local_of(c.a);
            let lb = self.local_of(c.b);
            let slot = &self.slot_scratch;
            let va = la.map_or(root, |l| if slot[l] != NONE { slot[l] } else { root });
            let vb = lb.map_or(root, |l| if slot[l] != NONE { slot[l] } else { root });
            if va == root && vb == root {
                if c.bound < 0 {
                    return false;
                }
                continue;
            }
            // k(a) − k(b) ≤ bound  →  arc b → a with weight bound.
            self.arcs_scratch.push(Arc::new(vb, va, c.bound));
        }
        self.bounds_scratch.clear();
        self.bounds_scratch
            .extend(self.vars_scratch.iter().map(|&ff| self.bounds[ff as usize]));
        self.solver.decide_bounded(
            self.vars_scratch.len(),
            &self.arcs_scratch,
            &self.bounds_scratch,
        )
    }

    #[inline]
    fn local_of(&self, ff: u32) -> Option<usize> {
        let v = self.var_of[ff as usize];
        (v != NONE).then_some(v as usize)
    }

    fn in_count(state: &[Decision]) -> usize {
        state.iter().filter(|d| **d == Decision::In).count()
    }

    /// Matching-based lower bound: violated constraints not covered by In
    /// whose endpoints are still undecided each need one more buffer, and
    /// vertex-disjoint ones need distinct buffers.
    fn matching_lb(&self, state: &[Decision]) -> usize {
        let mut used = vec![false; state.len()];
        let mut lb = 0usize;
        for &v in self.violated {
            let c = &self.cons[v];
            let la = self.local_of(c.a);
            let lb_ = self.local_of(c.b);
            let covered = [la, lb_]
                .iter()
                .any(|l| l.is_some_and(|i| state[i] == Decision::In));
            if covered {
                continue;
            }
            // Usable endpoints: undecided, unused so far.
            let mut usable: Vec<usize> = Vec::new();
            for l in [la, lb_].into_iter().flatten() {
                if state[l] == Decision::Undecided && !used[l] {
                    usable.push(l);
                }
            }
            if usable.is_empty() {
                continue; // handled by feasibility pruning
            }
            // Claim both endpoints so the next edge must be disjoint.
            for l in [la, lb_].into_iter().flatten() {
                used[l] = true;
            }
            lb += 1;
        }
        lb
    }

    fn recurse(&mut self, state: &mut Vec<Decision>) {
        self.nodes += 1;
        if self.nodes > self.node_cap {
            self.exact = false;
            return;
        }
        let in_count = Self::in_count(state);
        if let Some((best, _, _)) = &self.best {
            if in_count >= *best {
                return;
            }
            if in_count + self.matching_lb(state) >= *best {
                return;
            }
        }
        // Relaxation: can anything still work?
        if !self.feasible_support(state, true) {
            return;
        }
        // Is In alone already enough?
        if self.feasible_support(state, false) {
            let support: Vec<u32> = state
                .iter()
                .enumerate()
                .filter(|(_, d)| **d == Decision::In)
                .map(|(i, _)| self.region_ffs[i])
                .collect();
            let better = self
                .best
                .as_ref()
                .is_none_or(|(c, _, _)| support.len() < *c);
            if better {
                // Witness values of support vars, in support order.
                let mut values = Vec::new();
                self.solver.copy_witness(support.len(), &mut values);
                self.best = Some((support.len(), support, values));
            }
            return;
        }
        // Branch: pick an undecided endpoint of an uncovered violated
        // constraint; fall back to any undecided vertex.
        let pick = self.pick_branch_var(state);
        let Some(v) = pick else {
            return; // everything decided yet infeasible with In
        };
        state[v] = Decision::In;
        self.recurse(state);
        state[v] = Decision::Out;
        self.recurse(state);
        state[v] = Decision::Undecided;
    }

    /// The pinned branch rule (see the module docs): the undecided
    /// variable appearing in the most uncovered violated constraints,
    /// ties broken to the lowest region slot.
    fn pick_branch_var(&self, state: &[Decision]) -> Option<usize> {
        let mut score = vec![0usize; state.len()];
        for &v in self.violated {
            let c = &self.cons[v];
            let la = self.local_of(c.a);
            let lb = self.local_of(c.b);
            let covered = [la, lb]
                .iter()
                .any(|l| l.is_some_and(|i| state[i] == Decision::In));
            if covered {
                continue;
            }
            for l in [la, lb].into_iter().flatten() {
                if state[l] == Decision::Undecided {
                    score[l] += 1;
                }
            }
        }
        let mut best: Option<(usize, usize)> = None; // (score, slot)
        for (i, s) in score.iter().enumerate() {
            if *s > 0 && state[i] == Decision::Undecided && best.is_none_or(|(bs, _)| *s > bs) {
                best = Some((*s, i));
            }
        }
        best.map(|(_, i)| i)
            .or_else(|| state.iter().position(|d| *d == Decision::Undecided))
    }
}
