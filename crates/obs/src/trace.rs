//! Span-based tracing emitting Chrome trace-event JSON.
//!
//! A **span** is an RAII guard ([`Span`]) bracketing a named region of
//! work.  Each live span pushes a `B` (begin) event onto its thread's
//! buffer when created and the matching `E` (end) event when dropped, so
//! per-thread event streams are properly nested by construction — the
//! thread-local span *stack* is the guard nesting itself.  Timestamps are
//! nanoseconds from a process-wide epoch (one monotonic [`Instant`]).
//!
//! # Arming
//!
//! Tracing is **disarmed** by default and every span site costs a single
//! relaxed atomic load (the same fast-path pattern as `psbi_fault`).  It
//! arms in one of two ways:
//!
//! * `PSBI_TRACE=<path>` in the environment (read once, on the first
//!   span evaluation) — the flush destination is `<path>`;
//! * programmatically via [`arm`] (the fleet runner does this for
//!   `FleetOptions::trace` / `psbi-fleet run --trace`).
//!
//! Buffered events are written by [`flush`] as a Chrome trace-event JSON
//! array — load the file in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.  Flushing **streams**: each call drains the
//! buffers and appends only the new events, rewriting just the closing
//! bracket, so a long-running process (the dispatcher flushes
//! periodically) pays for the events since the last flush — not an
//! ever-growing whole-file rewrite — and the file is a complete, valid
//! JSON array after every flush.
//!
//! # Determinism contract
//!
//! Tracing writes only to its own output file; it never touches journals,
//! reports or results.  Canonical output bytes are identical with tracing
//! armed or disarmed — `tests/obs.rs` pins this.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock, PoisonError};
use std::time::Instant;

/// Fast-path gate: `true` iff tracing is armed.
static ARMED: AtomicBool = AtomicBool::new(false);
/// One-shot `PSBI_TRACE` environment read.
static ENV_INIT: Once = Once::new();
/// Flush destination (present iff armed, or armed earlier).
static OUT_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);
/// Every thread buffer ever registered (kept for the process lifetime so
/// events survive thread exit until the next flush).
static BUFFERS: Mutex<Vec<Arc<ThreadBuffer>>> = Mutex::new(Vec::new());
/// Monotone trace-local thread ids, assigned on first event per thread.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
/// Incremental-flush position: where the JSON array body ends in the
/// armed file (reset by [`arm`]/[`disarm`], so a fresh arming starts a
/// fresh file).
static STREAM: Mutex<Option<StreamState>> = Mutex::new(None);

/// Append cursor for the streamed trace file.
struct StreamState {
    /// The file this cursor is valid for.
    path: PathBuf,
    /// Byte offset just past the last written event (before the
    /// closing `\n]\n`).
    body_len: u64,
    /// Whether at least one event line has been written (controls the
    /// `,\n` separator on the next append).
    written: bool,
}

/// One buffered trace event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Span name (naming scheme: `layer.noun[.verb]`, see README).
    pub name: &'static str,
    /// `b'B'` (begin) or `b'E'` (end).
    pub phase: u8,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Numeric context arguments (begin events only).
    pub args: Vec<(&'static str, u64)>,
}

struct ThreadBuffer {
    tid: u64,
    events: Mutex<Vec<Event>>,
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<ThreadBuffer>>> = const { RefCell::new(None) };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Buffers and the path are always left consistent between operations,
    // so a poisoned lock (a panicking traced thread) is recoverable.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether tracing is armed.  This is the span fast path: one relaxed
/// atomic load once the environment has been read.
pub fn enabled() -> bool {
    ENV_INIT.call_once(|| {
        if let Ok(path) = std::env::var("PSBI_TRACE") {
            if !path.trim().is_empty() {
                arm(PathBuf::from(path.trim()));
            }
        }
    });
    ARMED.load(Ordering::Relaxed)
}

/// Arms tracing with `path` as the flush destination, clearing any events
/// buffered by a previous arming.
pub fn arm(path: impl Into<PathBuf>) {
    clear_events();
    *lock(&STREAM) = None;
    *lock(&OUT_PATH) = Some(path.into());
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms tracing and drops all buffered events (span sites return to
/// the one-load fast path; live guards stop emitting their end events).
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
    *lock(&OUT_PATH) = None;
    *lock(&STREAM) = None;
    clear_events();
}

fn clear_events() {
    for buf in lock(&BUFFERS).iter() {
        lock(&buf.events).clear();
    }
}

fn push_event(name: &'static str, phase: u8, args: Vec<(&'static str, u64)>) {
    let ts_ns = now_ns();
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            let buf = Arc::new(ThreadBuffer {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                events: Mutex::new(Vec::new()),
            });
            lock(&BUFFERS).push(Arc::clone(&buf));
            buf
        });
        lock(&buf.events).push(Event {
            name,
            phase,
            ts_ns,
            args,
        });
    });
}

/// An RAII span guard: emits the `B` event on creation (when armed) and
/// the matching `E` event on drop.  A guard created while disarmed is a
/// no-op; a guard that emitted its `B` always emits its `E`, keeping the
/// per-thread streams balanced.
#[must_use = "a span measures nothing unless it is held for the region's duration"]
pub struct Span {
    name: &'static str,
    live: bool,
}

impl Span {
    /// Enters a span named `name`.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        Self::enter_with(name, &[])
    }

    /// Enters a span with numeric context arguments (e.g. a job index).
    #[inline]
    pub fn enter_with(name: &'static str, args: &[(&'static str, u64)]) -> Span {
        if !enabled() {
            return Span { name, live: false };
        }
        push_event(name, b'B', args.to_vec());
        Span { name, live: true }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.live {
            push_event(self.name, b'E', Vec::new());
        }
    }
}

fn render_event(out: &mut String, ev: &Event, tid: u64, pid: u32) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"psbi\",\"ph\":\"{}\",\"pid\":{pid},\
         \"tid\":{tid},\"ts\":{}.{:03}",
        ev.name,
        ev.phase as char,
        ev.ts_ns / 1_000,
        ev.ts_ns % 1_000,
    );
    if !ev.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            let comma = if i == 0 { "" } else { "," };
            let _ = write!(out, "{comma}\"{k}\":{v}");
        }
        out.push('}');
    }
    out.push('}');
}

/// Streams buffered events to the armed path and returns that path, or
/// `Ok(None)` when tracing was never armed.
///
/// The first flush after arming writes a fresh file; every later flush
/// **drains** the thread buffers and appends only the events gathered
/// since the previous flush, then rewrites the closing `]` — the file is
/// a complete, valid Chrome trace-event JSON array after every call, and
/// flush cost is proportional to new events, not file size.
///
/// # Errors
///
/// Propagates the underlying file write error.  A failed flush loses
/// nothing: the drained events are re-queued (ahead of any pushed since)
/// and the stream cursor stays at the previous valid tail, so the next
/// flush retries them and overwrites any partial append.
pub fn flush() -> std::io::Result<Option<PathBuf>> {
    let Some(path) = lock(&OUT_PATH).clone() else {
        return Ok(None);
    };
    // Drain (not copy) every buffer, in stable tid order, remembering
    // which events came from which buffer: a failed write puts them
    // back, so a transient IO error (full disk) delays events to the
    // next flush instead of silently dropping them.  Events pushed
    // concurrently with the drain are simply picked up next flush.
    let mut buffers = lock(&BUFFERS).clone();
    buffers.sort_by_key(|b| b.tid);
    let pid = std::process::id();
    let mut chunk = String::new();
    let mut drained: Vec<(Arc<ThreadBuffer>, Vec<Event>)> = Vec::new();
    for buf in &buffers {
        let events = std::mem::take(&mut *lock(&buf.events));
        if events.is_empty() {
            continue;
        }
        for ev in &events {
            if !chunk.is_empty() {
                chunk.push_str(",\n");
            }
            render_event(&mut chunk, ev, buf.tid, pid);
        }
        drained.push((Arc::clone(buf), events));
    }
    let mut stream = lock(&STREAM);
    let io = write_chunk(&mut stream, &path, &chunk);
    if io.is_err() {
        // Put the drained events back, ahead of anything pushed since,
        // so the next flush retries them in order.  The stream cursor
        // was not advanced (see write_chunk), so that retry simply
        // overwrites whatever partial tail this attempt left behind.
        for (buf, mut events) in drained {
            let mut slot = lock(&buf.events);
            events.append(&mut slot);
            *slot = events;
        }
    }
    io.map(|()| Some(path))
}

/// Writes one rendered event chunk to the streamed trace file.  The
/// stream cursor (`body_len`/`written`) moves only after every byte is
/// down — a failed or partial append leaves it pointing at the previous
/// valid tail, which the next flush seeks to and overwrites, so the file
/// self-heals instead of accumulating a permanently desynced cursor.
fn write_chunk(stream: &mut Option<StreamState>, path: &Path, chunk: &str) -> std::io::Result<()> {
    match stream.as_mut().filter(|s| s.path == path) {
        None => {
            let mut out = String::from("[\n");
            out.push_str(chunk);
            let body_len = out.len() as u64;
            out.push_str("\n]\n");
            std::fs::write(path, out)?;
            *stream = Some(StreamState {
                path: path.to_path_buf(),
                body_len,
                written: !chunk.is_empty(),
            });
        }
        Some(s) => {
            use std::io::{Seek as _, SeekFrom, Write as _};
            let mut file = std::fs::OpenOptions::new().write(true).open(path)?;
            file.seek(SeekFrom::Start(s.body_len))?;
            let mut tail = String::new();
            if !chunk.is_empty() {
                if s.written {
                    tail.push_str(",\n");
                }
                tail.push_str(chunk);
            }
            let body_grow = tail.len() as u64;
            tail.push_str("\n]\n");
            file.write_all(tail.as_bytes())?;
            // Trim any stale bytes if an external writer grew the file.
            file.set_len(s.body_len + body_grow + 3)?;
            s.body_len += body_grow;
            s.written = s.written || !chunk.is_empty();
        }
    }
    Ok(())
}

/// Runs `f` with tracing armed to `path`, flushing and disarming
/// afterwards (also on panic — the disarm, not the flush), serialised
/// against every other observability test helper through the crate-wide
/// gate.  Test helper, analogous to `psbi_fault::with_spec`.
///
/// # Panics
///
/// Panics if the final flush fails.
pub fn with_trace<R>(path: &Path, f: impl FnOnce() -> R) -> R {
    let _gate = crate::test_gate();
    struct DisarmOnDrop;
    impl Drop for DisarmOnDrop {
        fn drop(&mut self) {
            disarm();
        }
    }
    let _disarm = DisarmOnDrop;
    arm(path);
    let result = f();
    flush().expect("trace flush failed");
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("psbi_obs_trace_{tag}_{}.json", std::process::id()))
    }

    #[test]
    fn disarmed_spans_are_noops_and_flush_is_none() {
        // Not under the gate: other tests may be armed concurrently, so
        // only check that a disarmed-looking guard round-trips.
        let span = Span {
            name: "x",
            live: false,
        };
        drop(span);
    }

    #[test]
    fn armed_spans_emit_balanced_events_and_valid_json() {
        let path = tmp("balanced");
        with_trace(&path, || {
            let _outer = Span::enter_with("test.outer", &[("k", 7)]);
            {
                let _inner = Span::enter("test.inner");
            }
        });
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert_eq!(text.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(text.matches("\"ph\":\"E\"").count(), 2);
        assert!(text.contains("\"name\":\"test.outer\""));
        assert!(text.contains("\"args\":{\"k\":7}"));
        // Inner nests inside outer: B(outer) B(inner) E(inner) E(outer).
        let inner_b = text.find("\"name\":\"test.inner\",\"cat\":\"psbi\",\"ph\":\"B\"");
        let outer_b = text.find("\"name\":\"test.outer\",\"cat\":\"psbi\",\"ph\":\"B\"");
        assert!(outer_b.unwrap() < inner_b.unwrap());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rearming_clears_previous_events() {
        let path = tmp("rearm");
        with_trace(&path, || {
            let _s = Span::enter("test.stale");
        });
        with_trace(&path, || {
            let _s = Span::enter("test.fresh");
        });
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.contains("test.stale"));
        assert!(text.contains("test.fresh"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn streaming_flush_appends_without_duplicating() {
        let path = tmp("stream");
        with_trace(&path, || {
            {
                let _a = Span::enter("test.first_batch");
            }
            flush().unwrap();
            let mid = std::fs::read_to_string(&path).unwrap();
            // Valid, complete JSON after the intermediate flush.
            assert!(mid.trim_start().starts_with('['));
            assert!(mid.trim_end().ends_with(']'));
            assert_eq!(mid.matches("test.first_batch").count(), 2); // B + E
            {
                let _b = Span::enter("test.second_batch");
            }
            // with_trace's final flush appends the second batch.
        });
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.trim_end().ends_with(']'));
        // Each span exactly once (B + E): the second flush appended the
        // new events instead of rewriting (and duplicating) the old.
        assert_eq!(text.matches("test.first_batch").count(), 2);
        assert_eq!(text.matches("test.second_batch").count(), 2);
        // Still one well-formed array: exactly one opening bracket line.
        assert_eq!(text.matches('[').count(), 1);
        assert_eq!(text.matches(']').count(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_flushes_keep_the_file_valid() {
        let path = tmp("empty_stream");
        with_trace(&path, || {
            flush().unwrap();
            flush().unwrap();
            {
                let _s = Span::enter("test.after_empties");
            }
            flush().unwrap();
            flush().unwrap();
        });
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert_eq!(text.matches("test.after_empties").count(), 2);
        assert!(!text.contains(",,"), "double separators in {text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_flush_requeues_events_for_the_next_attempt() {
        // Arm at a path whose parent directory does not exist yet: the
        // first flush fails, and must NOT discard the drained events —
        // once the directory appears, the next flush writes them all.
        let dir =
            std::env::temp_dir().join(format!("psbi_obs_trace_requeue_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("trace.json");
        with_trace(&path, || {
            {
                let _s = Span::enter("test.requeued");
            }
            assert!(flush().is_err(), "flush into a missing dir must fail");
            std::fs::create_dir_all(&dir).unwrap();
            // with_trace's final flush retries and must carry the event.
        });
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert_eq!(text.matches("test.requeued").count(), 2); // B + E
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn threads_get_distinct_tids() {
        let path = tmp("tids");
        with_trace(&path, || {
            let _a = Span::enter("test.main_thread");
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _b = Span::enter("test.worker_thread");
                });
            });
        });
        let text = std::fs::read_to_string(&path).unwrap();
        let mut tids = std::collections::BTreeSet::new();
        for part in text.split("\"tid\":").skip(1) {
            let end = part.find(',').unwrap();
            tids.insert(part[..end].parse::<u64>().unwrap());
        }
        assert!(tids.len() >= 2, "expected two thread ids, got {tids:?}");
        let _ = std::fs::remove_file(&path);
    }
}
