//! Property-based tests across the timing pipeline: generated circuits →
//! SSTA → sampling → constraints, checking cross-module invariants.

use proptest::prelude::*;
use psbi_liberty::Library;
use psbi_netlist::generator::GeneratorProfile;
use psbi_timing::graph::TimingGraph;
use psbi_timing::sample::{chip_rng, sample_canonical, SampleTiming};
use psbi_timing::seq::SequentialGraph;
use psbi_timing::{constraint, IntegerConstraints};
use psbi_variation::VariationModel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The unbuffered minimum period is exactly the feasibility threshold
    /// of the zero assignment: one step above it every setup bound is
    /// non-negative, one step below it the critical edge is violated.
    #[test]
    fn min_period_is_tight(n_ffs in 6usize..40, seed in 0u64..40, k in 0u64..20) {
        let circuit = GeneratorProfile::sized("p", n_ffs, n_ffs * 6).generate(seed);
        let lib = Library::industry_like();
        let model = VariationModel::paper_defaults();
        let tg = TimingGraph::build(&circuit, &lib, &model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let mut st = SampleTiming::for_graph(&sg);
        let (globals, mut rng) = chip_rng(7, k);
        sample_canonical(&sg, &globals, &mut rng, &mut st);
        let skews = vec![0.0; sg.n_ffs];
        let mp = constraint::min_period(&sg, &st, &skews);
        let step = (mp.period / 160.0).max(1e-6);
        let mut ic = IntegerConstraints::for_graph(&sg);
        ic.build(&sg, &st, &skews, mp.period + step, step);
        prop_assert!(ic.setup_bound.iter().all(|b| *b >= 0));
        ic.build(&sg, &st, &skews, mp.period - 2.0 * step, step);
        prop_assert!(ic.setup_bound[mp.critical_edge] < 0);
    }

    /// Canonical edge delays always satisfy max ≥ min, and sampled values
    /// respect the same order after clamping.
    #[test]
    fn sampled_edges_ordered(n_ffs in 6usize..30, seed in 0u64..30) {
        let circuit = GeneratorProfile::sized("p", n_ffs, n_ffs * 5).generate(seed);
        let lib = Library::industry_like();
        let model = VariationModel::paper_defaults();
        let tg = TimingGraph::build(&circuit, &lib, &model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        for e in &sg.edges {
            prop_assert!(e.max_delay.mean() >= e.min_delay.mean() - 1e-9);
        }
        let mut st = SampleTiming::for_graph(&sg);
        for k in 0..5 {
            let (globals, mut rng) = chip_rng(3, k);
            sample_canonical(&sg, &globals, &mut rng, &mut st);
            for e in 0..sg.edges.len() {
                prop_assert!(st.edge_max[e] >= st.edge_min[e]);
                prop_assert!(st.edge_min[e] >= 0.0);
            }
        }
    }

    /// Skews shift setup and hold bounds in opposite directions: delaying
    /// the capture clock relaxes setup into a FF and tightens its hold.
    #[test]
    fn skew_shifts_bounds_oppositely(n_ffs in 6usize..24, seed in 0u64..20) {
        let circuit = GeneratorProfile::sized("p", n_ffs, n_ffs * 5).generate(seed);
        let lib = Library::industry_like();
        let model = VariationModel::paper_defaults();
        let tg = TimingGraph::build(&circuit, &lib, &model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let mut st = SampleTiming::for_graph(&sg);
        let (globals, mut rng) = chip_rng(5, 0);
        sample_canonical(&sg, &globals, &mut rng, &mut st);
        // Pick an edge between two distinct FFs.
        let Some((e, edge)) = sg.edges.iter().enumerate().find(|(_, e)| e.from != e.to)
        else { return Ok(()); };
        let period = 10_000.0;
        let step = 5.0;
        let mut skews = vec![0.0; sg.n_ffs];
        let mut base = IntegerConstraints::for_graph(&sg);
        base.build(&sg, &st, &skews, period, step);
        skews[edge.to as usize] += 50.0; // capture clock 10 steps later
        let mut shifted = IntegerConstraints::for_graph(&sg);
        shifted.build(&sg, &st, &skews, period, step);
        prop_assert_eq!(shifted.setup_bound[e], base.setup_bound[e] + 10);
        prop_assert_eq!(shifted.hold_bound[e], base.hold_bound[e] - 10);
    }

    /// SIMD parity across the replay boundary: for random circuits, seeds
    /// and window starts, the allocation-free single-chip replay
    /// (`fill_one`) must be bit-identical to the corresponding SIMD batch
    /// row on *every* available kernel backend — including batch lengths
    /// that leave lane remainders.  The flow's speed-binning and
    /// constraint-replay paths rely on exactly this equivalence.
    #[test]
    fn fill_one_pins_simd_batch_rows(
        n_ffs in 6usize..28,
        seed in 0u64..30,
        stream in 0u64..1_000,
        first in 0u64..10_000,
        len in 1usize..11,
    ) {
        use psbi_timing::sample::{CanonicalBatchSampler, SampleBatch};
        use psbi_timing::Backend;
        let circuit = GeneratorProfile::sized("p", n_ffs, n_ffs * 5).generate(seed);
        let lib = Library::industry_like();
        let model = VariationModel::paper_defaults();
        let tg = TimingGraph::build(&circuit, &lib, &model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let sampler = CanonicalBatchSampler::new(&sg);
        let mut st = SampleTiming::for_graph(&sg);
        for backend in Backend::available() {
            let mut batch = SampleBatch::new();
            batch.reset(&sg, len);
            sampler.fill_with(backend, stream, first, &mut batch);
            for row in 0..len {
                sampler.fill_one(stream, first + row as u64, &mut st);
                let v = batch.view(row);
                for e in 0..sg.edges.len() {
                    prop_assert_eq!(
                        v.edge_max[e].to_bits(), st.edge_max[e].to_bits(),
                        "backend {} row {} edge {}", backend.name(), row, e
                    );
                    prop_assert_eq!(v.edge_min[e].to_bits(), st.edge_min[e].to_bits());
                }
                for i in 0..sg.n_ffs {
                    prop_assert_eq!(v.setup[i].to_bits(), st.setup[i].to_bits());
                    prop_assert_eq!(v.hold[i].to_bits(), st.hold[i].to_bits());
                }
            }
        }
    }
}
