//! Monte-Carlo chip sampling: concrete per-edge delays, one sample or a
//! whole batch at a time.
//!
//! Two samplers produce the same per-chip layout:
//!
//! * [`sample_canonical`] draws each sequential edge's min/max delay from
//!   its canonical form — `O(edges)` per sample, the default mode;
//! * [`GateLevelSampler`] draws every *gate* delay and re-propagates
//!   min/max path delays numerically through the cones — the exact
//!   reference mode (ablation A3 in `DESIGN.md` quantifies the difference).
//!
//! # Batched sampling
//!
//! The flow's hot loop evaluates tens of thousands of chips per pass, so
//! this module also provides a structure-of-arrays batch engine:
//!
//! * [`SampleBatch`] — flat `samples × width` buffers for edge max/min
//!   delays and per-FF setup/hold times, reused across passes (one
//!   allocation per worker for the whole flow);
//! * [`CanonicalBatchSampler`] — a batch-draw kernel over pre-flattened
//!   canonical coefficients that draws local terms by inverse transform
//!   (one uniform through the raw Acklam probit — no rejection loop),
//!   cutting the per-variate cost to a fraction of the scalar path's
//!   polar method;
//! * [`SampleBatch::fill_gate_level`] — the exact gate-level sampler over a
//!   batch, reusing one [`GateLevelSampler`] workspace.
//!
//! Each chip in a batch is drawn from its own [`chip_rng`] stream keyed by
//! the *global* sample index, so a batch decomposes deterministically: the
//! values of chip `k` do not depend on the batch boundaries or on how many
//! worker threads drew neighbouring chips.  The batch kernels consume the
//! per-chip random stream differently from the scalar functions (inverse
//! transform instead of the polar method), so batch and scalar draws of
//! the same chip index are two different — each internally reproducible —
//! populations with the same distribution.  The global parameter draws
//! come from [`chip_rng`] itself and are therefore identical in both
//! modes.
//!
//! Delays are clamped to be non-negative and `min ≤ max` is enforced (the
//! canonical mode draws the two forms with independent local terms, so rare
//! crossings are possible and physically meaningless).

use crate::graph::TimingGraph;
use crate::seq::SequentialGraph;
use crate::simd;
use psbi_variation::normal::draw_standard_normal;
use psbi_variation::{GlobalSample, N_PARAMS};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Concrete timing values of one manufactured chip.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleTiming {
    /// Max path delay per sequential edge (same order as
    /// [`SequentialGraph::edges`]).
    pub edge_max: Vec<f64>,
    /// Min path delay per sequential edge.
    pub edge_min: Vec<f64>,
    /// Setup time per FF.
    pub setup: Vec<f64>,
    /// Hold time per FF.
    pub hold: Vec<f64>,
}

impl SampleTiming {
    /// Pre-sizes the buffers for a graph.
    pub fn for_graph(sg: &SequentialGraph) -> Self {
        Self {
            edge_max: vec![0.0; sg.edges.len()],
            edge_min: vec![0.0; sg.edges.len()],
            setup: vec![0.0; sg.n_ffs],
            hold: vec![0.0; sg.n_ffs],
        }
    }

    /// Borrowed view of this chip's timing values.
    #[inline]
    pub fn view(&self) -> SampleView<'_> {
        SampleView {
            edge_max: &self.edge_max,
            edge_min: &self.edge_min,
            setup: &self.setup,
            hold: &self.hold,
        }
    }
}

/// Borrowed timing values of one chip — either a standalone
/// [`SampleTiming`] or one row of a [`SampleBatch`].
#[derive(Debug, Clone, Copy)]
pub struct SampleView<'a> {
    /// Max path delay per sequential edge.
    pub edge_max: &'a [f64],
    /// Min path delay per sequential edge.
    pub edge_min: &'a [f64],
    /// Setup time per FF.
    pub setup: &'a [f64],
    /// Hold time per FF.
    pub hold: &'a [f64],
}

/// Structure-of-arrays storage for a batch of Monte-Carlo chips.
///
/// All four fields are flat `len × width` row-major buffers (`width` is
/// `edges` for the delay pair and `n_ffs` for setup/hold).  [`reset`]
/// re-shapes the batch without shrinking capacity, so one `SampleBatch`
/// per worker serves every pass of the flow with a single allocation.
///
/// [`reset`]: SampleBatch::reset
#[derive(Debug, Clone, Default)]
pub struct SampleBatch {
    n_edges: usize,
    n_ffs: usize,
    len: usize,
    first_index: u64,
    edge_max: Vec<f64>,
    edge_min: Vec<f64>,
    setup: Vec<f64>,
    hold: Vec<f64>,
}

impl SampleBatch {
    /// An empty batch; call [`SampleBatch::reset`] before filling.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-shapes the batch for `len` chips of `sg`, reusing capacity.
    pub fn reset(&mut self, sg: &SequentialGraph, len: usize) {
        self.n_edges = sg.edges.len();
        self.n_ffs = sg.n_ffs;
        self.len = len;
        self.first_index = 0;
        self.edge_max.clear();
        self.edge_max.resize(len * self.n_edges, 0.0);
        self.edge_min.clear();
        self.edge_min.resize(len * self.n_edges, 0.0);
        self.setup.clear();
        self.setup.resize(len * self.n_ffs, 0.0);
        self.hold.clear();
        self.hold.resize(len * self.n_ffs, 0.0);
    }

    /// Number of chips currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds no chips.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Global sample index of row 0 (set by the fill kernels).
    #[inline]
    pub fn first_index(&self) -> u64 {
        self.first_index
    }

    /// Borrowed view of chip `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= len()`.
    #[inline]
    pub fn view(&self, row: usize) -> SampleView<'_> {
        assert!(row < self.len, "batch row out of range");
        let e = row * self.n_edges;
        let f = row * self.n_ffs;
        SampleView {
            edge_max: &self.edge_max[e..e + self.n_edges],
            edge_min: &self.edge_min[e..e + self.n_edges],
            setup: &self.setup[f..f + self.n_ffs],
            hold: &self.hold[f..f + self.n_ffs],
        }
    }

    /// Mutable row slices in `(edge_max, edge_min, setup, hold)` order.
    #[inline]
    fn row_mut(&mut self, row: usize) -> (&mut [f64], &mut [f64], &mut [f64], &mut [f64]) {
        let e = row * self.n_edges;
        let f = row * self.n_ffs;
        (
            &mut self.edge_max[e..e + self.n_edges],
            &mut self.edge_min[e..e + self.n_edges],
            &mut self.setup[f..f + self.n_ffs],
            &mut self.hold[f..f + self.n_ffs],
        )
    }

    /// Fills the batch with chips `first..first + len` of `stream` by
    /// exact gate-level propagation, reusing `sampler`'s workspaces.
    ///
    /// The batch must have been [`reset`](SampleBatch::reset) for the same
    /// graph the sampler was built from.
    pub fn fill_gate_level(
        &mut self,
        tg: &TimingGraph<'_>,
        sg: &SequentialGraph,
        sampler: &mut GateLevelSampler,
        stream: u64,
        first: u64,
    ) {
        assert_eq!(self.n_edges, sg.edges.len(), "batch not reset for graph");
        let _span = psbi_obs::Span::enter_with(
            "sample.batch.gate_level",
            &[("chips", self.len as u64), ("first", first)],
        );
        psbi_obs::metrics::counter_add("sample.batches", 1);
        psbi_obs::metrics::counter_add("sample.chips", self.len as u64);
        self.first_index = first;
        for row in 0..self.len {
            let (globals, mut rng) = chip_rng(stream, first + row as u64);
            let (edge_max, edge_min, setup, hold) = self.row_mut(row);
            sampler.sample_into(tg, sg, &globals, &mut rng, edge_max, edge_min, setup, hold);
        }
    }
}

/// The uniform feeding one inverse-transform draw: `(k + 0.5) / 2^52`
/// over a 52-bit `k`, strictly inside `(0, 1)` for every `k`.
///
/// 52 bits rather than 53 so `k + 0.5` is always exactly representable:
/// with 53 bits, `k = 2^53 − 1` would round `k + 0.5` up to `2^53` and
/// yield `u == 1.0` — a one-in-`2^53` draw that would feed `ln(0)` into
/// the probit tail branch and come back `NaN`.
#[inline]
fn unit_uniform<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 12) as f64 + 0.5) * (1.0 / (1u64 << 52) as f64)
}

/// One standard normal by inverse transform: a single 52-bit uniform
/// ([`unit_uniform`]) mapped through the raw Acklam probit (no rejection
/// loop, no `ln`/`sqrt` in the central 95 % of draws).  Roughly 2–3×
/// cheaper per variate than the polar method the scalar path uses;
/// statistically interchangeable (relative error of the inverse CDF
/// ≈ `1.15e-9`).
#[inline]
fn draw_standard_normal_inv<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    psbi_variation::normal::probit_fast(unit_uniform(rng))
}

/// Pre-flattened canonical coefficients of one form: mean, the global
/// sensitivities, and the independent sigma.  The fused scalar reference
/// path iterates these contiguous structs (one cache line per pair of
/// forms); the wide path reads the same coefficients from the
/// structure-of-arrays [`simd::FormGroup`]s instead.
#[derive(Debug, Clone, Copy)]
struct FlatForm {
    mean: f64,
    sens: [f64; N_PARAMS],
    indep: f64,
}

impl FlatForm {
    #[inline]
    fn of(form: &psbi_variation::CanonicalForm) -> Self {
        Self {
            mean: form.mean(),
            sens: *form.sensitivities(),
            indep: form.indep(),
        }
    }

    /// Scalar draw — the expression tree (left-associated sensitivity
    /// sum, one conditional local term) every wide backend reproduces
    /// lane-wise; see [`simd`] for the parity contract.
    #[inline]
    fn draw<R: Rng + ?Sized>(&self, globals: &GlobalSample, rng: &mut R) -> f64 {
        let mut v = self.mean;
        for p in 0..N_PARAMS {
            v += self.sens[p] * globals.delta[p];
        }
        if self.indep != 0.0 {
            v += self.indep * draw_standard_normal_inv(rng);
        }
        v
    }
}

/// Batch-draw kernel for the canonical edge forms.
///
/// Built once per graph; [`fill`](CanonicalBatchSampler::fill) then draws
/// any window of the sample stream into a [`SampleBatch`].  The canonical
/// coefficients are flattened into four structure-of-arrays groups
/// (setup, hold, edge-max, edge-min — see [`simd::FormGroup`]) so the
/// per-chip draw is a handful of linear sweeps the wide kernels can
/// vectorise.
///
/// # Kernel dispatch
///
/// [`fill`] and [`fill_one`] run on the process-wide backend picked by
/// [`simd::active`] (AVX2 / NEON / portable lanes, or the fused scalar
/// reference under `PSBI_FORCE_SCALAR=1`).  All backends are
/// **bit-identical** — see the [`simd`] module docs for the parity
/// argument — so the choice never affects results, only throughput.
/// [`fill_with`](CanonicalBatchSampler::fill_with) pins an explicit
/// backend for benchmarks and parity tests.
///
/// [`fill`]: CanonicalBatchSampler::fill
/// [`fill_one`]: CanonicalBatchSampler::fill_one
/// [`simd::FormGroup`]: crate::simd
#[derive(Debug, Clone)]
pub struct CanonicalBatchSampler {
    setup: simd::FormGroup,
    hold: simd::FormGroup,
    emax: simd::FormGroup,
    emin: simd::FormGroup,
    /// Interleaved `setup, hold` forms per FF — the scalar path's
    /// cache-friendly AoS copy of the same coefficients.
    ff_forms: Vec<FlatForm>,
    /// Interleaved `max, min` forms per edge (scalar path).
    edge_forms: Vec<FlatForm>,
    /// Dense-layout index of every RNG draw, in the scalar draw order
    /// (setup₀, hold₀, setup₁, …, then max₀, min₀, max₁, …), skipping
    /// forms with a zero independent term — the uniform-consumption
    /// contract shared by the scalar and wide paths.
    draw_slots: Vec<u32>,
    /// Total forms (`2·n_ffs + 2·n_edges`) = dense scratch length.
    n_forms: usize,
}

/// Dense scratch layout: `setup | hold | edge_max | edge_min`.
#[inline]
fn dense_index(n_ffs: usize, n_edges: usize, group: usize, k: usize) -> usize {
    match group {
        0 => k,
        1 => n_ffs + k,
        2 => 2 * n_ffs + k,
        _ => 2 * n_ffs + n_edges + k,
    }
}

impl CanonicalBatchSampler {
    /// Flattens the canonical forms of `sg`.
    pub fn new(sg: &SequentialGraph) -> Self {
        let n_ffs = sg.n_ffs;
        let n_edges = sg.edges.len();
        let mut setup = simd::FormGroup::new();
        let mut hold = simd::FormGroup::new();
        let mut ff_forms = Vec::with_capacity(2 * n_ffs);
        for i in 0..n_ffs {
            setup.push(&sg.setup[i]);
            hold.push(&sg.hold[i]);
            ff_forms.push(FlatForm::of(&sg.setup[i]));
            ff_forms.push(FlatForm::of(&sg.hold[i]));
        }
        let mut emax = simd::FormGroup::new();
        let mut emin = simd::FormGroup::new();
        let mut edge_forms = Vec::with_capacity(2 * n_edges);
        for edge in &sg.edges {
            emax.push(&edge.max_delay);
            emin.push(&edge.min_delay);
            edge_forms.push(FlatForm::of(&edge.max_delay));
            edge_forms.push(FlatForm::of(&edge.min_delay));
        }
        let n_forms = 2 * n_ffs + 2 * n_edges;
        assert!(n_forms <= u32::MAX as usize, "graph too large for draw map");
        // RNG draw order (must mirror `draw_chip_scalar` exactly): FF
        // setup/hold pairs first, then the edge max/min pairs, skipping
        // forms without an independent term.
        let mut draw_slots = Vec::with_capacity(n_forms);
        for i in 0..n_ffs {
            if setup.indep[i] != 0.0 {
                draw_slots.push(dense_index(n_ffs, n_edges, 0, i) as u32);
            }
            if hold.indep[i] != 0.0 {
                draw_slots.push(dense_index(n_ffs, n_edges, 1, i) as u32);
            }
        }
        for e in 0..n_edges {
            if emax.indep[e] != 0.0 {
                draw_slots.push(dense_index(n_ffs, n_edges, 2, e) as u32);
            }
            if emin.indep[e] != 0.0 {
                draw_slots.push(dense_index(n_ffs, n_edges, 3, e) as u32);
            }
        }
        Self {
            setup,
            hold,
            emax,
            emin,
            ff_forms,
            edge_forms,
            draw_slots,
            n_forms,
        }
    }

    #[inline]
    fn n_ffs(&self) -> usize {
        self.setup.len()
    }

    #[inline]
    fn n_edges(&self) -> usize {
        self.emax.len()
    }

    /// Fills `batch` with chips `first..first + batch.len()` of `stream`
    /// on the process-wide kernel backend ([`simd::active`]).
    ///
    /// # Panics
    ///
    /// Panics if the batch shape does not match this sampler's graph.
    pub fn fill(&self, stream: u64, first: u64, batch: &mut SampleBatch) {
        self.fill_with(simd::active(), stream, first, batch);
    }

    /// [`fill`](CanonicalBatchSampler::fill) on an explicit kernel
    /// backend.  Every backend produces bit-identical buffers; this
    /// entry point exists for parity tests and scalar-vs-SIMD benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if the batch shape does not match this sampler's graph, or
    /// if `backend` is not available on this host.
    pub fn fill_with(
        &self,
        backend: simd::Backend,
        stream: u64,
        first: u64,
        batch: &mut SampleBatch,
    ) {
        assert_eq!(
            batch.n_edges,
            self.n_edges(),
            "batch not reset for this sampler's graph"
        );
        assert_eq!(batch.n_ffs, self.n_ffs());
        assert!(
            backend.is_available(),
            "kernel backend {} not available on this host",
            backend.name()
        );
        let _span = psbi_obs::Span::enter_with(
            "sample.batch.fill",
            &[("chips", batch.len as u64), ("first", first)],
        );
        psbi_obs::metrics::counter_add("sample.batches", 1);
        psbi_obs::metrics::counter_add("sample.chips", batch.len as u64);
        // Which kernel the sampling engine is running (index into
        // [`simd::Backend`]'s declaration order) — deterministic for a
        // fixed environment, so it participates in metric-determinism
        // tests unlike the wall-time histograms.
        psbi_obs::metrics::gauge_set("simd.backend", backend as u64);
        if psbi_fault::failpoint!("sample.batch.corrupt", "first" = first) {
            // Models *detected* batch corruption (e.g. a poisoned draw
            // buffer): the fill dies instead of returning garbage, and the
            // fleet's per-job retry recomputes the batch deterministically.
            panic!("injected fault: sample.batch.corrupt");
        }
        batch.first_index = first;
        let n_edges = batch.n_edges;
        let n_ffs = batch.n_ffs;
        if backend == simd::Backend::Scalar {
            for row in 0..batch.len {
                let f0 = row * n_ffs;
                let e0 = row * n_edges;
                self.draw_chip_scalar(
                    stream,
                    first + row as u64,
                    &mut batch.edge_max[e0..e0 + n_edges],
                    &mut batch.edge_min[e0..e0 + n_edges],
                    &mut batch.setup[f0..f0 + n_ffs],
                    &mut batch.hold[f0..f0 + n_ffs],
                );
            }
        } else {
            simd::with_scratch(|scratch| {
                scratch.ensure(self.n_forms);
                for row in 0..batch.len {
                    let f0 = row * n_ffs;
                    let e0 = row * n_edges;
                    self.draw_chip_wide(
                        backend,
                        scratch,
                        stream,
                        first + row as u64,
                        &mut batch.edge_max[e0..e0 + n_edges],
                        &mut batch.edge_min[e0..e0 + n_edges],
                        &mut batch.setup[f0..f0 + n_ffs],
                        &mut batch.hold[f0..f0 + n_ffs],
                    );
                }
            });
        }
    }

    /// Draws one chip directly into a reused [`SampleTiming`] — the
    /// allocation-free single-chip form of [`CanonicalBatchSampler::fill`],
    /// used by the flow's replay paths (speed binning, constraint replay).
    /// Produces exactly the chip a batch containing `index` would hold
    /// (kernel backends are bit-identical, so this holds regardless of
    /// which backend filled the batch).
    pub fn fill_one(&self, stream: u64, index: u64, out: &mut SampleTiming) {
        self.fill_one_with(simd::active(), stream, index, out);
    }

    /// [`fill_one`](CanonicalBatchSampler::fill_one) on an explicit
    /// kernel backend (parity tests and benchmarks).
    ///
    /// # Panics
    ///
    /// Panics if `backend` is not available on this host.
    pub fn fill_one_with(
        &self,
        backend: simd::Backend,
        stream: u64,
        index: u64,
        out: &mut SampleTiming,
    ) {
        assert!(
            backend.is_available(),
            "kernel backend {} not available on this host",
            backend.name()
        );
        let n_edges = self.n_edges();
        let n_ffs = self.n_ffs();
        out.edge_max.clear();
        out.edge_max.resize(n_edges, 0.0);
        out.edge_min.clear();
        out.edge_min.resize(n_edges, 0.0);
        out.setup.clear();
        out.setup.resize(n_ffs, 0.0);
        out.hold.clear();
        out.hold.resize(n_ffs, 0.0);
        if backend == simd::Backend::Scalar {
            self.draw_chip_scalar(
                stream,
                index,
                &mut out.edge_max,
                &mut out.edge_min,
                &mut out.setup,
                &mut out.hold,
            );
        } else {
            simd::with_scratch(|scratch| {
                scratch.ensure(self.n_forms);
                self.draw_chip_wide(
                    backend,
                    scratch,
                    stream,
                    index,
                    &mut out.edge_max,
                    &mut out.edge_min,
                    &mut out.setup,
                    &mut out.hold,
                );
            });
        }
    }

    /// Fused per-chip scalar kernel — the reference path (and the
    /// `PSBI_FORCE_SCALAR=1` path).  Draw order: FF setup/hold first,
    /// then the edge pairs — every caller must go through here or
    /// [`draw_chip_wide`](Self::draw_chip_wide) (which consumes the RNG in
    /// the identical order) so a chip's values depend only on
    /// `(stream, index)`.
    #[allow(clippy::too_many_arguments)]
    fn draw_chip_scalar(
        &self,
        stream: u64,
        index: u64,
        edge_max: &mut [f64],
        edge_min: &mut [f64],
        setup: &mut [f64],
        hold: &mut [f64],
    ) {
        let (globals, mut rng) = chip_rng(stream, index);
        for (i, pair) in setup.iter_mut().zip(hold.iter_mut()).enumerate() {
            *pair.0 = self.ff_forms[2 * i].draw(&globals, &mut rng).max(0.0);
            *pair.1 = self.ff_forms[2 * i + 1].draw(&globals, &mut rng).max(0.0);
        }
        for (e, pair) in edge_max.iter_mut().zip(edge_min.iter_mut()).enumerate() {
            let dmax = self.edge_forms[2 * e].draw(&globals, &mut rng).max(0.0);
            let dmin = self.edge_forms[2 * e + 1].draw(&globals, &mut rng).max(0.0);
            *pair.0 = dmax.max(dmin);
            *pair.1 = dmin.min(dmax);
        }
    }

    /// Staged per-chip wide kernel: (1) consume the chip's RNG stream
    /// into dense uniform slots — the same uniforms, in the same order,
    /// as the scalar path; (2) probit the whole chip in one vectorised
    /// sweep; (3) combine coefficients with the globals per form group;
    /// (4) order the edge pairs.  Bit-identical to
    /// [`draw_chip_scalar`](Self::draw_chip_scalar) on every backend.
    #[allow(clippy::too_many_arguments)]
    fn draw_chip_wide(
        &self,
        backend: simd::Backend,
        scratch: &mut simd::Scratch,
        stream: u64,
        index: u64,
        edge_max: &mut [f64],
        edge_min: &mut [f64],
        setup: &mut [f64],
        hold: &mut [f64],
    ) {
        let (globals, mut rng) = chip_rng(stream, index);
        for &slot in &self.draw_slots {
            scratch.u[slot as usize] = unit_uniform(&mut rng);
        }
        let n = self.n_forms;
        simd::probit_dense(backend, &scratch.u[..n], &mut scratch.z[..n]);
        let n_ffs = self.n_ffs();
        let n_edges = self.n_edges();
        let z = &scratch.z;
        simd::combine_draws(backend, &self.setup, &globals.delta, &z[..n_ffs], setup);
        simd::combine_draws(
            backend,
            &self.hold,
            &globals.delta,
            &z[n_ffs..2 * n_ffs],
            hold,
        );
        simd::combine_draws(
            backend,
            &self.emax,
            &globals.delta,
            &z[2 * n_ffs..2 * n_ffs + n_edges],
            edge_max,
        );
        simd::combine_draws(
            backend,
            &self.emin,
            &globals.delta,
            &z[2 * n_ffs + n_edges..n],
            edge_min,
        );
        simd::order_edge_pairs(backend, edge_max, edge_min);
    }
}

/// Draws one chip from the canonical edge forms (fast path).
pub fn sample_canonical<R: Rng + ?Sized>(
    sg: &SequentialGraph,
    globals: &GlobalSample,
    rng: &mut R,
    out: &mut SampleTiming,
) {
    out.edge_max.resize(sg.edges.len(), 0.0);
    out.edge_min.resize(sg.edges.len(), 0.0);
    out.setup.resize(sg.n_ffs, 0.0);
    out.hold.resize(sg.n_ffs, 0.0);
    for (e, edge) in sg.edges.iter().enumerate() {
        let dmax = edge.max_delay.sample(globals, rng).max(0.0);
        let dmin = edge.min_delay.sample(globals, rng).max(0.0);
        out.edge_max[e] = dmax.max(dmin);
        out.edge_min[e] = dmin.min(dmax);
    }
    for i in 0..sg.n_ffs {
        out.setup[i] = sg.setup[i].sample(globals, rng).max(0.0);
        out.hold[i] = sg.hold[i].sample(globals, rng).max(0.0);
    }
}

/// Exact gate-level sampler: draws every gate delay and propagates.
///
/// Holds reusable workspaces; create once per worker thread.
#[derive(Debug)]
pub struct GateLevelSampler {
    gate_val: Vec<f64>,
    clkq_val: Vec<f64>,
    arr_max: Vec<f64>,
    arr_min: Vec<f64>,
    mark: Vec<u32>,
}

impl GateLevelSampler {
    /// Creates workspaces sized for `tg`.
    pub fn new(tg: &TimingGraph<'_>) -> Self {
        let n = tg.circuit.len();
        Self {
            gate_val: vec![0.0; n],
            clkq_val: vec![0.0; tg.num_ffs()],
            arr_max: vec![0.0; n],
            arr_min: vec![0.0; n],
            mark: vec![u32::MAX; n],
        }
    }

    /// Draws one chip at gate level.
    ///
    /// The sequential graph must have been extracted from the same timing
    /// graph (edge order follows its cone traversal).
    pub fn sample<R: Rng + ?Sized>(
        &mut self,
        tg: &TimingGraph<'_>,
        sg: &SequentialGraph,
        globals: &GlobalSample,
        rng: &mut R,
        out: &mut SampleTiming,
    ) {
        out.edge_max.resize(sg.edges.len(), 0.0);
        out.edge_min.resize(sg.edges.len(), 0.0);
        out.setup.resize(sg.n_ffs, 0.0);
        out.hold.resize(sg.n_ffs, 0.0);
        self.sample_into(
            tg,
            sg,
            globals,
            rng,
            &mut out.edge_max,
            &mut out.edge_min,
            &mut out.setup,
            &mut out.hold,
        );
    }

    /// Draws one chip at gate level directly into caller-provided slices
    /// (e.g. one row of a [`SampleBatch`]).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match `sg`.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_into<R: Rng + ?Sized>(
        &mut self,
        tg: &TimingGraph<'_>,
        sg: &SequentialGraph,
        globals: &GlobalSample,
        rng: &mut R,
        edge_max: &mut [f64],
        edge_min: &mut [f64],
        setup: &mut [f64],
        hold: &mut [f64],
    ) {
        let circuit = tg.circuit;
        assert_eq!(edge_max.len(), sg.edges.len(), "edge slice mismatch");
        assert_eq!(edge_min.len(), sg.edges.len(), "edge slice mismatch");
        assert_eq!(setup.len(), sg.n_ffs, "setup slice mismatch");
        assert_eq!(hold.len(), sg.n_ffs, "hold slice mismatch");

        for &g in tg.topo() {
            self.gate_val[g.index()] = tg.gate_delay(g).sample(globals, rng).max(0.0);
        }
        for i in 0..sg.n_ffs {
            self.clkq_val[i] = tg.clk_to_q(i).sample(globals, rng).max(0.0);
            setup[i] = sg.setup[i].sample(globals, rng).max(0.0);
            hold[i] = sg.hold[i].sample(globals, rng).max(0.0);
        }

        self.mark.fill(u32::MAX);
        let mut edge_cursor = 0usize;
        for i in 0..sg.n_ffs {
            let stamp = i as u32;
            let ff_node = circuit.ff_ids()[i];
            self.mark[ff_node.index()] = stamp;
            self.arr_max[ff_node.index()] = self.clkq_val[i];
            self.arr_min[ff_node.index()] = self.clkq_val[i];
            let cone = sg.cones().cone(i);
            for &g in &cone.gates {
                let mut mx = f64::NEG_INFINITY;
                let mut mn = f64::INFINITY;
                for &f in circuit.fanins(g) {
                    if self.mark[f.index()] == stamp {
                        mx = mx.max(self.arr_max[f.index()]);
                        mn = mn.min(self.arr_min[f.index()]);
                    }
                }
                debug_assert!(mx.is_finite(), "cone gate without reachable fanin");
                let d = self.gate_val[g.index()];
                self.arr_max[g.index()] = mx + d;
                self.arr_min[g.index()] = mn + d;
                self.mark[g.index()] = stamp;
            }
            for &(_, driver) in &cone.sinks {
                edge_max[edge_cursor] = self.arr_max[driver.index()];
                edge_min[edge_cursor] = self.arr_min[driver.index()];
                edge_cursor += 1;
            }
        }
        debug_assert_eq!(edge_cursor, sg.edges.len());
    }
}

/// Draws the global parameter deviations for sample `index` of a run and
/// returns the per-sample RNG for the local terms.
pub fn chip_rng(base_seed: u64, index: u64) -> (GlobalSample, rand::rngs::StdRng) {
    let mut rng = psbi_variation::sample_rng(base_seed, index);
    let mut globals = GlobalSample::default();
    for d in &mut globals.delta {
        *d = draw_standard_normal(&mut rng);
    }
    (globals, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TimingGraph;
    use psbi_liberty::Library;
    use psbi_netlist::bench_suite;
    use psbi_variation::VariationModel;

    struct Fixture {
        circuit: psbi_netlist::Circuit,
        lib: Library,
        model: VariationModel,
    }

    impl Fixture {
        fn new(seed: u64) -> Self {
            Self {
                circuit: bench_suite::tiny_demo(seed),
                lib: Library::industry_like(),
                model: VariationModel::paper_defaults(),
            }
        }
    }

    #[test]
    fn canonical_sampling_respects_order_invariants() {
        let fx = Fixture::new(1);
        let tg = TimingGraph::build(&fx.circuit, &fx.lib, &fx.model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let mut st = SampleTiming::for_graph(&sg);
        for k in 0..50 {
            let (globals, mut rng) = chip_rng(42, k);
            sample_canonical(&sg, &globals, &mut rng, &mut st);
            for e in 0..sg.edges.len() {
                assert!(st.edge_max[e] >= st.edge_min[e]);
                assert!(st.edge_min[e] >= 0.0);
            }
            for i in 0..sg.n_ffs {
                assert!(st.setup[i] > 0.0);
                assert!(st.hold[i] >= 0.0);
            }
        }
    }

    #[test]
    fn gate_level_sampling_matches_structure() {
        let fx = Fixture::new(2);
        let tg = TimingGraph::build(&fx.circuit, &fx.lib, &fx.model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let mut sampler = GateLevelSampler::new(&tg);
        let mut st = SampleTiming::for_graph(&sg);
        let (globals, mut rng) = chip_rng(7, 0);
        sampler.sample(&tg, &sg, &globals, &mut rng, &mut st);
        assert_eq!(st.edge_max.len(), sg.edges.len());
        for e in 0..sg.edges.len() {
            assert!(st.edge_max[e] >= st.edge_min[e] - 1e-9);
        }
    }

    #[test]
    fn canonical_matches_gate_level_statistics() {
        // The canonical (SSTA) edge forms should reproduce the gate-level
        // Monte-Carlo mean and sigma of each edge's max delay within a few
        // percent (Clark's approximation).
        let fx = Fixture::new(3);
        let tg = TimingGraph::build(&fx.circuit, &fx.lib, &fx.model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let n = 20_000usize;
        let mut sampler = GateLevelSampler::new(&tg);
        let mut st = SampleTiming::for_graph(&sg);
        let ne = sg.edges.len();
        let mut sum = vec![0.0; ne];
        let mut sum2 = vec![0.0; ne];
        for k in 0..n {
            let (globals, mut rng) = chip_rng(11, k as u64);
            sampler.sample(&tg, &sg, &globals, &mut rng, &mut st);
            for e in 0..ne {
                sum[e] += st.edge_max[e];
                sum2[e] += st.edge_max[e] * st.edge_max[e];
            }
        }
        for e in 0..ne {
            let mc_mean = sum[e] / n as f64;
            let mc_var = (sum2[e] / n as f64 - mc_mean * mc_mean).max(0.0);
            let canon = &sg.edges[e].max_delay;
            let dm = (canon.mean() - mc_mean).abs() / mc_mean;
            assert!(
                dm < 0.04,
                "edge {e}: mean {} vs MC {}",
                canon.mean(),
                mc_mean
            );
            let ds = (canon.sigma() - mc_var.sqrt()).abs() / mc_mean;
            assert!(
                ds < 0.05,
                "edge {e}: sigma {} vs MC {}",
                canon.sigma(),
                mc_var.sqrt()
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let fx = Fixture::new(4);
        let tg = TimingGraph::build(&fx.circuit, &fx.lib, &fx.model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let mut a = SampleTiming::for_graph(&sg);
        let mut b = SampleTiming::for_graph(&sg);
        let (g1, mut r1) = chip_rng(5, 9);
        let (g2, mut r2) = chip_rng(5, 9);
        sample_canonical(&sg, &g1, &mut r1, &mut a);
        sample_canonical(&sg, &g2, &mut r2, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn batch_rows_independent_of_batch_boundaries() {
        // Chip k drawn in a batch starting at 0 must equal chip k drawn in
        // a batch starting elsewhere — the SoA engine's determinism
        // contract that makes work-stealing parallelism bit-reproducible.
        let fx = Fixture::new(6);
        let tg = TimingGraph::build(&fx.circuit, &fx.lib, &fx.model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let sampler = CanonicalBatchSampler::new(&sg);
        let mut big = SampleBatch::new();
        big.reset(&sg, 16);
        sampler.fill(99, 0, &mut big);
        let mut shifted = SampleBatch::new();
        shifted.reset(&sg, 4);
        sampler.fill(99, 10, &mut shifted);
        for row in 0..4 {
            let a = big.view(10 + row);
            let b = shifted.view(row);
            assert_eq!(a.edge_max, b.edge_max);
            assert_eq!(a.edge_min, b.edge_min);
            assert_eq!(a.setup, b.setup);
            assert_eq!(a.hold, b.hold);
        }
        assert_eq!(shifted.first_index(), 10);
    }

    #[test]
    fn batch_respects_order_invariants() {
        let fx = Fixture::new(7);
        let tg = TimingGraph::build(&fx.circuit, &fx.lib, &fx.model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let sampler = CanonicalBatchSampler::new(&sg);
        let mut batch = SampleBatch::new();
        batch.reset(&sg, 40);
        sampler.fill(3, 0, &mut batch);
        for row in 0..batch.len() {
            let v = batch.view(row);
            for e in 0..sg.edges.len() {
                assert!(v.edge_max[e] >= v.edge_min[e]);
                assert!(v.edge_min[e] >= 0.0);
            }
            for i in 0..sg.n_ffs {
                assert!(v.setup[i] > 0.0);
                assert!(v.hold[i] >= 0.0);
            }
        }
    }

    #[test]
    fn fill_one_matches_batch_rows() {
        // The allocation-free single-chip replay must be bit-identical to
        // the corresponding batch row.
        let fx = Fixture::new(11);
        let tg = TimingGraph::build(&fx.circuit, &fx.lib, &fx.model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let sampler = CanonicalBatchSampler::new(&sg);
        let mut batch = SampleBatch::new();
        batch.reset(&sg, 6);
        sampler.fill(13, 40, &mut batch);
        let mut st = SampleTiming::for_graph(&sg);
        for row in 0..6 {
            sampler.fill_one(13, 40 + row as u64, &mut st);
            let v = batch.view(row);
            assert_eq!(v.edge_max, &st.edge_max[..]);
            assert_eq!(v.edge_min, &st.edge_min[..]);
            assert_eq!(v.setup, &st.setup[..]);
            assert_eq!(v.hold, &st.hold[..]);
        }
    }

    #[test]
    fn wide_backends_bit_identical_to_scalar() {
        // The tentpole parity contract: every kernel backend fills the
        // same bytes as the fused scalar reference, for batch lengths
        // that do and do not divide the lane widths (4 for AVX2/portable,
        // 2 for NEON) and for a non-zero window start.
        let fx = Fixture::new(21);
        let tg = TimingGraph::build(&fx.circuit, &fx.lib, &fx.model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let sampler = CanonicalBatchSampler::new(&sg);
        for len in [1usize, 2, 3, 5, 8, 13] {
            let mut reference = SampleBatch::new();
            reference.reset(&sg, len);
            sampler.fill_with(crate::simd::Backend::Scalar, 33, 7, &mut reference);
            for backend in crate::simd::Backend::available() {
                let mut batch = SampleBatch::new();
                batch.reset(&sg, len);
                sampler.fill_with(backend, 33, 7, &mut batch);
                for row in 0..len {
                    let a = reference.view(row);
                    let b = batch.view(row);
                    for e in 0..sg.edges.len() {
                        assert_eq!(
                            a.edge_max[e].to_bits(),
                            b.edge_max[e].to_bits(),
                            "backend {} len {len} row {row} edge_max {e}",
                            backend.name()
                        );
                        assert_eq!(a.edge_min[e].to_bits(), b.edge_min[e].to_bits());
                    }
                    for i in 0..sg.n_ffs {
                        assert_eq!(a.setup[i].to_bits(), b.setup[i].to_bits());
                        assert_eq!(a.hold[i].to_bits(), b.hold[i].to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn fill_one_bit_identical_across_backends() {
        let fx = Fixture::new(22);
        let tg = TimingGraph::build(&fx.circuit, &fx.lib, &fx.model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let sampler = CanonicalBatchSampler::new(&sg);
        let mut reference = SampleTiming::for_graph(&sg);
        let mut st = SampleTiming::for_graph(&sg);
        for index in [0u64, 1, 63, 1_000_003] {
            sampler.fill_one_with(crate::simd::Backend::Scalar, 5, index, &mut reference);
            for backend in crate::simd::Backend::available() {
                sampler.fill_one_with(backend, 5, index, &mut st);
                assert_eq!(st, reference, "backend {} index {index}", backend.name());
            }
        }
    }

    #[test]
    fn batch_reset_reuses_allocation() {
        let fx = Fixture::new(8);
        let tg = TimingGraph::build(&fx.circuit, &fx.lib, &fx.model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let mut batch = SampleBatch::new();
        batch.reset(&sg, 64);
        let cap = batch.edge_max.capacity();
        batch.reset(&sg, 32);
        assert_eq!(batch.len(), 32);
        assert_eq!(batch.edge_max.capacity(), cap, "reset must not shrink");
        batch.reset(&sg, 64);
        assert_eq!(batch.edge_max.capacity(), cap, "reset must not regrow");
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn batch_matches_scalar_statistics() {
        // Batch and scalar kernels consume the chip stream differently
        // (spare-normal caching) but must agree in distribution: compare
        // the mean of each edge's max delay over many chips.
        let fx = Fixture::new(9);
        let tg = TimingGraph::build(&fx.circuit, &fx.lib, &fx.model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let n = 4000usize;
        let mut st = SampleTiming::for_graph(&sg);
        let ne = sg.edges.len();
        let mut scalar_sum = vec![0.0; ne];
        for k in 0..n {
            let (globals, mut rng) = chip_rng(21, k as u64);
            sample_canonical(&sg, &globals, &mut rng, &mut st);
            for e in 0..ne {
                scalar_sum[e] += st.edge_max[e];
            }
        }
        let sampler = CanonicalBatchSampler::new(&sg);
        let mut batch = SampleBatch::new();
        batch.reset(&sg, n);
        sampler.fill(21, 0, &mut batch);
        let mut batch_sum = vec![0.0; ne];
        for row in 0..n {
            let v = batch.view(row);
            for e in 0..ne {
                batch_sum[e] += v.edge_max[e];
            }
        }
        for e in 0..ne {
            let sm = scalar_sum[e] / n as f64;
            let bm = batch_sum[e] / n as f64;
            assert!(
                (sm - bm).abs() / sm.max(1.0) < 0.05,
                "edge {e}: scalar mean {sm} vs batch mean {bm}"
            );
        }
    }

    #[test]
    fn gate_level_batch_matches_scalar_kernel() {
        // The gate-level batch fill reuses the scalar kernel chip-by-chip,
        // so rows must be bit-identical to direct scalar draws.
        let fx = Fixture::new(10);
        let tg = TimingGraph::build(&fx.circuit, &fx.lib, &fx.model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let mut sampler = GateLevelSampler::new(&tg);
        let mut batch = SampleBatch::new();
        batch.reset(&sg, 8);
        batch.fill_gate_level(&tg, &sg, &mut sampler, 17, 3);
        let mut st = SampleTiming::for_graph(&sg);
        for row in 0..8 {
            let (globals, mut rng) = chip_rng(17, 3 + row as u64);
            sampler.sample(&tg, &sg, &globals, &mut rng, &mut st);
            let v = batch.view(row);
            assert_eq!(v.edge_max, &st.edge_max[..]);
            assert_eq!(v.edge_min, &st.edge_min[..]);
            assert_eq!(v.setup, &st.setup[..]);
            assert_eq!(v.hold, &st.hold[..]);
        }
    }

    #[test]
    fn global_shift_moves_all_edges() {
        // A strongly positive global sample should push essentially every
        // edge above its mean.
        let fx = Fixture::new(5);
        let tg = TimingGraph::build(&fx.circuit, &fx.lib, &fx.model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let mut st = SampleTiming::for_graph(&sg);
        let globals = GlobalSample {
            delta: [3.0, 3.0, 3.0],
        };
        let mut rng = psbi_variation::sample_rng(1, 1);
        sample_canonical(&sg, &globals, &mut rng, &mut st);
        let above = (0..sg.edges.len())
            .filter(|&e| st.edge_max[e] > sg.edges[e].max_delay.mean())
            .count();
        assert!(above as f64 > 0.9 * sg.edges.len() as f64);
    }
}
