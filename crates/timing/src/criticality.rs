//! Statistical criticality analysis of sequential edges.
//!
//! For a population of sampled chips, records how often each FF→FF edge
//! violates its setup or hold constraint at `x = 0` and how often it *is*
//! the binding (minimum-period-setting) edge.  This is the diagnostic view
//! behind the insertion flow: buffers end up at the endpoints of edges that
//! rank high here.

use crate::constraint::{min_period, IntegerConstraints};
use crate::sample::SampleTiming;
use crate::seq::SequentialGraph;
use serde::{Deserialize, Serialize};

/// Violation statistics per sequential edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalityReport {
    /// Chips in the population.
    pub samples: u64,
    /// Per edge: chips violating the setup constraint at the target period.
    pub setup_violations: Vec<u64>,
    /// Per edge: chips violating the hold constraint.
    pub hold_violations: Vec<u64>,
    /// Per edge: chips whose unbuffered minimum period this edge sets.
    pub binding: Vec<u64>,
    /// Chips with at least one violation.
    pub failing_chips: u64,
}

impl CriticalityReport {
    /// Edges sorted by decreasing setup-violation frequency, with their
    /// violation fraction; at most `k` entries, zero-frequency edges
    /// omitted.
    pub fn top_setup_edges(&self, k: usize) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, u64)> = self
            .setup_violations
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, c)| *c > 0)
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v.into_iter()
            .map(|(e, c)| (e, c as f64 / self.samples as f64))
            .collect()
    }

    /// Fraction of chips with at least one violation (1 − unbuffered yield).
    pub fn failing_fraction(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.failing_chips as f64 / self.samples as f64
    }

    /// Number of edges that are ever critical (binding) in the population.
    pub fn distinct_binding_edges(&self) -> usize {
        self.binding.iter().filter(|c| **c > 0).count()
    }
}

/// Analyses edge criticality over `samples` chips produced by `fill`.
///
/// `fill(k, &mut st)` must populate chip `k`'s timing (the flow passes its
/// seeded sampler); `period`/`step` define the constraint discretisation.
///
/// # Panics
///
/// Panics if the graph has no edges or `step <= 0`.
pub fn analyze<F>(
    sg: &SequentialGraph,
    skews: &[f64],
    period: f64,
    step: f64,
    samples: u64,
    mut fill: F,
) -> CriticalityReport
where
    F: FnMut(u64, &mut SampleTiming),
{
    assert!(!sg.edges.is_empty(), "graph has no sequential edges");
    let mut st = SampleTiming::for_graph(sg);
    let mut ic = IntegerConstraints::for_graph(sg);
    let ne = sg.edges.len();
    let mut report = CriticalityReport {
        samples,
        setup_violations: vec![0; ne],
        hold_violations: vec![0; ne],
        binding: vec![0; ne],
        failing_chips: 0,
    };
    for k in 0..samples {
        fill(k, &mut st);
        ic.build(sg, &st, skews, period, step);
        let mut failed = false;
        for e in 0..ne {
            if ic.setup_bound[e] < 0 {
                report.setup_violations[e] += 1;
                failed = true;
            }
            if ic.hold_bound[e] < 0 {
                report.hold_violations[e] += 1;
                failed = true;
            }
        }
        if failed {
            report.failing_chips += 1;
        }
        let mp = min_period(sg, &st, skews);
        report.binding[mp.critical_edge] += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{chip_rng, sample_canonical};
    use crate::seq::SeqEdge;
    use psbi_variation::CanonicalForm;

    fn graph() -> SequentialGraph {
        // Edge 0 is slow and variable; edge 1 is fast and safe.
        SequentialGraph::from_parts(
            2,
            vec![
                SeqEdge {
                    from: 0,
                    to: 1,
                    max_delay: CanonicalForm::with_parts(200.0, [15.0, 0.0, 0.0], 8.0),
                    min_delay: CanonicalForm::constant(80.0),
                },
                SeqEdge {
                    from: 1,
                    to: 0,
                    max_delay: CanonicalForm::with_parts(100.0, [5.0, 0.0, 0.0], 3.0),
                    min_delay: CanonicalForm::constant(60.0),
                },
            ],
            vec![CanonicalForm::constant(10.0); 2],
            vec![CanonicalForm::constant(4.0); 2],
        )
    }

    fn run(period: f64) -> CriticalityReport {
        let sg = graph();
        let skews = [0.0, 0.0];
        analyze(&sg, &skews, period, 2.0, 2000, |k, st| {
            let (g, mut rng) = chip_rng(31, k);
            sample_canonical(&sg, &g, &mut rng, st);
        })
    }

    #[test]
    fn slow_edge_dominates() {
        // Period near edge 0's mean requirement (200 + 10 setup): edge 0
        // violates often, edge 1 basically never.
        let r = run(212.0);
        assert!(r.setup_violations[0] > 400, "{:?}", r.setup_violations);
        assert!(r.setup_violations[1] < 10);
        assert_eq!(r.top_setup_edges(5)[0].0, 0);
        assert!(r.binding[0] > r.binding[1]);
        assert!(r.failing_fraction() > 0.2);
    }

    #[test]
    fn relaxed_period_clears_violations() {
        let r = run(400.0);
        assert_eq!(r.setup_violations, vec![0, 0]);
        assert_eq!(r.failing_chips, 0);
        assert!(r.top_setup_edges(5).is_empty());
        // The binding edge is still recorded (min period exists always).
        assert_eq!(r.binding.iter().sum::<u64>(), r.samples);
        assert!(r.distinct_binding_edges() >= 1);
    }

    #[test]
    fn hold_violations_are_period_independent() {
        let tight = run(212.0);
        let loose = run(400.0);
        assert_eq!(tight.hold_violations, loose.hold_violations);
    }
}
