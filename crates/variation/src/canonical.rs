//! First-order canonical delay forms (Visweswariah et al., DAC 2004).
//!
//! A canonical form represents a statistically varying delay as
//!
//! ```text
//! d = mean + Σ_p sens[p] · ΔX_p + indep · ΔR
//! ```
//!
//! where `ΔX_p` are the *global* standard-normal variation sources shared by
//! the whole chip (one per [`crate::params::ProcessParam`]) and `ΔR` is a
//! standard-normal source independent of everything else.  Sums of canonical
//! forms are exact; `max`/`min` use Clark's moment-matching approximation,
//! which is the standard block-based SSTA operator the paper refers to.

use crate::normal::{cdf, draw_standard_normal, pdf};
use crate::params::{GlobalSample, N_PARAMS};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A first-order canonical form: mean, global sensitivities and an
/// independent random term (all in absolute delay units).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CanonicalForm {
    mean: f64,
    sens: [f64; N_PARAMS],
    indep: f64,
}

impl CanonicalForm {
    /// A deterministic constant (no variation).
    ///
    /// ```
    /// let c = psbi_variation::CanonicalForm::constant(4.0);
    /// assert_eq!(c.sigma(), 0.0);
    /// ```
    pub fn constant(mean: f64) -> Self {
        Self {
            mean,
            sens: [0.0; N_PARAMS],
            indep: 0.0,
        }
    }

    /// Builds a form from explicit parts.
    ///
    /// The sign of `indep` is irrelevant (only its square enters the
    /// variance); it is stored as an absolute value.
    pub fn with_parts(mean: f64, sens: [f64; N_PARAMS], indep: f64) -> Self {
        Self {
            mean,
            sens,
            indep: indep.abs(),
        }
    }

    /// Mean of the delay.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sensitivities to the global variation sources.
    #[inline]
    pub fn sensitivities(&self) -> &[f64; N_PARAMS] {
        &self.sens
    }

    /// Magnitude of the independent random term.
    #[inline]
    pub fn indep(&self) -> f64 {
        self.indep
    }

    /// Variance of the delay.
    #[inline]
    pub fn variance(&self) -> f64 {
        let mut v = self.indep * self.indep;
        for s in self.sens {
            v += s * s;
        }
        v
    }

    /// Standard deviation of the delay.
    ///
    /// ```
    /// let c = psbi_variation::CanonicalForm::with_parts(1.0, [3.0, 0.0, 4.0], 0.0);
    /// assert!((c.sigma() - 5.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Covariance with another canonical form (through shared global
    /// sources; independent terms never correlate).
    #[inline]
    pub fn covariance(&self, other: &Self) -> f64 {
        let mut c = 0.0;
        for i in 0..N_PARAMS {
            c += self.sens[i] * other.sens[i];
        }
        c
    }

    /// Exact sum of two canonical forms.
    pub fn add(&self, other: &Self) -> Self {
        let mut sens = [0.0; N_PARAMS];
        for (s, (a, b)) in sens.iter_mut().zip(self.sens.iter().zip(&other.sens)) {
            *s = a + b;
        }
        Self {
            mean: self.mean + other.mean,
            sens,
            indep: (self.indep * self.indep + other.indep * other.indep).sqrt(),
        }
    }

    /// Adds a deterministic constant.
    pub fn add_constant(&self, c: f64) -> Self {
        Self {
            mean: self.mean + c,
            ..*self
        }
    }

    /// Scales the form by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `k` is negative (a negated delay is not a
    /// delay; use [`CanonicalForm::negate`] explicitly when flipping sign
    /// for a `min` computation).
    pub fn scale(&self, k: f64) -> Self {
        debug_assert!(k >= 0.0, "scale expects k >= 0, got {k}");
        let mut sens = [0.0; N_PARAMS];
        for (s, a) in sens.iter_mut().zip(&self.sens) {
            *s = a * k;
        }
        Self {
            mean: self.mean * k,
            sens,
            indep: self.indep * k.abs(),
        }
    }

    /// Negation; used to derive `min` from `max`.
    pub fn negate(&self) -> Self {
        let mut sens = [0.0; N_PARAMS];
        for (s, a) in sens.iter_mut().zip(&self.sens) {
            *s = -a;
        }
        Self {
            mean: -self.mean,
            sens,
            indep: self.indep,
        }
    }

    /// Statistical maximum via Clark's moment matching.
    ///
    /// The result's mean and variance match the exact first two moments of
    /// `max(A, B)` for jointly Gaussian `A`, `B`; global sensitivities are
    /// blended by the tightness probability and the independent term absorbs
    /// the residual variance.
    pub fn max(&self, other: &Self) -> Self {
        let (a, b) = (self, other);
        let va = a.variance();
        let vb = b.variance();
        let cov = a.covariance(b);
        let theta2 = (va + vb - 2.0 * cov).max(0.0);
        let theta = theta2.sqrt();
        if theta < 1e-12 * (1.0 + va.max(vb)).sqrt() {
            // Perfectly correlated (or both deterministic): max = the one
            // with the larger mean.
            return if a.mean >= b.mean { *a } else { *b };
        }
        let alpha = (a.mean - b.mean) / theta;
        let t = cdf(alpha); // tightness of A
        let phi = pdf(alpha);
        let mean = a.mean * t + b.mean * (1.0 - t) + theta * phi;
        // Exact second moment of the max of two Gaussians (Clark 1961).
        let m2 = (a.mean * a.mean + va) * t
            + (b.mean * b.mean + vb) * (1.0 - t)
            + (a.mean + b.mean) * theta * phi;
        let var = (m2 - mean * mean).max(0.0);
        let mut sens = [0.0; N_PARAMS];
        let mut sens_sq = 0.0;
        for (s, (sa, sb)) in sens.iter_mut().zip(a.sens.iter().zip(&b.sens)) {
            *s = sa * t + sb * (1.0 - t);
            sens_sq += *s * *s;
        }
        // If blending overshoots the matched variance, shrink the
        // sensitivities so total variance is preserved.
        let (sens, indep) = if sens_sq > var && sens_sq > 0.0 {
            let k = (var / sens_sq).sqrt();
            let mut s = sens;
            for si in &mut s {
                *si *= k;
            }
            (s, 0.0)
        } else {
            (sens, (var - sens_sq).max(0.0).sqrt())
        };
        Self { mean, sens, indep }
    }

    /// Statistical minimum, computed as `-max(-a, -b)`.
    pub fn min(&self, other: &Self) -> Self {
        self.negate().max(&other.negate()).negate()
    }

    /// Evaluates the form for one chip: globals are the shared standard
    /// normal draws, `local` is this delay's own standard-normal draw.
    ///
    /// ```
    /// use psbi_variation::{CanonicalForm, GlobalSample};
    /// let c = CanonicalForm::with_parts(10.0, [1.0, 0.0, 0.0], 2.0);
    /// let g = GlobalSample { delta: [0.5, 0.0, 0.0] };
    /// assert!((c.evaluate(&g, -1.0) - (10.0 + 0.5 - 2.0)).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn evaluate(&self, globals: &GlobalSample, local: f64) -> f64 {
        let mut d = self.mean + self.indep * local;
        for i in 0..N_PARAMS {
            d += self.sens[i] * globals.delta[i];
        }
        d
    }

    /// Evaluates the form drawing the local term from `rng`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, globals: &GlobalSample, rng: &mut R) -> f64 {
        let local = if self.indep != 0.0 {
            draw_standard_normal(rng)
        } else {
            0.0
        };
        self.evaluate(globals, local)
    }

    /// The `q`-quantile of the (Gaussian) delay distribution.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `(0, 1)`.
    pub fn quantile(&self, q: f64) -> f64 {
        self.mean + self.sigma() * crate::normal::probit(q)
    }
}

impl std::fmt::Display for CanonicalForm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} + [{:.4}, {:.4}, {:.4}]·ΔX + {:.4}·ΔR",
            self.mean, self.sens[0], self.sens[1], self.sens[2], self.indep
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mc_max_moments(a: &CanonicalForm, b: &CanonicalForm, n: usize) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(99);
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let mut g = GlobalSample::default();
            for d in &mut g.delta {
                *d = draw_standard_normal(&mut rng);
            }
            let xa = a.sample(&g, &mut rng);
            let xb = b.sample(&g, &mut rng);
            let m = xa.max(xb);
            sum += m;
            sum2 += m * m;
        }
        let mean = sum / n as f64;
        (mean, sum2 / n as f64 - mean * mean)
    }

    #[test]
    fn add_is_exact() {
        let a = CanonicalForm::with_parts(3.0, [1.0, 0.5, 0.0], 2.0);
        let b = CanonicalForm::with_parts(4.0, [-1.0, 0.5, 0.2], 1.0);
        let s = a.add(&b);
        assert!((s.mean() - 7.0).abs() < 1e-12);
        assert_eq!(s.sensitivities(), &[0.0, 1.0, 0.2]);
        assert!((s.indep() - 5.0f64.sqrt()).abs() < 1e-12);
        // Var(sum) = Var(a) + Var(b) + 2 Cov(a,b)
        let expect = a.variance() + b.variance() + 2.0 * a.covariance(&b);
        assert!((s.variance() - expect).abs() < 1e-9);
    }

    #[test]
    fn max_matches_monte_carlo() {
        let a = CanonicalForm::with_parts(10.0, [0.8, 0.2, 0.0], 0.5);
        let b = CanonicalForm::with_parts(9.5, [0.3, 0.0, 0.4], 0.9);
        let m = a.max(&b);
        let (mc_mean, mc_var) = mc_max_moments(&a, &b, 400_000);
        assert!(
            (m.mean() - mc_mean).abs() < 0.01,
            "{} vs {}",
            m.mean(),
            mc_mean
        );
        assert!(
            (m.variance() - mc_var).abs() < 0.02,
            "{} vs {}",
            m.variance(),
            mc_var
        );
    }

    #[test]
    fn max_of_identical_forms_is_identity() {
        let a = CanonicalForm::with_parts(5.0, [1.0, 0.0, 0.0], 0.0);
        let m = a.max(&a);
        assert!((m.mean() - 5.0).abs() < 1e-9);
        assert!((m.sigma() - a.sigma()).abs() < 1e-9);
    }

    #[test]
    fn max_dominance() {
        // If a is far above b, max ≈ a.
        let a = CanonicalForm::with_parts(100.0, [1.0, 0.0, 0.0], 1.0);
        let b = CanonicalForm::with_parts(0.0, [0.0, 1.0, 0.0], 1.0);
        let m = a.max(&b);
        assert!((m.mean() - 100.0).abs() < 1e-6);
        assert!((m.sigma() - a.sigma()).abs() < 1e-4);
    }

    #[test]
    fn min_is_negated_max() {
        let a = CanonicalForm::with_parts(10.0, [0.5, 0.0, 0.0], 0.5);
        let b = CanonicalForm::with_parts(10.5, [0.0, 0.5, 0.0], 0.5);
        let m = a.min(&b);
        assert!(m.mean() < 10.0); // min pulls below both means here
        let neg = a.negate().max(&b.negate()).negate();
        assert!((m.mean() - neg.mean()).abs() < 1e-12);
    }

    #[test]
    fn constants_behave() {
        let a = CanonicalForm::constant(2.0);
        let b = CanonicalForm::constant(3.0);
        let m = a.max(&b);
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.sigma(), 0.0);
        let s = a.add(&b).add_constant(1.0);
        assert_eq!(s.mean(), 6.0);
    }

    #[test]
    fn evaluate_and_quantile() {
        let c = CanonicalForm::with_parts(10.0, [2.0, 0.0, 0.0], 0.0);
        let g = GlobalSample {
            delta: [1.0, 0.0, 0.0],
        };
        assert!((c.evaluate(&g, 0.0) - 12.0).abs() < 1e-12);
        assert!((c.quantile(0.5) - 10.0).abs() < 1e-6);
        assert!(c.quantile(0.9772) > 13.9);
    }

    #[test]
    fn scale_scales_everything() {
        let c = CanonicalForm::with_parts(10.0, [2.0, 1.0, 0.0], 3.0);
        let s = c.scale(0.5);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.sigma() - c.sigma() * 0.5).abs() < 1e-12);
    }
}
