//! Independent re-verification of a finished [`InsertionResult`].
//!
//! The flow's four-layer cache stack (warm witnesses, per-chip
//! [`crate::solve::ChipSolveState`], the cross-chip
//! [`crate::solve::RegionMemo`], saturation elision) is proven correct by
//! parity tests, but a long-running campaign wants a *runtime* check: an
//! answer that can be re-derived from the raw inputs, with none of the
//! caches in the loop.  This module is that check.
//!
//! [`verify_insertion`] re-draws every sampled chip of the insertion and
//! yield streams through the scalar single-chip path
//! ([`BufferInsertionFlow::fill_sample`] — bit-identical to the batch
//! kernels by pinned test), rebuilds its un-elided integer constraint
//! system from scratch, and re-validates:
//!
//! * **structural consistency** — `nb`, the deployment tables, group
//!   windows, the `ab` average;
//! * **insertion claims** — each chip's A1 (floating) and B2 (windowed)
//!   feasibility verdict, re-decided by a cold difference-constraint
//!   solve; claimed-feasible B2 chips are checked *constructively*: the
//!   recorded tuning assignment must satisfy every raw setup/hold edge
//!   and sit inside the assigned windows;
//! * **yield figures** — the reported yields, `rescued` and `broken` are
//!   recomputed from cold per-chip solves with identical arithmetic and
//!   compared exactly.
//!
//! The verifier writes only the [`VerifyReport`] in
//! [`crate::flow::FlowDiagnostics::verify`] — canonical outputs are
//! byte-identical with it on or off (the `PSBI_VERIFY=1` CI legs pin
//! this).

use crate::flow::{BufferInsertionFlow, InsertionResult, Workspace, NONE};
use crate::solve::BufferSpace;
use crate::yield_eval::{Deployment, YieldReport};
use psbi_timing::feasibility::{Arc as TimingArc, DiffSolver};
use psbi_timing::sample::{GateLevelSampler, SampleTiming};
use psbi_timing::IntegerConstraints;
use psbi_variation::seeding::stream_seed;
use serde::{Deserialize, Serialize};

/// At most this many failure descriptions are kept (the counters still
/// cover everything).
const MAX_FAILURES: usize = 12;

/// Outcome of one [`verify_insertion`] run.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VerifyReport {
    /// All checks passed.
    pub passed: bool,
    /// Individual checks evaluated.
    pub checks: u64,
    /// Checks that failed.
    pub mismatches: u64,
    /// Insertion-stream chips re-validated.
    pub insertion_chips: u64,
    /// Yield-stream chips re-validated.
    pub yield_chips: u64,
    /// First few failure descriptions (capped at 12).
    pub failures: Vec<String>,
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.passed {
            write!(
                f,
                "verify OK: {} checks over {} insertion + {} yield chips",
                self.checks, self.insertion_chips, self.yield_chips
            )
        } else {
            write!(
                f,
                "verify FAILED: {}/{} checks failed",
                self.mismatches, self.checks
            )?;
            for failure in &self.failures {
                write!(f, "\n  - {failure}")?;
            }
            Ok(())
        }
    }
}

/// What the flow's passes claimed, handed to the verifier by
/// `run_target` (borrowed straight from the pass outputs).
pub(crate) struct PassClaims<'a> {
    /// The A1 space epoch: every FF buffered, floating bounds.
    pub(crate) space_floating: &'a BufferSpace,
    /// The B-pass space epoch: pruned buffers, assigned windows.
    pub(crate) space_b: &'a BufferSpace,
    /// Per-chip A1 feasibility verdicts.
    pub(crate) a1_feasible: &'a [bool],
    /// Per-chip B2 feasibility verdicts.
    pub(crate) b2_feasible: &'a [bool],
    /// B2 tuning matrix, column-major per (slot, sample).
    pub(crate) b2_columns: Option<&'a [Vec<f32>]>,
    /// FF → slot map for `b2_columns`.
    pub(crate) b2_slot_of_ff: &'a [u32],
    /// Target clock period (ps).
    pub(crate) period: f64,
    /// Buffer step δ (ps).
    pub(crate) step: f64,
}

/// Check collector: counts everything, keeps the first few messages.
#[derive(Default)]
struct Collector {
    checks: u64,
    mismatches: u64,
    failures: Vec<String>,
}

impl Collector {
    fn check(&mut self, ok: bool, msg: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.mismatches += 1;
            if self.failures.len() < MAX_FAILURES {
                self.failures.push(msg());
            }
        }
    }

    fn absorb(&mut self, other: Collector) {
        self.checks += other.checks;
        self.mismatches += other.mismatches;
        for failure in other.failures {
            if self.failures.len() < MAX_FAILURES {
                self.failures.push(failure);
            }
        }
    }
}

/// A deployment with one singleton buffer per buffered FF of `space` —
/// the raw form of a sampling pass's search space, usable with the cold
/// bounded solver.
fn singleton_deployment(space: &BufferSpace) -> Deployment {
    let mut var_of_ff = vec![NONE; space.has_buffer.len()];
    let mut bounds = Vec::new();
    for (ff, &has) in space.has_buffer.iter().enumerate() {
        if has {
            var_of_ff[ff] = bounds.len() as u32;
            bounds.push(space.bounds[ff]);
        }
    }
    Deployment { var_of_ff, bounds }
}

/// Per-chunk scratch for the re-verification solves — allocated fresh per
/// chunk so nothing warm leaks in from the flow's pooled workspaces.
struct ColdKit {
    st: SampleTiming,
    gls: Option<GateLevelSampler>,
    ic: IntegerConstraints,
    diff: DiffSolver,
    arcs: Vec<TimingArc>,
}

impl ColdKit {
    fn new(flow: &BufferInsertionFlow<'_>) -> Self {
        Self {
            st: SampleTiming::for_graph(&flow.sg),
            gls: flow
                .cfg
                .gate_level_sampling
                .then(|| GateLevelSampler::new(&flow.tg)),
            ic: IntegerConstraints::for_graph(&flow.sg),
            diff: DiffSolver::new(),
            arcs: Vec::new(),
        }
    }

    /// Rebuilds chip `index`'s raw constraint system from scratch.
    fn build_chip(
        &mut self,
        flow: &BufferInsertionFlow<'_>,
        stream: u64,
        index: u64,
        claims: &PassClaims<'_>,
    ) {
        flow.fill_sample(stream, index, &mut self.st, &mut self.gls);
        self.ic
            .build(&flow.sg, &self.st, &flow.skews, claims.period, claims.step);
    }

    /// Cold feasibility of the chip under `dep` (no warm witness).
    fn cold_feasible(&mut self, flow: &BufferInsertionFlow<'_>, dep: &Deployment) -> bool {
        dep.build_arcs(&flow.sg, &self.ic, &mut self.arcs)
            && self
                .diff
                .feasible_bounded(dep.num_buffers(), &self.arcs, &dep.bounds)
    }
}

/// Independent re-check of `result` against the raw constraint system.
/// See the module docs for the exact checks.
pub(crate) fn verify_insertion(
    flow: &BufferInsertionFlow<'_>,
    claims: &PassClaims<'_>,
    result: &InsertionResult,
) -> VerifyReport {
    let mut col = Collector::default();
    let n_ffs = result.n_ffs;
    let steps = flow.cfg.steps as i64;

    // ---- Structural consistency ----
    col.check(result.nb == result.groups.len(), || {
        format!("nb {} != group count {}", result.nb, result.groups.len())
    });
    let mut var_of_ff = vec![NONE; n_ffs];
    let mut bounds = Vec::with_capacity(result.groups.len());
    for (g, group) in result.groups.iter().enumerate() {
        col.check(group.lo <= group.hi, || {
            format!("group {g}: window [{}, {}] inverted", group.lo, group.hi)
        });
        col.check(-steps <= group.lo && group.hi <= steps, || {
            format!(
                "group {g}: window [{}, {}] outside the floating range ±{steps}",
                group.lo, group.hi
            )
        });
        if flow.cfg.force_zero_in_range {
            col.check(group.lo <= 0 && 0 <= group.hi, || {
                format!(
                    "group {g}: window [{}, {}] excludes 0 despite force_zero_in_range",
                    group.lo, group.hi
                )
            });
        }
        for &ff in &group.members {
            col.check(ff < n_ffs && claims.space_b.has_buffer[ff], || {
                format!("group {g}: member FF {ff} has no buffer in the final space")
            });
            if ff < n_ffs {
                var_of_ff[ff] = g as u32;
            }
        }
        bounds.push((group.lo, group.hi));
    }
    col.check(
        result.deployment.var_of_ff == var_of_ff && result.deployment.bounds == bounds,
        || "deployment tables disagree with the group list".to_string(),
    );
    let ab = if result.groups.is_empty() {
        0.0
    } else {
        result.groups.iter().map(|g| g.range() as f64).sum::<f64>() / result.groups.len() as f64
    };
    col.check(result.ab == ab, || {
        format!("ab {} != recomputed average range {ab}", result.ab)
    });

    // ---- Insertion-stream claims ----
    let samples = flow.cfg.samples;
    col.check(
        claims.a1_feasible.len() == samples && claims.b2_feasible.len() == samples,
        || "per-chip claim vectors do not cover the sample stream".to_string(),
    );
    let insert_stream = stream_seed(flow.cfg.seed, "insert");
    let floating_dep = singleton_deployment(claims.space_floating);
    let windowed_dep = singleton_deployment(claims.space_b);
    struct InsertChunk {
        col: Collector,
        a1_infeasible: u64,
        b2_infeasible: u64,
    }
    let insert_chunks: Vec<InsertChunk> = flow.map_chunks(samples, |_ws: &mut Workspace, lo, len| {
        let mut kit = ColdKit::new(flow);
        let mut chunk = InsertChunk {
            col: Collector::default(),
            a1_infeasible: 0,
            b2_infeasible: 0,
        };
        for row in 0..len {
            let k = lo + row;
            kit.build_chip(flow, insert_stream, k as u64, claims);

            // A1: claimed fixability with every buffer floating, re-decided
            // by a cold un-elided solve.
            let a1_claimed = claims.a1_feasible[k];
            let a1_actual = kit.cold_feasible(flow, &floating_dep);
            if !a1_claimed {
                chunk.a1_infeasible += 1;
            }
            chunk.col.check(a1_actual == a1_claimed, || {
                format!(
                    "chip {k}: A1 claims {} but the raw floating system is {}",
                    verdict(a1_claimed),
                    verdict(a1_actual)
                )
            });

            // B2: claimed-feasible chips are checked constructively from
            // the recorded tunings; claimed-infeasible chips by re-solving.
            let b2_claimed = claims.b2_feasible[k];
            if !b2_claimed {
                chunk.b2_infeasible += 1;
                let b2_actual = kit.cold_feasible(flow, &windowed_dep);
                chunk.col.check(!b2_actual, || {
                    format!("chip {k}: B2 claims infeasible but the raw windowed system is feasible")
                });
            } else if let Some(columns) = claims.b2_columns {
                let tuning = |ff: u32| -> i64 {
                    let slot = claims.b2_slot_of_ff[ff as usize];
                    if slot == NONE {
                        0
                    } else {
                        columns[slot as usize][k] as i64
                    }
                };
                let mut window_ok = true;
                for ff in 0..n_ffs {
                    if claims.b2_slot_of_ff[ff] == NONE {
                        continue;
                    }
                    let kv = tuning(ff as u32);
                    let (wlo, whi) = claims.space_b.bounds[ff];
                    if kv < wlo || kv > whi {
                        window_ok = false;
                    }
                }
                chunk.col.check(window_ok, || {
                    format!("chip {k}: a recorded tuning leaves its assigned window")
                });
                let mut edges_ok = true;
                for (e, edge) in flow.sg.edges.iter().enumerate() {
                    let kf = tuning(edge.from);
                    let kt = tuning(edge.to);
                    if kf - kt > kit.ic.setup_bound[e] || kt - kf > kit.ic.hold_bound[e] {
                        edges_ok = false;
                    }
                }
                chunk.col.check(edges_ok, || {
                    format!(
                        "chip {k}: B2 claims feasible but its recorded tunings violate a raw setup/hold constraint"
                    )
                });
            } else {
                // No tuning matrix recorded: fall back to re-solving.
                let b2_actual = kit.cold_feasible(flow, &windowed_dep);
                chunk.col.check(b2_actual, || {
                    format!("chip {k}: B2 claims feasible but the raw windowed system is infeasible")
                });
            }
        }
        chunk
    });
    let (mut a1_infeasible, mut b2_infeasible) = (0u64, 0u64);
    for chunk in insert_chunks {
        col.absorb(chunk.col);
        a1_infeasible += chunk.a1_infeasible;
        b2_infeasible += chunk.b2_infeasible;
    }
    col.check(result.stats.a1_infeasible == a1_infeasible, || {
        format!(
            "stats.a1_infeasible {} != re-counted {a1_infeasible}",
            result.stats.a1_infeasible
        )
    });
    col.check(result.stats.b2_infeasible == b2_infeasible, || {
        format!(
            "stats.b2_infeasible {} != re-counted {b2_infeasible}",
            result.stats.b2_infeasible
        )
    });

    // ---- Yield figures ----
    let yield_stream = stream_seed(flow.cfg.seed, "yield");
    let yield_samples = flow.cfg.yield_samples;
    let reports: Vec<YieldReport> =
        flow.map_chunks(yield_samples, |_ws: &mut Workspace, lo, len| {
            let mut kit = ColdKit::new(flow);
            let mut report = YieldReport::default();
            for row in 0..len {
                kit.build_chip(flow, yield_stream, (lo + row) as u64, claims);
                let baseline = kit.ic.setup_bound.iter().all(|&b| b >= 0)
                    && kit.ic.hold_bound.iter().all(|&b| b >= 0);
                let buffered = kit.cold_feasible(flow, &result.deployment);
                report.record(baseline, buffered);
            }
            report
        });
    let mut merged = YieldReport::default();
    for report in &reports {
        merged.merge(report);
    }
    // Identical arithmetic to `run_target`, compared exactly: the verifier
    // must reproduce the reported percentages bit for bit.
    col.check(
        result.yield_baseline == 100.0 * merged.yield_baseline(),
        || {
            format!(
                "yield_baseline {} != recomputed {}",
                result.yield_baseline,
                100.0 * merged.yield_baseline()
            )
        },
    );
    col.check(
        result.yield_with_buffers == 100.0 * merged.yield_buffered(),
        || {
            format!(
                "yield_with_buffers {} != recomputed {}",
                result.yield_with_buffers,
                100.0 * merged.yield_buffered()
            )
        },
    );
    col.check(
        result.improvement == 100.0 * (merged.yield_buffered() - merged.yield_baseline()),
        || {
            format!(
                "improvement {} != recomputed {}",
                result.improvement,
                100.0 * (merged.yield_buffered() - merged.yield_baseline())
            )
        },
    );
    col.check(
        result.rescued == merged.rescued && result.broken == merged.broken,
        || {
            format!(
                "rescued/broken {}/{} != recomputed {}/{}",
                result.rescued, result.broken, merged.rescued, merged.broken
            )
        },
    );

    VerifyReport {
        passed: col.mismatches == 0,
        checks: col.checks,
        mismatches: col.mismatches,
        insertion_chips: samples as u64,
        yield_chips: yield_samples as u64,
        failures: col.failures,
    }
}

fn verdict(feasible: bool) -> &'static str {
    if feasible {
        "feasible"
    } else {
        "infeasible"
    }
}

#[cfg(test)]
mod tests {
    use crate::flow::{BufferInsertionFlow, FlowConfig, TargetPeriod};
    use psbi_netlist::bench_suite;

    fn cfg() -> FlowConfig {
        FlowConfig {
            samples: 120,
            yield_samples: 300,
            calibration_samples: 300,
            seed: 7,
            threads: 2,
            verify: true,
            ..FlowConfig::default()
        }
    }

    #[test]
    fn verifier_passes_with_all_cache_layers_enabled() {
        let c = bench_suite::tiny_demo(31);
        let flow = BufferInsertionFlow::builder(&c, cfg()).build().unwrap();
        assert!(flow.verify_enabled());
        // Sweep two targets so the second run replays warm state.
        for k in [0.0, 0.5] {
            let r = flow.run_target(TargetPeriod::SigmaFactor(k));
            let report = r.diagnostics.verify.as_ref().expect("verify ran");
            assert!(report.passed, "k = {k}: {report}");
            assert_eq!(report.insertion_chips, 120);
            assert_eq!(report.yield_chips, 300);
            assert!(report.checks > 120);
        }
    }

    #[test]
    fn verifier_is_byte_neutral_on_canonical_outputs() {
        let c = bench_suite::tiny_demo(32);
        let mut plain_cfg = cfg();
        plain_cfg.verify = false;
        let plain = BufferInsertionFlow::builder(&c, plain_cfg)
            .build()
            .unwrap()
            .run();
        let mut checked = BufferInsertionFlow::builder(&c, cfg())
            .build()
            .unwrap()
            .run();
        assert!(plain.diagnostics.verify.is_none());
        assert!(checked.diagnostics.verify.is_some());
        // Canonical fields must be bit-identical; only the diagnostics and
        // wall-clock differ (both non-canonical by contract).
        checked.runtime = plain.runtime;
        checked.diagnostics = plain.diagnostics.clone();
        assert_eq!(plain, checked);
    }

    // The complementary negative test — `memo.replay.corrupt` injection
    // must make the verifier FAIL — lives in the workspace-level
    // `tests/fault_injection.rs` binary: fault specs are process-global,
    // so they only run in a binary where every test serialises through
    // `psbi_fault::with_spec`.
}
