//! Named benchmark descriptors matching the paper's Table I circuits.
//!
//! Each spec carries the flip-flop count `ns` and gate count `ng` the paper
//! reports, plus a deterministic default seed.  Generated circuits are the
//! documented substitutes for the unavailable mapped netlists (`DESIGN.md`
//! §2); `ns`/`ng` match the paper exactly.

use crate::generator::GeneratorProfile;
use crate::graph::Circuit;
use serde::{Deserialize, Serialize};

/// One benchmark of the paper's suite.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    /// Benchmark name as printed in Table I.
    pub name: &'static str,
    /// Flip-flop count (`ns`).
    pub n_ffs: usize,
    /// Gate count (`ng`).
    pub n_gates: usize,
    /// Origin of the circuit in the paper ("ISCAS89" or "TAU 2013").
    pub origin: &'static str,
    /// Default generation seed.
    pub default_seed: u64,
}

impl BenchmarkSpec {
    /// The generator profile for this benchmark.
    pub fn profile(&self) -> GeneratorProfile {
        GeneratorProfile::sized(self.name, self.n_ffs, self.n_gates)
    }

    /// Generates the circuit with the default seed.
    pub fn generate(&self) -> Circuit {
        self.profile().generate(self.default_seed)
    }

    /// Generates the circuit with an explicit seed.
    pub fn generate_seeded(&self, seed: u64) -> Circuit {
        self.profile().generate(seed)
    }
}

/// The paper's eight benchmarks with their exact Table I sizes.
pub fn paper_suite() -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec {
            name: "s9234",
            n_ffs: 211,
            n_gates: 5597,
            origin: "ISCAS89",
            default_seed: 0x9234,
        },
        BenchmarkSpec {
            name: "s13207",
            n_ffs: 638,
            n_gates: 7951,
            origin: "ISCAS89",
            default_seed: 0x13207,
        },
        BenchmarkSpec {
            name: "s15850",
            n_ffs: 534,
            n_gates: 9772,
            origin: "ISCAS89",
            default_seed: 0x15850,
        },
        BenchmarkSpec {
            name: "s38584",
            n_ffs: 1426,
            n_gates: 19253,
            origin: "ISCAS89",
            default_seed: 0x38584,
        },
        BenchmarkSpec {
            name: "mem_ctrl",
            n_ffs: 1065,
            n_gates: 10327,
            origin: "TAU 2013",
            default_seed: 0xE301,
        },
        BenchmarkSpec {
            name: "usb_funct",
            n_ffs: 1746,
            n_gates: 14381,
            origin: "TAU 2013",
            default_seed: 0xE302,
        },
        BenchmarkSpec {
            name: "ac97_ctrl",
            n_ffs: 2199,
            n_gates: 9208,
            origin: "TAU 2013",
            default_seed: 0xE303,
        },
        BenchmarkSpec {
            name: "pci_bridge32",
            n_ffs: 3321,
            n_gates: 12494,
            origin: "TAU 2013",
            default_seed: 0xE304,
        },
    ]
}

/// Looks a paper benchmark up by name.
///
/// ```
/// let spec = psbi_netlist::bench_suite::by_name("s9234").unwrap();
/// assert_eq!(spec.n_ffs, 211);
/// ```
pub fn by_name(name: &str) -> Option<BenchmarkSpec> {
    paper_suite().into_iter().find(|s| s.name == name)
}

/// A miniature circuit (24 FFs, 220 gates) for tests, docs and examples.
pub fn tiny_demo(seed: u64) -> Circuit {
    GeneratorProfile::sized("tiny_demo", 24, 220).generate(seed)
}

/// A small circuit (80 FFs, 900 gates) for fast integration tests.
pub fn small_demo(seed: u64) -> Circuit {
    GeneratorProfile::sized("small_demo", 80, 900).generate(seed)
}

/// A medium circuit (250 FFs, 3500 gates) — roughly s9234-class.
pub fn medium_demo(seed: u64) -> Circuit {
    GeneratorProfile::sized("medium_demo", 250, 3500).generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_paper_sizes() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 8);
        let by = |n: &str| by_name(n).unwrap();
        assert_eq!((by("s9234").n_ffs, by("s9234").n_gates), (211, 5597));
        assert_eq!((by("s13207").n_ffs, by("s13207").n_gates), (638, 7951));
        assert_eq!((by("s15850").n_ffs, by("s15850").n_gates), (534, 9772));
        assert_eq!((by("s38584").n_ffs, by("s38584").n_gates), (1426, 19253));
        assert_eq!(
            (by("mem_ctrl").n_ffs, by("mem_ctrl").n_gates),
            (1065, 10327)
        );
        assert_eq!(
            (by("usb_funct").n_ffs, by("usb_funct").n_gates),
            (1746, 14381)
        );
        assert_eq!(
            (by("ac97_ctrl").n_ffs, by("ac97_ctrl").n_gates),
            (2199, 9208)
        );
        assert_eq!(
            (by("pci_bridge32").n_ffs, by("pci_bridge32").n_gates),
            (3321, 12494)
        );
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn generated_benchmark_has_exact_size() {
        let spec = by_name("s9234").unwrap();
        let c = spec.generate();
        assert_eq!(c.num_ffs(), spec.n_ffs);
        assert_eq!(c.num_gates(), spec.n_gates);
        assert!(c.check().is_ok());
    }

    #[test]
    fn demos_are_valid() {
        for c in [tiny_demo(1), small_demo(1)] {
            assert!(c.check().is_ok());
            assert!(c
                .validate_against(&psbi_liberty::Library::industry_like())
                .is_ok());
        }
    }
}
