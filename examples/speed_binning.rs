//! Clock binning — the paper's future-work scenario: chips that miss the
//! target period are sold in slower speed grades.  This example shows how
//! tuning buffers shift the whole bin distribution toward faster grades.
//!
//! ```text
//! cargo run --release --example speed_binning
//! ```

use psbi::core::flow::{BinningRequest, BufferInsertionFlow, FlowConfig, TargetPeriod};
use psbi::netlist::bench_suite;

fn main() {
    let circuit = bench_suite::small_demo(21);
    let cfg = FlowConfig {
        samples: 800,
        yield_samples: 4_000,
        target: TargetPeriod::SigmaFactor(0.0),
        ..FlowConfig::default()
    };
    let flow = BufferInsertionFlow::builder(&circuit, cfg)
        .build()
        .expect("valid circuit");
    let r = flow.run();
    println!(
        "inserted {} buffer(s); target period {:.1} ps (muT = {:.1}, sigmaT = {:.1})\n",
        r.nb, r.period, r.mu_t, r.sigma_t
    );

    // Four speed grades: the aggressive target plus three slower bins.
    let bins = [
        r.mu_t,
        r.mu_t + r.sigma_t,
        r.mu_t + 2.0 * r.sigma_t,
        r.mu_t + 3.0 * r.sigma_t,
    ];
    let report = flow.speed_bins(BinningRequest::new(&r.deployment, &bins, r.step));

    println!(
        "{:<22} {:>12} {:>12}",
        "speed grade", "no buffers", "with buffers"
    );
    for (i, p) in report.periods.iter().enumerate() {
        println!(
            "{:<22} {:>10} ({:>4.1}%) {:>8} ({:>4.1}%)",
            format!("<= {p:.0} ps"),
            report.baseline[i],
            100.0 * report.baseline[i] as f64 / report.samples as f64,
            report.buffered[i],
            100.0 * report.buffered[i] as f64 / report.samples as f64,
        );
    }
    println!(
        "{:<22} {:>10} ({:>4.1}%) {:>8} ({:>4.1}%)",
        "scrap",
        report.dead_baseline,
        100.0 * report.dead_baseline as f64 / report.samples as f64,
        report.dead_buffered,
        100.0 * report.dead_buffered as f64 / report.samples as f64,
    );
    println!();
    println!("chips upgraded to a faster grade: {}", report.upgraded());
    println!(
        "mean selling period: {:.1} ps -> {:.1} ps (scrap penalty 3 sigma)",
        report.mean_period(false, 3.0 * r.sigma_t),
        report.mean_period(true, 3.0 * r.sigma_t)
    );
}
