//! ISCAS89 `.bench` format reader and writer.
//!
//! The classic benchmark format looks like:
//!
//! ```text
//! # s-something
//! INPUT(G0)
//! OUTPUT(G17)
//! G5 = DFF(G10)
//! G10 = NAND(G11, G12)
//! G11 = NOT(G0)
//! ```
//!
//! Signals are declared implicitly by assignment; `DFF` creates a flip-flop.
//! Gate functions are mapped onto library cells with
//! [`default_cell_for`] (override with [`parse_bench_with`]).  Primary
//! outputs become explicit [`NodeKind::Output`](crate::graph::NodeKind)
//! nodes named `<signal>~po` since a `.bench` output is just a tap on an
//! existing signal.

use crate::graph::{Circuit, NetlistError, NodeId, NodeKind};
use std::collections::HashMap;

/// Error raised while reading a `.bench` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchParseError {
    /// 1-based source line.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for BenchParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BenchParseError {}

impl From<NetlistError> for BenchParseError {
    fn from(e: NetlistError) -> Self {
        BenchParseError {
            line: 0,
            message: e.to_string(),
        }
    }
}

/// Maps a `.bench` function name and arity to a library cell name.
///
/// ```
/// assert_eq!(psbi_netlist::bench_format::default_cell_for("NAND", 3),
///            Some("NAND3_X1".to_string()));
/// ```
pub fn default_cell_for(func: &str, arity: usize) -> Option<String> {
    let cell = match (func, arity) {
        ("NOT", _) => "INV_X1",
        ("BUF" | "BUFF", _) => "BUF_X1",
        ("NAND", 0..=2) => "NAND2_X1",
        ("NAND", _) => "NAND3_X1",
        ("NOR", 0..=2) => "NOR2_X1",
        ("NOR", _) => "NOR3_X1",
        ("AND", _) => "AND2_X1",
        ("OR", _) => "OR2_X1",
        ("XOR", _) => "XOR2_X1",
        ("XNOR", _) => "XNOR2_X1",
        ("MUX", _) => "MUX2_X1",
        _ => return None,
    };
    Some(cell.to_string())
}

/// The flip-flop cell used for `DFF` lines.
pub const DEFAULT_FF_CELL: &str = "DFF_X1";

#[derive(Debug)]
struct Assign {
    line: usize,
    target: String,
    func: String,
    args: Vec<String>,
}

/// Parses a `.bench` document with the [`default_cell_for`] mapping.
///
/// # Errors
///
/// Returns a [`BenchParseError`] for syntax errors, unknown functions,
/// undefined signals or combinational cycles.
///
/// ```
/// let c = psbi_netlist::bench_format::parse_bench(
///     psbi_netlist::bench_format::EXAMPLE_BENCH).expect("parses");
/// assert_eq!(c.num_ffs(), 3);
/// ```
pub fn parse_bench(src: &str) -> Result<Circuit, BenchParseError> {
    parse_bench_with(src, default_cell_for)
}

/// Parses a `.bench` document with a custom cell mapping.
///
/// # Errors
///
/// As [`parse_bench`]; additionally any function the mapper rejects.
pub fn parse_bench_with(
    src: &str,
    mapper: impl Fn(&str, usize) -> Option<String>,
) -> Result<Circuit, BenchParseError> {
    let mut inputs: Vec<(usize, String)> = Vec::new();
    let mut outputs: Vec<(usize, String)> = Vec::new();
    let mut assigns: Vec<Assign> = Vec::new();

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let err = |message: String| BenchParseError { line, message };
        if let Some(rest) = text.strip_prefix("INPUT") {
            inputs.push((line, parse_paren_name(rest).map_err(err)?));
        } else if let Some(rest) = text.strip_prefix("OUTPUT") {
            outputs.push((line, parse_paren_name(rest).map_err(err)?));
        } else if let Some(eq) = text.find('=') {
            let target = text[..eq].trim().to_string();
            let rhs = text[eq + 1..].trim();
            let open = rhs
                .find('(')
                .ok_or_else(|| err(format!("expected `func(args)` after `=`: `{rhs}`")))?;
            let close = rhs
                .rfind(')')
                .ok_or_else(|| err(format!("missing `)` in `{rhs}`")))?;
            if close < open {
                return Err(err(format!("mismatched parentheses in `{rhs}`")));
            }
            let func = rhs[..open].trim().to_ascii_uppercase();
            let args: Vec<String> = rhs[open + 1..close]
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            if target.is_empty() {
                return Err(err("empty assignment target".into()));
            }
            if args.is_empty() {
                return Err(err(format!("`{func}` needs at least one argument")));
            }
            assigns.push(Assign {
                line,
                target,
                func,
                args,
            });
        } else {
            return Err(err(format!("unrecognised line `{text}`")));
        }
    }

    let mut circuit = Circuit::new("bench");
    let mut defined: HashMap<String, NodeId> = HashMap::new();

    for (line, name) in &inputs {
        if defined.contains_key(name) {
            return Err(BenchParseError {
                line: *line,
                message: format!("signal `{name}` defined twice"),
            });
        }
        defined.insert(name.clone(), circuit.add_input(name.clone()));
    }
    // Flip-flops first so feedback wiring is possible.
    for a in assigns.iter().filter(|a| a.func == "DFF") {
        if a.args.len() != 1 {
            return Err(BenchParseError {
                line: a.line,
                message: format!("DFF takes exactly one input, got {}", a.args.len()),
            });
        }
        if defined.contains_key(&a.target) {
            return Err(BenchParseError {
                line: a.line,
                message: format!("signal `{}` defined twice", a.target),
            });
        }
        defined.insert(
            a.target.clone(),
            circuit.add_ff(a.target.clone(), DEFAULT_FF_CELL),
        );
    }

    // Order gate assignments topologically by their gate-to-gate deps.
    let gate_assigns: Vec<&Assign> = assigns.iter().filter(|a| a.func != "DFF").collect();
    let mut index_of: HashMap<&str, usize> = HashMap::new();
    for (i, a) in gate_assigns.iter().enumerate() {
        if defined.contains_key(&a.target) || index_of.insert(a.target.as_str(), i).is_some() {
            return Err(BenchParseError {
                line: a.line,
                message: format!("signal `{}` defined twice", a.target),
            });
        }
    }
    let n = gate_assigns.len();
    let mut indeg = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, a) in gate_assigns.iter().enumerate() {
        for arg in &a.args {
            if let Some(&j) = index_of.get(arg.as_str()) {
                indeg[i] += 1;
                dependents[j].push(i);
            } else if !defined.contains_key(arg) {
                return Err(BenchParseError {
                    line: a.line,
                    message: format!("undefined signal `{arg}`"),
                });
            }
        }
    }
    let mut queue: std::collections::VecDeque<usize> = (0..n).filter(|i| indeg[*i] == 0).collect();
    let mut processed = 0usize;
    while let Some(i) = queue.pop_front() {
        processed += 1;
        let a = gate_assigns[i];
        let cell = mapper(&a.func, a.args.len()).ok_or_else(|| BenchParseError {
            line: a.line,
            message: format!("unknown gate function `{}`", a.func),
        })?;
        let fanins: Vec<NodeId> = a.args.iter().map(|arg| defined[arg.as_str()]).collect();
        let id = circuit.add_gate(a.target.clone(), &cell, &fanins);
        defined.insert(a.target.clone(), id);
        for &d in &dependents[i] {
            indeg[d] -= 1;
            if indeg[d] == 0 {
                queue.push_back(d);
            }
        }
    }
    if processed != n {
        let witness = gate_assigns
            .iter()
            .enumerate()
            .find(|(i, _)| indeg[*i] > 0)
            .map(|(_, a)| a.target.clone())
            .unwrap_or_default();
        return Err(BenchParseError {
            line: 0,
            message: format!("combinational cycle through `{witness}`"),
        });
    }

    // Wire flip-flop data inputs.
    for a in assigns.iter().filter(|a| a.func == "DFF") {
        let driver = *defined.get(&a.args[0]).ok_or_else(|| BenchParseError {
            line: a.line,
            message: format!("undefined signal `{}`", a.args[0]),
        })?;
        let ff = defined[&a.target];
        circuit.connect_ff_data(ff, driver)?;
    }

    // Primary outputs are taps on existing signals; a signal may feed
    // several outputs, so tap names are numbered.
    for (idx, (line, name)) in outputs.iter().enumerate() {
        let driver = *defined.get(name).ok_or_else(|| BenchParseError {
            line: *line,
            message: format!("OUTPUT references undefined signal `{name}`"),
        })?;
        circuit.add_output(format!("{name}~po{idx}"), driver);
    }

    circuit.check()?;
    Ok(circuit)
}

fn parse_paren_name(rest: &str) -> Result<String, String> {
    let rest = rest.trim();
    let inner = rest
        .strip_prefix('(')
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| format!("expected `(name)`, got `{rest}`"))?;
    let name = inner.trim();
    if name.is_empty() {
        return Err("empty signal name".into());
    }
    Ok(name.to_string())
}

/// Writes a circuit in `.bench` syntax.
///
/// Gate cells are mapped back to `.bench` functions through their library
/// function token (e.g. `INV_X1 → NOT`); the cell's drive strength is lost,
/// which is inherent to the format.
pub fn to_bench(circuit: &Circuit, lib: &psbi_liberty::Library) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name);
    for id in circuit.node_ids() {
        if matches!(circuit.node(id).kind, NodeKind::Input) {
            let _ = writeln!(out, "INPUT({})", circuit.node(id).name);
        }
    }
    for id in circuit.node_ids() {
        if matches!(circuit.node(id).kind, NodeKind::Output) {
            let driver = circuit.fanins(id)[0];
            let _ = writeln!(out, "OUTPUT({})", circuit.node(driver).name);
        }
    }
    for id in circuit.node_ids() {
        let node = circuit.node(id);
        match &node.kind {
            NodeKind::FlipFlop { .. } => {
                let d = circuit.fanins(id)[0];
                let _ = writeln!(out, "{} = DFF({})", node.name, circuit.node(d).name);
            }
            NodeKind::Gate { cell } => {
                let func = lib
                    .cell(cell)
                    .map(|c| bench_func_token(c.function))
                    .unwrap_or("AND");
                let args: Vec<&str> = circuit
                    .fanins(id)
                    .iter()
                    .map(|f| circuit.node(*f).name.as_str())
                    .collect();
                let _ = writeln!(out, "{} = {}({})", node.name, func, args.join(", "));
            }
            _ => {}
        }
    }
    out
}

fn bench_func_token(f: psbi_liberty::CellFunction) -> &'static str {
    use psbi_liberty::CellFunction::*;
    match f {
        Inv => "NOT",
        Buf => "BUFF",
        Nand => "NAND",
        Nor => "NOR",
        And => "AND",
        Or => "OR",
        Xor => "XOR",
        Xnor => "XNOR",
        // .bench has no AOI/OAI/MUX; approximate with AND (structure-only).
        Aoi | Oai | Mux => "AND",
    }
}

/// A small hand-written example netlist in `.bench` syntax (three
/// flip-flops, a feedback loop and reconvergent logic).  Used by tests and
/// doc examples; this is an original circuit, not an ISCAS89 reproduction.
pub const EXAMPLE_BENCH: &str = "\
# psbi example bench
INPUT(I0)
INPUT(I1)
OUTPUT(Q2)
F0 = DFF(N4)
F1 = DFF(N6)
F2 = DFF(N7)
N1 = NOT(F0)
N2 = NAND(I0, N1)
N3 = NOR(N2, I1)
N4 = XOR(N3, F1)
N5 = AND(F0, F1)
N6 = NAND(N5, N3)
N7 = OR(N5, F2)
Q2 = BUFF(F2)
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example() {
        let c = parse_bench(EXAMPLE_BENCH).expect("parses");
        assert_eq!(c.num_ffs(), 3);
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.num_gates(), 8);
        assert!(c.check().is_ok());
        assert!(c
            .validate_against(&psbi_liberty::Library::industry_like())
            .is_ok());
    }

    #[test]
    fn out_of_order_definitions_are_fine() {
        // N2 references N1 which is defined later.
        let src = "INPUT(A)\nOUTPUT(N2)\nN2 = NOT(N1)\nN1 = NOT(A)\n";
        let c = parse_bench(src).expect("parses");
        assert_eq!(c.num_gates(), 2);
        let n2 = c.by_name("N2").unwrap();
        let n1 = c.by_name("N1").unwrap();
        assert_eq!(c.fanins(n2), &[n1]);
    }

    #[test]
    fn undefined_signal_is_reported() {
        let err = parse_bench("OUTPUT(X)\nX = NOT(Y)\n").unwrap_err();
        assert!(err.message.contains("undefined"), "{err}");
    }

    #[test]
    fn duplicate_definition_is_reported() {
        let err = parse_bench("INPUT(A)\nN = NOT(A)\nN = NOT(A)\n").unwrap_err();
        assert!(err.message.contains("twice"), "{err}");
    }

    #[test]
    fn combinational_cycle_is_reported() {
        let err = parse_bench("INPUT(A)\nX = NAND(A, Y)\nY = NOT(X)\n").unwrap_err();
        assert!(err.message.contains("cycle"), "{err}");
    }

    #[test]
    fn dff_arity_checked() {
        let err = parse_bench("INPUT(A)\nINPUT(B)\nF = DFF(A, B)\n").unwrap_err();
        assert!(err.message.contains("exactly one"), "{err}");
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse_bench("INPUT(A)\nthis is wrong\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn round_trip_through_writer() {
        let lib = psbi_liberty::Library::industry_like();
        let c = parse_bench(EXAMPLE_BENCH).expect("parses");
        let text = to_bench(&c, &lib);
        let c2 = parse_bench(&text).expect("round trip");
        assert_eq!(c2.num_ffs(), c.num_ffs());
        assert_eq!(c2.num_gates(), c.num_gates());
        assert_eq!(c2.num_inputs(), c.num_inputs());
        assert_eq!(c2.num_outputs(), c.num_outputs());
    }

    #[test]
    fn custom_mapper_is_used() {
        let src = "INPUT(A)\nOUTPUT(N)\nN = NOT(A)\n";
        let c = parse_bench_with(src, |f, _| (f == "NOT").then(|| "INV_X2".to_string()))
            .expect("parses");
        let n = c.by_name("N").unwrap();
        match &c.node(n).kind {
            NodeKind::Gate { cell } => assert_eq!(cell, "INV_X2"),
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn mapper_rejection_is_reported() {
        let err = parse_bench_with("INPUT(A)\nN = NOT(A)\n", |_, _| None).unwrap_err();
        assert!(err.message.contains("unknown gate function"), "{err}");
    }
}
