//! Clock-skew assignment.
//!
//! The paper adds clock skews to the benchmark circuits "so that they have
//! more critical paths" (§IV).  We model the fixed part of the clock tree
//! as a per-flip-flop arrival offset: a small Gaussian jitter on every FF
//! plus large deterministic offsets on a few *hotspot* FFs.  Hotspots are
//! what creates localised stage imbalance — exactly the situation a
//! post-silicon tuning buffer can repair.

use crate::graph::Circuit;
use psbi_variation::normal::draw_standard_normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the skew generator (all values in picoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkewConfig {
    /// Standard deviation of the per-FF Gaussian jitter.
    pub jitter_sigma: f64,
    /// Fraction of flip-flops receiving a large hotspot offset.
    pub hotspot_fraction: f64,
    /// Magnitude of the hotspot offset (sign is random per hotspot).
    pub hotspot_magnitude: f64,
}

impl SkewConfig {
    /// Defaults scaled for a circuit whose typical stage delay is
    /// `stage_delay` ps: jitter is 2 % of it, hotspots are 12 % of it on
    /// 2 % of the flip-flops.  The paper inserts skews to create more
    /// critical paths; hotspots are what tuning buffers repair, so their
    /// count tracks the paper's small buffer counts, while the magnitude
    /// stays below typical *minimum* path delays so the unbuffered circuit
    /// has no systematic hold violations (the paper's baseline yields are
    /// pure setup-limited Gaussian levels).
    pub fn scaled_to(stage_delay: f64) -> Self {
        Self {
            jitter_sigma: 0.02 * stage_delay,
            hotspot_fraction: 0.015,
            hotspot_magnitude: 0.12 * stage_delay,
        }
    }

    /// No skew at all (ideal clock tree).
    pub fn ideal() -> Self {
        Self {
            jitter_sigma: 0.0,
            hotspot_fraction: 0.0,
            hotspot_magnitude: 0.0,
        }
    }

    /// Draws skews for every flip-flop of `circuit` (dense FF index order).
    ///
    /// Deterministic for a given seed.  Skews are a *design* property: the
    /// same values are used for every Monte Carlo sample.
    pub fn assign(&self, circuit: &Circuit, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = circuit.num_ffs();
        let mut skews = vec![0.0; n];
        for s in &mut skews {
            if self.jitter_sigma > 0.0 {
                *s = self.jitter_sigma * draw_standard_normal(&mut rng);
            }
        }
        if self.hotspot_fraction > 0.0 && self.hotspot_magnitude > 0.0 {
            let hot = ((n as f64 * self.hotspot_fraction).round() as usize).clamp(1, n);
            // Choose distinct hotspot FFs; keep a deterministic order so
            // the sign draws are reproducible.
            let mut picked = std::collections::BTreeSet::new();
            while picked.len() < hot {
                picked.insert(rng.gen_range(0..n));
            }
            for &i in &picked {
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                skews[i] += sign * self.hotspot_magnitude;
            }
        }
        skews
    }
}

impl Default for SkewConfig {
    fn default() -> Self {
        Self::scaled_to(400.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite;

    #[test]
    fn ideal_skew_is_zero() {
        let c = bench_suite::tiny_demo(1);
        let skews = SkewConfig::ideal().assign(&c, 9);
        assert_eq!(skews.len(), c.num_ffs());
        assert!(skews.iter().all(|s| *s == 0.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let c = bench_suite::small_demo(1);
        let cfg = SkewConfig::scaled_to(400.0);
        assert_eq!(cfg.assign(&c, 5), cfg.assign(&c, 5));
        assert_ne!(cfg.assign(&c, 5), cfg.assign(&c, 6));
    }

    #[test]
    fn hotspots_exist_and_are_large() {
        let c = bench_suite::small_demo(2);
        let cfg = SkewConfig::scaled_to(400.0);
        let skews = cfg.assign(&c, 1);
        let big = skews
            .iter()
            .filter(|s| s.abs() > 0.5 * cfg.hotspot_magnitude)
            .count();
        let expect = (c.num_ffs() as f64 * cfg.hotspot_fraction).round() as usize;
        // All hotspots should clear half the magnitude (jitter is tiny).
        assert!(big >= expect.saturating_sub(1), "big={big} expect={expect}");
        assert!(big <= expect + 2, "big={big} expect={expect}");
    }

    #[test]
    fn jitter_magnitude_is_sane() {
        let c = bench_suite::small_demo(3);
        let cfg = SkewConfig {
            jitter_sigma: 10.0,
            hotspot_fraction: 0.0,
            hotspot_magnitude: 0.0,
        };
        let skews = cfg.assign(&c, 2);
        let std = psbi_variation::stddev(&skews);
        assert!((std - 10.0).abs() < 3.0, "std={std}");
    }
}
