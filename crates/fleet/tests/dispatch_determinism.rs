//! Distributed dispatch determinism matrix.
//!
//! The contract under test: a campaign executed through `psbi-fleet
//! serve` + workers produces a journal and canonical report
//! **byte-identical** to the single-process `run_campaign` reference —
//! for any worker count, join order, connection-loss pattern or
//! dispatcher restart.  Legs:
//!
//! * clean runs at 2 and 4 in-process workers, plus the no-worker
//!   inline fallback;
//! * concurrent and queued campaigns over one dispatcher
//!   (`--max-campaigns`);
//! * a worker that starts *before* the dispatcher and joins after
//!   backoff;
//! * all four dispatch failpoints (`dispatch.conn.drop`,
//!   `dispatch.worker.stall`, `dispatch.lease.expire_early`,
//!   `worker.result.torn`), each asserted to actually exercise its
//!   recovery path via the lease log;
//! * subprocess legs: `kill -9` of a worker mid-lease, and `kill -9` of
//!   the dispatcher followed by a resumed re-submission.
//!
//! Every in-process leg runs under `psbi_fault::with_spec` (an empty
//! spec for the clean legs), which serialises them — failpoint state is
//! process-global and must not leak between legs.

use psbi_fleet::{
    run_campaign, run_worker, submit_campaign, CampaignReport, CampaignSpec, Dispatcher,
    FleetError, FleetOptions, Journal, ServeOptions, SubmitOptions, WorkerOptions,
};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn quick_spec() -> CampaignSpec {
    CampaignSpec {
        samples: 60,
        yield_samples: 120,
        calibration_samples: 120,
        seed: 2024,
        ..CampaignSpec::example()
    }
}

/// Heavier grid for the legs that need jobs slow enough to observe
/// mid-flight faults (~50 ms/job): medium circuits, 4 jobs.
fn slow_spec() -> CampaignSpec {
    let mut spec = quick_spec();
    spec.name = "dispatch_slow".into();
    spec.circuits = vec![
        psbi_netlist::bench_suite::CircuitRef::parse("medium_demo:3").unwrap(),
        psbi_netlist::bench_suite::CircuitRef::parse("medium_demo:5").unwrap(),
    ];
    spec.samples = 200;
    spec.yield_samples = 300;
    spec.calibration_samples = 300;
    spec
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("psbi_dispatch_det_{tag}_{}", std::process::id()))
}

/// Single-process reference: journal bytes + canonical report.
fn reference(spec: &CampaignSpec, tag: &str) -> (Vec<u8>, String) {
    let path = tmp(&format!("{tag}_ref"));
    let _ = std::fs::remove_file(&path);
    let outcome = run_campaign(
        spec,
        &path,
        &FleetOptions {
            workers: 2,
            progress: false,
            ..FleetOptions::default()
        },
    )
    .expect("reference campaign");
    assert!(outcome.complete());
    let bytes = std::fs::read(&path).expect("reference journal bytes");
    let report = CampaignReport::from_outcome(spec, &outcome).canonical_json();
    let _ = std::fs::remove_file(&path);
    (bytes, report)
}

fn assert_matches_reference(
    spec: &CampaignSpec,
    journal: &Path,
    ref_bytes: &[u8],
    ref_report: &str,
    leg: &str,
) {
    let bytes = std::fs::read(journal).unwrap_or_else(|e| panic!("{leg}: read journal: {e}"));
    assert_eq!(
        bytes, ref_bytes,
        "{leg}: journal bytes differ from reference"
    );
    let records = Journal::replay(journal, spec).unwrap_or_else(|e| panic!("{leg}: replay: {e}"));
    let report = CampaignReport::from_records(spec, records).canonical_json();
    assert_eq!(report, ref_report, "{leg}: canonical report differs");
}

fn serve_opts(once: bool) -> ServeOptions {
    ServeOptions {
        addr: "127.0.0.1:0".into(),
        max_campaigns: 1,
        lease_jobs: 0,
        lease_ms: 10_000,
        heartbeat_ms: 2_500,
        inline_grace_ms: 60_000, // in-process legs opt into inline explicitly
        once,
        progress: false,
        addr_file: None,
    }
}

/// Binds a dispatcher and runs it on a background thread.  Returns the
/// address, a shutdown handle and the join handle.
fn spawn_dispatcher(
    opts: ServeOptions,
) -> (
    String,
    psbi_fleet::DispatchHandle,
    std::thread::JoinHandle<Result<(), FleetError>>,
) {
    let dispatcher = Dispatcher::bind(opts).expect("bind dispatcher");
    let addr = dispatcher.local_addr().to_string();
    let handle = dispatcher.handle();
    let join = std::thread::spawn(move || dispatcher.run());
    (addr, handle, join)
}

fn spawn_worker(addr: &str, name: &str) -> std::thread::JoinHandle<Result<(), FleetError>> {
    let opts = WorkerOptions {
        addr: addr.to_string(),
        name: name.to_string(),
        backoff_min_ms: 20,
        backoff_max_ms: 200,
        max_idle_ms: Some(2_000),
        progress: false,
    };
    std::thread::spawn(move || run_worker(&opts))
}

fn submit_opts(addr: &str) -> SubmitOptions {
    SubmitOptions {
        addr: addr.to_string(),
        retries: 2,
        verify: false,
        progress: false,
    }
}

/// Runs one full distributed campaign (dispatcher + `workers` in-process
/// workers, `--once`) into `journal` and joins everything.
fn distributed_run(spec: &CampaignSpec, journal: &Path, workers: usize, opts: ServeOptions) {
    let _ = std::fs::remove_file(journal);
    let (addr, _handle, dispatcher) = spawn_dispatcher(opts);
    let worker_handles: Vec<_> = (0..workers)
        .map(|i| spawn_worker(&addr, &format!("w{i}")))
        .collect();
    let outcome = submit_campaign(
        &spec.to_json(),
        &journal.display().to_string(),
        &submit_opts(&addr),
    )
    .expect("submit");
    assert_eq!(outcome.committed, spec.jobs().len());
    dispatcher
        .join()
        .expect("dispatcher thread")
        .expect("dispatcher run");
    for w in worker_handles {
        w.join().expect("worker thread").expect("worker run");
    }
}

/// Lease ids granted but never closed (done/expired) in the advisory
/// lease log — the signature a *crash* leaves behind; an orderly run,
/// even a failed one, must close every grant.
fn open_lease_ids(journal: &Path) -> Vec<u64> {
    let lease_log = PathBuf::from(format!("{}.leases", journal.display()));
    let text = std::fs::read_to_string(&lease_log).unwrap_or_default();
    let mut open = std::collections::BTreeSet::new();
    for line in text.lines() {
        let Some(idx) = line.find("\"lease\":") else {
            continue;
        };
        let rest = &line[idx + 8..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        let Ok(id) = rest[..end].parse::<u64>() else {
            continue;
        };
        if line.contains("\"ev\":\"grant\"") {
            open.insert(id);
        } else if line.contains("\"ev\":\"done\"") || line.contains("\"ev\":\"expire\"") {
            open.remove(&id);
        }
    }
    open.into_iter().collect()
}

fn expire_events(journal: &Path) -> usize {
    let lease_log = PathBuf::from(format!("{}.leases", journal.display()));
    std::fs::read_to_string(&lease_log)
        .map(|text| {
            text.lines()
                .filter(|l| l.contains("\"ev\":\"expire\""))
                .count()
        })
        .unwrap_or(0)
}

fn cleanup(journal: &Path) {
    let _ = std::fs::remove_file(journal);
    let _ = std::fs::remove_file(PathBuf::from(format!("{}.leases", journal.display())));
}

#[test]
fn two_and_four_workers_match_single_process() {
    psbi_fault::with_spec("", || {
        let spec = quick_spec();
        let (ref_bytes, ref_report) = reference(&spec, "clean");
        for workers in [2usize, 4] {
            let journal = tmp(&format!("clean_w{workers}"));
            distributed_run(&spec, &journal, workers, serve_opts(true));
            assert_matches_reference(
                &spec,
                &journal,
                &ref_bytes,
                &ref_report,
                &format!("{workers} workers"),
            );
            cleanup(&journal);
        }
    });
}

#[test]
fn inline_fallback_matches_single_process() {
    psbi_fault::with_spec("", || {
        let spec = quick_spec();
        let (ref_bytes, ref_report) = reference(&spec, "inline");
        let journal = tmp("inline");
        let mut opts = serve_opts(true);
        opts.inline_grace_ms = 50; // degrade quickly: no worker will come
        distributed_run(&spec, &journal, 0, opts);
        assert_matches_reference(&spec, &journal, &ref_bytes, &ref_report, "inline fallback");
        cleanup(&journal);
    });
}

#[test]
fn concurrent_campaigns_each_match_their_reference() {
    psbi_fault::with_spec("", || {
        let spec_a = quick_spec();
        let mut spec_b = quick_spec();
        spec_b.seed = 7777;
        spec_b.name = "concurrent_b".into();
        let (ref_a, rep_a) = reference(&spec_a, "conc_a");
        let (ref_b, rep_b) = reference(&spec_b, "conc_b");
        let journal_a = tmp("conc_a");
        let journal_b = tmp("conc_b");
        let _ = std::fs::remove_file(&journal_a);
        let _ = std::fs::remove_file(&journal_b);
        let mut opts = serve_opts(false);
        opts.max_campaigns = 2;
        let (addr, handle, dispatcher) = spawn_dispatcher(opts);
        let workers: Vec<_> = (0..3)
            .map(|i| spawn_worker(&addr, &format!("c{i}")))
            .collect();
        let submits: Vec<_> = [(&spec_a, &journal_a), (&spec_b, &journal_b)]
            .into_iter()
            .map(|(spec, journal)| {
                let spec_text = spec.to_json();
                let journal = journal.display().to_string();
                let opts = submit_opts(&addr);
                std::thread::spawn(move || submit_campaign(&spec_text, &journal, &opts))
            })
            .collect();
        for s in submits {
            s.join().expect("submit thread").expect("submit");
        }
        handle.shutdown();
        dispatcher
            .join()
            .expect("dispatcher thread")
            .expect("dispatcher run");
        for w in workers {
            w.join().expect("worker thread").expect("worker run");
        }
        assert_matches_reference(&spec_a, &journal_a, &ref_a, &rep_a, "concurrent a");
        assert_matches_reference(&spec_b, &journal_b, &ref_b, &rep_b, "concurrent b");
        cleanup(&journal_a);
        cleanup(&journal_b);
    });
}

#[test]
fn queued_campaign_waits_for_a_slot_and_still_matches() {
    psbi_fault::with_spec("", || {
        let spec_a = quick_spec();
        let mut spec_b = quick_spec();
        spec_b.seed = 31337;
        spec_b.name = "queued_b".into();
        let (ref_a, rep_a) = reference(&spec_a, "queue_a");
        let (ref_b, rep_b) = reference(&spec_b, "queue_b");
        let journal_a = tmp("queue_a");
        let journal_b = tmp("queue_b");
        let _ = std::fs::remove_file(&journal_a);
        let _ = std::fs::remove_file(&journal_b);
        // max_campaigns = 1: the second submission must queue, not fail.
        let (addr, handle, dispatcher) = spawn_dispatcher(serve_opts(false));
        let workers: Vec<_> = (0..2)
            .map(|i| spawn_worker(&addr, &format!("q{i}")))
            .collect();
        let submits: Vec<_> = [(&spec_a, &journal_a), (&spec_b, &journal_b)]
            .into_iter()
            .map(|(spec, journal)| {
                let spec_text = spec.to_json();
                let journal = journal.display().to_string();
                let opts = submit_opts(&addr);
                std::thread::spawn(move || submit_campaign(&spec_text, &journal, &opts))
            })
            .collect();
        for s in submits {
            s.join().expect("submit thread").expect("queued submit");
        }
        handle.shutdown();
        dispatcher
            .join()
            .expect("dispatcher thread")
            .expect("dispatcher run");
        for w in workers {
            w.join().expect("worker thread").expect("worker run");
        }
        assert_matches_reference(&spec_a, &journal_a, &ref_a, &rep_a, "queued a");
        assert_matches_reference(&spec_b, &journal_b, &ref_b, &rep_b, "queued b");
        cleanup(&journal_a);
        cleanup(&journal_b);
    });
}

#[test]
fn worker_started_before_the_dispatcher_joins_after_backoff() {
    psbi_fault::with_spec("", || {
        let spec = quick_spec();
        let (ref_bytes, ref_report) = reference(&spec, "rejoin");
        let journal = tmp("rejoin");
        let _ = std::fs::remove_file(&journal);
        // Pre-bind a listener to learn a free port, drop it, point the
        // worker there, and only then bring the dispatcher up on it.
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        let addr = probe.local_addr().expect("probe addr").to_string();
        drop(probe);
        let worker = spawn_worker(&addr, "early-bird");
        std::thread::sleep(Duration::from_millis(150)); // a few failed connects
        let mut opts = serve_opts(true);
        opts.addr = addr.clone();
        let (bound, _handle, dispatcher) = spawn_dispatcher(opts);
        assert_eq!(bound, addr);
        let outcome = submit_campaign(
            &spec.to_json(),
            &journal.display().to_string(),
            &submit_opts(&addr),
        )
        .expect("submit");
        assert_eq!(outcome.committed, spec.jobs().len());
        dispatcher
            .join()
            .expect("dispatcher thread")
            .expect("dispatcher run");
        worker.join().expect("worker thread").expect("worker run");
        assert_matches_reference(&spec, &journal, &ref_bytes, &ref_report, "rejoin");
        cleanup(&journal);
    });
}

#[test]
fn conn_drop_failpoint_recovers_byte_identically() {
    let spec = quick_spec();
    let (ref_bytes, ref_report) = psbi_fault::with_spec("", || reference(&spec, "conndrop"));
    psbi_fault::with_spec("dispatch.conn.drop@nth=2,times=1", || {
        let journal = tmp("conndrop");
        distributed_run(&spec, &journal, 2, serve_opts(true));
        assert_matches_reference(&spec, &journal, &ref_bytes, &ref_report, "conn.drop");
        // The drop closed a worker connection mid-lease: its lease was
        // force-expired (conn-closed) and re-dispatched.
        assert!(
            expire_events(&journal) >= 1,
            "conn.drop leg never expired a lease"
        );
        cleanup(&journal);
    });
}

#[test]
fn worker_stall_failpoint_expires_the_lease_and_recovers() {
    let spec = slow_spec();
    let (ref_bytes, ref_report) = psbi_fault::with_spec("", || reference(&spec, "stall"));
    // Jobs take ~50 ms each and leases are circuit-aligned (2 jobs), so
    // with every heartbeat suppressed a 40 ms lease always expires
    // before its first result; late results are still accepted and the
    // re-dispatched duplicates discarded.
    psbi_fault::with_spec("dispatch.worker.stall@times=100000", || {
        let journal = tmp("stall");
        let mut opts = serve_opts(true);
        opts.lease_ms = 40;
        opts.heartbeat_ms = 10;
        distributed_run(&spec, &journal, 2, opts);
        assert_matches_reference(&spec, &journal, &ref_bytes, &ref_report, "worker.stall");
        assert!(
            expire_events(&journal) >= 1,
            "stall leg never expired a lease"
        );
        cleanup(&journal);
    });
}

#[test]
fn lease_expire_early_failpoint_redispatches_byte_identically() {
    let spec = slow_spec();
    let (ref_bytes, ref_report) = psbi_fault::with_spec("", || reference(&spec, "expearly"));
    psbi_fault::with_spec("dispatch.lease.expire_early@nth=1,times=1", || {
        let journal = tmp("expearly");
        // The reaper only evaluates the failpoint on leases it examines, so
        // the lease must outlive a reaper tick: ~50 ms jobs against a
        // 200 ms lease (50 ms tick) guarantee a live lease at tick time.
        let mut opts = serve_opts(true);
        opts.lease_ms = 200;
        opts.heartbeat_ms = 50;
        distributed_run(&spec, &journal, 2, opts);
        assert_matches_reference(&spec, &journal, &ref_bytes, &ref_report, "expire_early");
        assert!(
            expire_events(&journal) >= 1,
            "expire_early leg never expired a lease"
        );
        cleanup(&journal);
    });
}

#[test]
fn torn_result_failpoint_is_rejected_and_resent() {
    let spec = quick_spec();
    let (ref_bytes, ref_report) = psbi_fault::with_spec("", || reference(&spec, "torn"));
    psbi_fault::with_spec("worker.result.torn@nth=1,times=1", || {
        let journal = tmp("torn");
        distributed_run(&spec, &journal, 2, serve_opts(true));
        assert_matches_reference(&spec, &journal, &ref_bytes, &ref_report, "result.torn");
        // The torn write killed that worker's connection: lease expired,
        // worker reconnected and re-sent the cached record intact.
        assert!(
            expire_events(&journal) >= 1,
            "torn-result leg never expired a lease"
        );
        cleanup(&journal);
    });
}

#[test]
fn dispatcher_errors_map_back_to_local_exit_codes() {
    psbi_fault::with_spec("", || {
        let spec = quick_spec();
        let mut other = quick_spec();
        other.samples += 1; // different fingerprint
        let journal = tmp("codemap");
        let _ = std::fs::remove_file(&journal);
        // Seed the journal for `other`, then submit `spec` against it:
        // the dispatcher must report the same journal-mismatch class
        // (exit code 5) a local run would.
        let (j, _) = Journal::open(&journal, &other).expect("seed journal");
        drop(j);
        let (addr, handle, dispatcher) = spawn_dispatcher(serve_opts(false));
        let err = submit_campaign(
            &spec.to_json(),
            &journal.display().to_string(),
            &submit_opts(&addr),
        )
        .expect_err("fingerprint mismatch must fail");
        assert_eq!(err.code(), 5, "expected journal error, got: {err}");
        handle.shutdown();
        dispatcher
            .join()
            .expect("dispatcher thread")
            .expect("dispatcher run");
        cleanup(&journal);
    });
}

/// The stale-cache scenario: a worker that survived a dispatcher
/// restart re-sends a record computed for a *different* campaign whose
/// id collided with the new one.  The dispatcher must refuse it twice
/// over — by spec fingerprint, and by grid identity when the
/// fingerprint is forged — and the campaign must still finish
/// byte-identical to the single-process reference.
#[test]
fn foreign_results_are_rejected_never_journaled() {
    psbi_fault::with_spec("", || {
        use psbi_fleet::proto::{read_msg, write_msg, Msg};
        use psbi_fleet::JobRecord;
        use std::io::BufReader;
        use std::net::TcpStream;

        let spec = quick_spec();
        let (ref_bytes, ref_report) = reference(&spec, "foreign");
        let journal = tmp("foreign");
        let _ = std::fs::remove_file(&journal);
        let (addr, handle, dispatcher) = spawn_dispatcher(serve_opts(false));
        let submit = {
            let spec_text = spec.to_json();
            let journal = journal.display().to_string();
            let opts = submit_opts(&addr);
            std::thread::spawn(move || submit_campaign(&spec_text, &journal, &opts))
        };

        // Hand-rolled worker half: hello, then poll until a lease lands.
        let take_lease = |name: &str| -> (BufReader<TcpStream>, TcpStream, u64, u64, String) {
            let stream = TcpStream::connect(&addr).expect("rogue connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .expect("read timeout");
            let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
            let mut writer = stream;
            write_msg(
                &mut writer,
                &Msg::Hello {
                    worker: name.into(),
                },
            )
            .expect("hello");
            loop {
                write_msg(&mut writer, &Msg::Request).expect("request");
                match read_msg(&mut reader).expect("rogue read") {
                    Some(Msg::Wait { ms }) => {
                        std::thread::sleep(Duration::from_millis(ms.min(100)));
                    }
                    Some(Msg::Lease {
                        lease,
                        campaign,
                        spec: spec_text,
                        ..
                    }) => return (reader, writer, lease, campaign, spec_text),
                    other => panic!("expected lease or wait, got {other:?}"),
                }
            }
        };
        let expect_drop = |reader: &mut BufReader<TcpStream>, leg: &str| match read_msg(reader) {
            Ok(None) | Err(_) => {} // connection dropped, no ack: correct
            Ok(Some(msg)) => panic!("{leg}: rejected result was answered with {msg:?}"),
        };

        // Leg 1: record from a spec with a different fingerprint (same
        // grid shape, so only the fingerprint can catch it).
        let mut other = quick_spec();
        other.name = "dispatch_foreign_other".into();
        let (mut reader, mut writer, lease, campaign, _) = take_lease("stale-cache");
        write_msg(
            &mut writer,
            &Msg::Result {
                lease,
                campaign,
                fingerprint: other.fingerprint(),
                record: JobRecord::quarantined(&other.jobs()[0], "stale".into()).to_json_line(),
                verify_failed: String::new(),
            },
        )
        .expect("send stale result");
        expect_drop(&mut reader, "fingerprint mismatch");

        // Leg 2: correctly-fingerprinted message whose record belongs to
        // a different grid — the circuit/sigma identity check refuses it.
        let (mut reader, mut writer, lease, campaign, spec_text) = take_lease("wrong-grid");
        let fingerprint = CampaignSpec::from_json(&spec_text)
            .expect("leased spec parses")
            .fingerprint();
        write_msg(
            &mut writer,
            &Msg::Result {
                lease,
                campaign,
                fingerprint,
                record: JobRecord::quarantined(&slow_spec().jobs()[0], "foreign".into())
                    .to_json_line(),
                verify_failed: String::new(),
            },
        )
        .expect("send foreign result");
        expect_drop(&mut reader, "grid mismatch");

        // An honest worker finishes the campaign; nothing the rogues
        // sent may have reached the journal.
        let worker = spawn_worker(&addr, "honest");
        let outcome = submit.join().expect("submit thread").expect("submit");
        assert_eq!(outcome.committed, spec.jobs().len());
        handle.shutdown();
        dispatcher
            .join()
            .expect("dispatcher thread")
            .expect("dispatcher run");
        worker.join().expect("worker thread").expect("worker run");
        assert_matches_reference(&spec, &journal, &ref_bytes, &ref_report, "foreign results");
        assert_eq!(
            open_lease_ids(&journal),
            Vec::<u64>::new(),
            "run left open grants in the lease log"
        );
        cleanup(&journal);
    });
}

/// A campaign that fails mid-flight (torn journal write) is retired
/// while a worker still holds a lease over its remaining jobs.  The
/// retirement must close that lease in the advisory log, or the next
/// `LeaseLog::open` would misreport it as a crash orphan.
#[test]
fn failed_campaign_retirement_closes_its_leases() {
    let spec = slow_spec();
    psbi_fault::with_spec("journal.write.torn@times=1", || {
        let journal = tmp("failretire");
        let _ = std::fs::remove_file(&journal);
        let (addr, handle, dispatcher) = spawn_dispatcher(serve_opts(false));
        let worker = spawn_worker(&addr, "doomed");
        let err = submit_campaign(
            &spec.to_json(),
            &journal.display().to_string(),
            &submit_opts(&addr),
        )
        .expect_err("torn journal write must fail the campaign");
        assert_eq!(err.code(), 4, "expected IO class, got: {err}");
        handle.shutdown();
        dispatcher
            .join()
            .expect("dispatcher thread")
            .expect("dispatcher run");
        worker.join().expect("worker thread").expect("worker run");
        assert_eq!(
            open_lease_ids(&journal),
            Vec::<u64>::new(),
            "failed campaign left open grants in the lease log"
        );
        cleanup(&journal);
    });
}

// ---------------------------------------------------------------------
// Subprocess legs: real processes, real SIGKILL.
// ---------------------------------------------------------------------

fn fleet_bin() -> &'static str {
    env!("CARGO_BIN_EXE_psbi-fleet")
}

fn wait_addr_file(path: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            let text = text.trim().to_string();
            if !text.is_empty() {
                return text;
            }
        }
        assert!(Instant::now() < deadline, "dispatcher never wrote {path:?}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Waits until the journal holds at least `records` committed lines
/// (header excluded).
fn wait_journal_records(path: &Path, records: usize) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let n = std::fs::read_to_string(path)
            .map(|text| text.lines().count().saturating_sub(1))
            .unwrap_or(0);
        if n >= records {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "journal {path:?} never reached {records} record(s)"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn kill9(child: &mut Child) {
    let pid = child.id();
    let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
    let _ = child.wait();
}

struct KillOnDrop(Child);
impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn sigkill_of_a_worker_mid_lease_is_byte_identical() {
    let spec = slow_spec();
    let (ref_bytes, ref_report) = psbi_fault::with_spec("", || reference(&spec, "wkill"));
    let journal = tmp("wkill");
    let _ = std::fs::remove_file(&journal);
    let addr_file = tmp("wkill_addr");
    let _ = std::fs::remove_file(&addr_file);
    let serve = Command::new(fleet_bin())
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--once",
            "--quiet",
            "--lease-jobs",
            "1", // granular leases: more chances to die mid-campaign
            "--lease-ms",
            "1500",
            "--inline-grace-ms",
            "600000",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let mut serve = KillOnDrop(serve);
    let addr = wait_addr_file(&addr_file);
    let spawn_worker_proc = |name: &str| {
        Command::new(fleet_bin())
            .args([
                "worker",
                "--addr",
                &addr,
                "--name",
                name,
                "--quiet",
                "--max-idle-ms",
                "10000",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn worker")
    };
    let mut victim = spawn_worker_proc("victim");
    let survivor = KillOnDrop(spawn_worker_proc("survivor"));
    let spec_path = tmp("wkill_spec");
    std::fs::write(&spec_path, spec.to_json()).unwrap();
    let submit = {
        let spec_text = spec.to_json();
        let journal = journal.display().to_string();
        let opts = submit_opts(&addr);
        std::thread::spawn(move || submit_campaign(&spec_text, &journal, &opts))
    };
    // SIGKILL the victim as soon as the campaign is demonstrably moving.
    wait_journal_records(&journal, 1);
    kill9(&mut victim);
    let outcome = submit.join().expect("submit thread").expect("submit");
    assert_eq!(outcome.committed, spec.jobs().len());
    let _ = serve.0.wait(); // --once: exits after the campaign
    drop(survivor);
    assert_matches_reference(&spec, &journal, &ref_bytes, &ref_report, "worker SIGKILL");
    cleanup(&journal);
    let _ = std::fs::remove_file(&addr_file);
    let _ = std::fs::remove_file(&spec_path);
}

#[test]
fn sigkill_of_the_dispatcher_resumes_byte_identically() {
    let spec = slow_spec();
    let (ref_bytes, ref_report) = psbi_fault::with_spec("", || reference(&spec, "dkill"));
    let journal = tmp("dkill");
    let _ = std::fs::remove_file(&journal);
    let addr_file = tmp("dkill_addr");
    let _ = std::fs::remove_file(&addr_file);
    let serve_args = |addr_file: &Path| {
        vec![
            "serve".to_string(),
            "--addr".into(),
            "127.0.0.1:0".into(),
            "--addr-file".into(),
            addr_file.display().to_string(),
            "--once".into(),
            "--quiet".into(),
            "--lease-jobs".into(),
            "1".into(),
            "--lease-ms".into(),
            "1500".into(),
            "--inline-grace-ms".into(),
            "600000".into(),
        ]
    };
    let mut serve1 = Command::new(fleet_bin())
        .args(serve_args(&addr_file))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve 1");
    let addr1 = wait_addr_file(&addr_file);
    let worker1 = KillOnDrop(
        Command::new(fleet_bin())
            .args([
                "worker",
                "--addr",
                &addr1,
                "--name",
                "w1",
                "--quiet",
                "--max-idle-ms",
                "4000",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn worker 1"),
    );
    let submit1 = {
        let spec_text = spec.to_json();
        let journal = journal.display().to_string();
        let opts = submit_opts(&addr1);
        std::thread::spawn(move || submit_campaign(&spec_text, &journal, &opts))
    };
    // Let the journal gain a committed prefix, then murder the dispatcher.
    wait_journal_records(&journal, 1);
    kill9(&mut serve1);
    let err = submit1
        .join()
        .expect("submit thread")
        .expect_err("submit must fail when the dispatcher dies");
    // Clean FIN surfaces as a dispatch error (10); a reset mid-read can
    // surface as IO (4).  Either way the class is loud and nonzero.
    assert!(
        err.code() == 10 || err.code() == 4,
        "expected dispatch/io error, got: {err}"
    );

    // Second dispatcher on a fresh port: the journal's valid prefix (the
    // tail may be torn by the kill) resumes; only missing jobs run.
    let _ = std::fs::remove_file(&addr_file);
    let serve2 = Command::new(fleet_bin())
        .args(serve_args(&addr_file))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve 2");
    let mut serve2 = KillOnDrop(serve2);
    let addr2 = wait_addr_file(&addr_file);
    let worker2 = KillOnDrop(
        Command::new(fleet_bin())
            .args([
                "worker",
                "--addr",
                &addr2,
                "--name",
                "w2",
                "--quiet",
                "--max-idle-ms",
                "10000",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn worker 2"),
    );
    let outcome = submit_campaign(
        &spec.to_json(),
        &journal.display().to_string(),
        &submit_opts(&addr2),
    )
    .expect("resumed submit");
    assert_eq!(outcome.committed, spec.jobs().len());
    assert!(
        outcome.resumed >= 1,
        "resume leg re-executed everything (resumed = 0)"
    );
    let _ = serve2.0.wait();
    drop(worker2);
    drop(worker1);
    assert_matches_reference(
        &spec,
        &journal,
        &ref_bytes,
        &ref_report,
        "dispatcher SIGKILL",
    );
    cleanup(&journal);
    let _ = std::fs::remove_file(&addr_file);
}
