//! Fleet error type.

/// Errors raised by campaign parsing, journaling and execution.
///
/// Each variant maps to a distinct process exit code (see
/// [`FleetError::code`]) so scripts driving `psbi-fleet` can tell a
/// malformed spec from a corrupt journal without parsing stderr.
#[derive(Debug)]
pub enum FleetError {
    /// The campaign spec is malformed or inconsistent.
    Spec(String),
    /// The journal is malformed or belongs to a different campaign.
    Journal(String),
    /// A circuit descriptor failed to materialise or build a flow.
    Circuit(String),
    /// Filesystem failure (journal or spec IO).
    Io(std::io::Error),
    /// A journal record *inside* the valid region failed its checksum or
    /// no longer parses — mid-file corruption, not a torn tail.  The
    /// journal is left untouched; `record` is the 0-based index of the
    /// first bad record.
    Corrupt {
        /// Index of the first corrupt record.
        record: usize,
        /// What exactly failed on that record.
        detail: String,
    },
    /// A worker thread died outside any job (the per-job `catch_unwind` /
    /// retry / quarantine machinery never saw the panic).
    Worker(String),
    /// The independent result verifier flagged at least one job.
    Verify(String),
    /// The dispatch layer failed: a protocol violation, an unreachable or
    /// lost dispatcher, or a campaign the dispatcher rejected.  Worker
    /// deaths and dropped connections are NOT this error — those are
    /// recovered by lease expiry and re-dispatch.
    Dispatch(String),
}

impl FleetError {
    /// Stable nonzero process exit code for this error class.  Exit code
    /// 2 is reserved for CLI usage errors.
    pub fn code(&self) -> u8 {
        match self {
            FleetError::Spec(_) => 3,
            FleetError::Io(_) => 4,
            FleetError::Journal(_) => 5,
            FleetError::Circuit(_) => 6,
            FleetError::Corrupt { .. } => 7,
            FleetError::Worker(_) => 8,
            FleetError::Verify(_) => 9,
            FleetError::Dispatch(_) => 10,
        }
    }
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Spec(m) => write!(f, "campaign spec error: {m}"),
            FleetError::Journal(m) => write!(f, "journal error: {m}"),
            FleetError::Circuit(m) => write!(f, "circuit error: {m}"),
            FleetError::Io(e) => write!(f, "io error: {e}"),
            FleetError::Corrupt { record, detail } => write!(
                f,
                "journal corrupt at record {record}: {detail} (mid-file damage — \
                 refusing to repair; restore the journal from backup or delete it \
                 to restart the campaign)"
            ),
            FleetError::Worker(m) => write!(f, "worker error: {m}"),
            FleetError::Verify(m) => write!(f, "verification failed: {m}"),
            FleetError::Dispatch(m) => write!(f, "dispatch error: {m}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let errors = [
            FleetError::Spec(String::new()),
            FleetError::Io(std::io::Error::other("x")),
            FleetError::Journal(String::new()),
            FleetError::Circuit(String::new()),
            FleetError::Corrupt {
                record: 0,
                detail: String::new(),
            },
            FleetError::Worker(String::new()),
            FleetError::Verify(String::new()),
            FleetError::Dispatch(String::new()),
        ];
        let mut codes: Vec<u8> = errors.iter().map(FleetError::code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errors.len());
        assert!(codes.iter().all(|&c| c > 2), "0/1/2 are reserved");
    }
}
