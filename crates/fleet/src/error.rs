//! Fleet error type.

/// Errors raised by campaign parsing, journaling and execution.
#[derive(Debug)]
pub enum FleetError {
    /// The campaign spec is malformed or inconsistent.
    Spec(String),
    /// The journal is malformed or belongs to a different campaign.
    Journal(String),
    /// A circuit descriptor failed to materialise or build a flow.
    Circuit(String),
    /// Filesystem failure (journal or spec IO).
    Io(std::io::Error),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Spec(m) => write!(f, "campaign spec error: {m}"),
            FleetError::Journal(m) => write!(f, "journal error: {m}"),
            FleetError::Circuit(m) => write!(f, "circuit error: {m}"),
            FleetError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e)
    }
}
