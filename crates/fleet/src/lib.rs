#![warn(missing_docs)]
//! # psbi_fleet — sharded multi-circuit campaign runner
//!
//! The paper evaluates its flow over a whole benchmark suite at several
//! target periods (`T = µT + k·σT`, k ∈ {0, 1, 2}).  This crate turns that
//! "many circuits × many targets" workload into a first-class subsystem:
//!
//! * **Declarative specs** ([`spec::CampaignSpec`]): circuits (paper
//!   suite, demo classes or arbitrary generated sizes), a sigma-factor
//!   sweep, sample counts and solver options — parsed from and rendered to
//!   a stable JSON form.
//! * **Deterministic job grids**: a spec expands circuit-major into jobs
//!   identified by their global grid index, the same
//!   seed-by-global-index discipline the flow applies to sample chunks.
//! * **Sharded execution** ([`runner::run_campaign`]): a persistent worker
//!   pool claims jobs work-stealing style; one flow per circuit serves the
//!   whole sigma sweep (timing graph and µT/σT calibration built once) and
//!   every flow shares one [`psbi_core::flow::WorkspacePool`].
//! * **Checkpoint/resume** ([`journal::Journal`]): each completed job is
//!   committed to an append-only journal *in job order* (a reorder buffer
//!   holds early finishers back).  A killed campaign resumes from the
//!   journal's valid prefix — re-running only the missing jobs — and the
//!   resumed journal and report are **byte-identical** to an uninterrupted
//!   run at any worker count (`tests/fleet_determinism.rs` pins this).
//! * **Aggregated reporting** ([`report::CampaignReport`]): per-circuit /
//!   per-k yield, buffer-count, area and wall-time tables, in
//!   human-readable and JSON form; wall times are quarantined in a
//!   non-canonical section so the canonical report stays deterministic.
//!
//! * **Distributed dispatch** ([`dispatch`], [`worker`], [`proto`]): a
//!   long-running `psbi-fleet serve` dispatcher partitions the job grid
//!   into deadline-carrying **leases** executed by `psbi-fleet worker`
//!   processes over a line-delimited JSON TCP protocol, merging results
//!   through the same reorder buffer into the same journal — byte-identical
//!   to a single-process run for any worker count, join/leave order or
//!   kill pattern (`crates/fleet/tests/dispatch_determinism.rs` pins this).
//!
//! The `psbi-fleet` binary wraps all of it:
//!
//! ```text
//! psbi-fleet init --out campaign.json        # write an editable example spec
//! psbi-fleet plan --spec campaign.json       # show the job grid
//! psbi-fleet run  --spec campaign.json --journal c.journal [--workers N]
//! psbi-fleet report --spec campaign.json --journal c.journal --json report.json
//! psbi-fleet serve --addr 127.0.0.1:7171     # dispatcher (campaigns + workers)
//! psbi-fleet worker --addr 127.0.0.1:7171    # lease executor (any machine)
//! psbi-fleet submit --addr 127.0.0.1:7171 --spec campaign.json --journal c.journal
//! ```
//!
//! # Example
//!
//! ```
//! use psbi_fleet::{run_campaign, CampaignReport, CampaignSpec, FleetOptions};
//!
//! let mut spec = CampaignSpec::example();
//! spec.samples = 40;
//! spec.yield_samples = 80;
//! spec.calibration_samples = 80;
//! let journal = std::env::temp_dir().join("psbi_fleet_doc_example.journal");
//! let _ = std::fs::remove_file(&journal);
//! let outcome = run_campaign(&spec, &journal, &FleetOptions::default()).unwrap();
//! assert!(outcome.complete());
//! let report = CampaignReport::from_outcome(&spec, &outcome);
//! assert!(report.text().contains("jobs complete"));
//! std::fs::remove_file(&journal).unwrap();
//! ```

pub mod dispatch;
pub mod error;
pub mod journal;
pub mod json;
pub mod proto;
pub mod report;
pub mod runner;
pub mod spec;
pub mod worker;

pub use dispatch::{serve, DispatchHandle, Dispatcher, ServeOptions};
pub use error::FleetError;
pub use journal::{JobRecord, Journal};
pub use report::{CampaignReport, SigmaSummary};
pub use runner::{run_campaign, CampaignOutcome, FleetOptions};
pub use spec::{CampaignSpec, JobSpec};
pub use worker::{run_worker, submit_campaign, SubmitOptions, SubmitOutcome, WorkerOptions};
