//! Regenerates the paper's Table I: buffer number and yield improvement
//! for each benchmark at target periods µT, µT + σT and µT + 2σT.
//!
//! ```text
//! cargo run -p psbi-bench --release --bin table1 -- \
//!     [--all] [--circuits s9234,s13207] [--samples 10000] \
//!     [--yield-samples 10000] [--seed 42] [--threads N]
//! ```
//!
//! Columns per period: `Nb` inserted buffers, `Ab` average range (steps,
//! max 20), `Y` yield with buffers (%), `Yi` improvement over the
//! unbuffered yield (percentage points), `T` runtime (s).  `Yo` is the
//! measured unbuffered yield (paper: ≈ 50 / 84.13 / 97.72 %).

use psbi_bench::{format_cell, run_cell, Args, ExperimentConfig};

fn main() {
    let args = Args::from_env();
    let cfg = ExperimentConfig::parse(&args, &["s9234", "s13207", "s15850"]);
    if cfg.circuits.is_empty() {
        eprintln!("no circuits selected");
        std::process::exit(1);
    }
    println!(
        "# Table I reproduction — {} samples, seed {}",
        cfg.samples, cfg.seed
    );
    println!("# (paper used 10000 samples; pass --samples 10000 --all for the full setting)");
    println!(
        "{:<14} {:>5} {:>6} | {:>31} | {:>31} | {:>31}",
        "Circuit", "ns", "ng", "T = muT", "T = muT+sigma", "T = muT+2sigma"
    );
    println!(
        "{:<14} {:>5} {:>6} | {:>4} {:>6} {:>6} {:>6} {:>8} | {:>4} {:>6} {:>6} {:>6} {:>8} | {:>4} {:>6} {:>6} {:>6} {:>8}",
        "", "", "", "Nb", "Ab", "Y%", "Yi%", "T(s)", "Nb", "Ab", "Y%", "Yi%", "T(s)",
        "Nb", "Ab", "Y%", "Yi%", "T(s)"
    );
    let mut json_rows = Vec::new();
    for spec in &cfg.circuits {
        let mut cells = Vec::new();
        let mut baselines = Vec::new();
        for sigma in [0.0, 1.0, 2.0] {
            let r = run_cell(spec, cfg.flow_config(sigma));
            baselines.push(r.yield_baseline);
            cells.push(r);
        }
        println!(
            "{:<14} {:>5} {:>6} | {} | {} | {}",
            spec.name,
            spec.n_ffs,
            spec.n_gates,
            format_cell(&cells[0]),
            format_cell(&cells[1]),
            format_cell(&cells[2]),
        );
        println!(
            "{:<27} |   (Yo = {:.2}%)               |   (Yo = {:.2}%)               |   (Yo = {:.2}%)",
            "", baselines[0], baselines[1], baselines[2]
        );
        json_rows.push((spec.name, cells));
    }
    // Machine-readable dump (CSV) for EXPERIMENTS.md bookkeeping.
    if args.has("csv") {
        println!("CSV circuit,sigma,nb,ab,yo,y,yi,runtime_s,mu_t,sigma_t,rescued,broken");
        for (name, cells) in &json_rows {
            for (sigma, r) in [0.0, 1.0, 2.0].iter().zip(cells) {
                println!(
                    "CSV {},{},{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.1},{:.1},{},{}",
                    name,
                    sigma,
                    r.nb,
                    r.ab,
                    r.yield_baseline,
                    r.yield_with_buffers,
                    r.improvement,
                    r.runtime.total_s,
                    r.mu_t,
                    r.sigma_t,
                    r.rescued,
                    r.broken
                );
            }
        }
    }
}
