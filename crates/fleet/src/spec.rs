//! Declarative campaign specifications and their deterministic job grids.
//!
//! A campaign names *what* to run — circuits, a target-period sweep
//! (`T = µT + k·σT`), sample counts, solver options — and the spec expands
//! into a fixed job grid: jobs are ordered circuit-major then by sigma
//! factor, and job `i`'s identity is its grid index.  Everything downstream
//! (sharding, journaling, resume) keys on that index, mirroring the
//! seed-by-global-index discipline of the flow's sample chunks.

use crate::error::FleetError;
use crate::json::{escape, fmt_f64, Json};
use psbi_core::flow::{FlowConfig, TargetPeriod};
use psbi_core::SolverOptions;
use psbi_netlist::bench_suite::CircuitRef;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A declarative multi-circuit campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name (journal and report labels).
    pub name: String,
    /// Circuits to sweep (see [`CircuitRef::parse`] for the text forms).
    pub circuits: Vec<CircuitRef>,
    /// Sigma factors `k` of the target sweep `T = µT + k·σT`
    /// (paper: 0, 1, 2).
    pub sigma_factors: Vec<f64>,
    /// Monte-Carlo samples driving insertion, per job.
    pub samples: usize,
    /// Fresh samples for yield evaluation, per job.
    pub yield_samples: usize,
    /// Samples for the µT/σT calibration run, per circuit.
    pub calibration_samples: usize,
    /// Master seed shared by every job (streams derive from it).
    pub seed: u64,
    /// Worker threads inside one job's flow (0 = all cores).  Campaigns
    /// usually shard across jobs instead and keep this at 1.
    pub threads_per_job: usize,
    /// Per-sample solver limits.
    pub solver: SolverOptions,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        Self {
            name: "campaign".into(),
            circuits: Vec::new(),
            sigma_factors: vec![0.0, 1.0, 2.0],
            samples: 1_000,
            yield_samples: 4_000,
            calibration_samples: 1_000,
            seed: 42,
            threads_per_job: 1,
            solver: SolverOptions::default(),
        }
    }
}

/// One cell of the expanded campaign grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Global job index — the sharding and journaling key.
    pub index: usize,
    /// Index into [`CampaignSpec::circuits`].
    pub circuit_index: usize,
    /// The circuit descriptor.
    pub circuit: CircuitRef,
    /// The sigma factor of this job's target period.
    pub sigma_factor: f64,
}

impl CampaignSpec {
    /// A ready-to-edit example campaign (written by `psbi-fleet init`).
    pub fn example() -> Self {
        Self {
            name: "quickstart".into(),
            circuits: vec![
                CircuitRef::parse("tiny_demo:1").expect("valid"),
                CircuitRef::parse("tiny_demo:2").expect("valid"),
            ],
            sigma_factors: vec![0.0, 2.0],
            samples: 200,
            yield_samples: 400,
            calibration_samples: 300,
            ..Self::default()
        }
    }

    /// Checks the spec for emptiness and malformed numerics.
    ///
    /// # Errors
    ///
    /// [`FleetError::Spec`] with a human-readable message.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.circuits.is_empty() {
            return Err(FleetError::Spec("campaign has no circuits".into()));
        }
        if self.sigma_factors.is_empty() {
            return Err(FleetError::Spec("campaign has no sigma factors".into()));
        }
        if self.sigma_factors.iter().any(|k| !k.is_finite()) {
            return Err(FleetError::Spec("sigma factors must be finite".into()));
        }
        if self.samples == 0 || self.yield_samples == 0 || self.calibration_samples == 0 {
            return Err(FleetError::Spec("sample counts must be positive".into()));
        }
        Ok(())
    }

    /// Expands the deterministic job grid: circuit-major, then sigma
    /// factor, with the global index as identity.
    pub fn jobs(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(self.circuits.len() * self.sigma_factors.len());
        for (ci, circuit) in self.circuits.iter().enumerate() {
            for k in &self.sigma_factors {
                jobs.push(JobSpec {
                    index: jobs.len(),
                    circuit_index: ci,
                    circuit: circuit.clone(),
                    sigma_factor: *k,
                });
            }
        }
        jobs
    }

    /// The flow configuration shared by this campaign's jobs (the target
    /// period is supplied per job via
    /// [`psbi_core::flow::BufferInsertionFlow::run_target`]).
    pub fn flow_config(&self) -> FlowConfig {
        FlowConfig {
            samples: self.samples,
            yield_samples: self.yield_samples,
            calibration_samples: self.calibration_samples,
            seed: self.seed,
            threads: self.threads_per_job,
            target: TargetPeriod::SigmaFactor(0.0),
            solver: self.solver,
            ..FlowConfig::default()
        }
    }

    /// FNV-1a fingerprint of the canonical spec JSON — stamped into the
    /// journal header so a journal can never be resumed against a
    /// different campaign.
    pub fn fingerprint(&self) -> String {
        let hash = psbi_variation::seeding::fnv1a(self.to_json().as_bytes());
        format!("{hash:016x}")
    }

    /// Renders the canonical JSON form (stable key order, deterministic
    /// float text — [`CampaignSpec::from_json`] inverts it).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"name\": \"{}\",", escape(&self.name));
        let circuits: Vec<String> = self
            .circuits
            .iter()
            .map(|c| format!("\"{}\"", escape(&c.id())))
            .collect();
        let _ = writeln!(out, "  \"circuits\": [{}],", circuits.join(", "));
        let sigmas: Vec<String> = self.sigma_factors.iter().map(|k| fmt_f64(*k)).collect();
        let _ = writeln!(out, "  \"sigma_factors\": [{}],", sigmas.join(", "));
        let _ = writeln!(out, "  \"samples\": {},", self.samples);
        let _ = writeln!(out, "  \"yield_samples\": {},", self.yield_samples);
        let _ = writeln!(
            out,
            "  \"calibration_samples\": {},",
            self.calibration_samples
        );
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"threads_per_job\": {},", self.threads_per_job);
        let _ = writeln!(out, "  \"solver\": {{");
        let _ = writeln!(out, "    \"region_radius\": {},", self.solver.region_radius);
        let _ = writeln!(out, "    \"region_cap\": {},", self.solver.region_cap);
        let _ = writeln!(out, "    \"bb_node_cap\": {},", self.solver.bb_node_cap);
        let _ = writeln!(
            out,
            "    \"exact_push_cap\": {}",
            self.solver.exact_push_cap
        );
        let _ = writeln!(out, "  }}");
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a spec from its JSON form.  `solver` and the scalar knobs
    /// fall back to defaults when omitted; `circuits` entries use the
    /// [`CircuitRef::parse`] text forms.
    ///
    /// # Errors
    ///
    /// [`FleetError::Spec`] naming the offending field.
    pub fn from_json(text: &str) -> Result<Self, FleetError> {
        let v = Json::parse(text).map_err(|e| FleetError::Spec(format!("bad JSON: {e}")))?;
        let mut spec = CampaignSpec::default();
        if let Some(name) = v.get("name") {
            spec.name = name
                .as_str()
                .ok_or_else(|| FleetError::Spec("`name` must be a string".into()))?
                .to_string();
        }
        let circuits = v
            .get("circuits")
            .and_then(Json::as_arr)
            .ok_or_else(|| FleetError::Spec("`circuits` must be an array".into()))?;
        spec.circuits = circuits
            .iter()
            .map(|c| {
                c.as_str()
                    .ok_or_else(|| FleetError::Spec("circuit entries must be strings".into()))
                    .and_then(|s| CircuitRef::parse(s).map_err(FleetError::Spec))
            })
            .collect::<Result<_, _>>()?;
        if let Some(ks) = v.get("sigma_factors") {
            let arr = ks
                .as_arr()
                .ok_or_else(|| FleetError::Spec("`sigma_factors` must be an array".into()))?;
            spec.sigma_factors = arr
                .iter()
                .map(|k| {
                    k.as_f64()
                        .ok_or_else(|| FleetError::Spec("sigma factors must be numbers".into()))
                })
                .collect::<Result<_, _>>()?;
        }
        let usize_field = |key: &str, default: usize| -> Result<usize, FleetError> {
            match v.get(key) {
                None => Ok(default),
                Some(x) => x
                    .as_usize()
                    .ok_or_else(|| FleetError::Spec(format!("`{key}` must be an integer"))),
            }
        };
        spec.samples = usize_field("samples", spec.samples)?;
        spec.yield_samples = usize_field("yield_samples", spec.yield_samples)?;
        spec.calibration_samples = usize_field("calibration_samples", spec.calibration_samples)?;
        spec.threads_per_job = usize_field("threads_per_job", spec.threads_per_job)?;
        if let Some(seed) = v.get("seed") {
            spec.seed = seed
                .as_u64()
                .ok_or_else(|| FleetError::Spec("`seed` must be an integer".into()))?;
        }
        if let Some(solver) = v.get("solver") {
            let field = |key: &str, default: usize| -> Result<usize, FleetError> {
                match solver.get(key) {
                    None => Ok(default),
                    Some(x) => x.as_usize().ok_or_else(|| {
                        FleetError::Spec(format!("`solver.{key}` must be an integer"))
                    }),
                }
            };
            spec.solver.region_radius = field("region_radius", spec.solver.region_radius)?;
            spec.solver.region_cap = field("region_cap", spec.solver.region_cap)?;
            spec.solver.bb_node_cap = field("bb_node_cap", spec.solver.bb_node_cap)?;
            spec.solver.exact_push_cap = field("exact_push_cap", spec.solver.exact_push_cap)?;
        }
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_round_trips_and_fingerprint_is_stable() {
        let spec = CampaignSpec::example();
        let json = spec.to_json();
        let back = CampaignSpec::from_json(&json).unwrap();
        assert_eq!(spec, back);
        assert_eq!(spec.fingerprint(), back.fingerprint());
        // A different spec fingerprints differently.
        let mut other = spec.clone();
        other.samples += 1;
        assert_ne!(spec.fingerprint(), other.fingerprint());
    }

    #[test]
    fn grid_is_circuit_major_with_global_indices() {
        let spec = CampaignSpec::example();
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 4);
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.index, i);
        }
        assert_eq!(jobs[0].circuit_index, 0);
        assert_eq!(jobs[1].circuit_index, 0);
        assert_eq!(jobs[2].circuit_index, 1);
        assert_eq!(jobs[0].sigma_factor, 0.0);
        assert_eq!(jobs[1].sigma_factor, 2.0);
    }

    #[test]
    fn validation_rejects_empty_and_bad_specs() {
        let mut spec = CampaignSpec::default();
        assert!(spec.validate().is_err()); // no circuits
        spec.circuits = vec![CircuitRef::parse("tiny_demo:1").unwrap()];
        spec.sigma_factors.clear();
        assert!(spec.validate().is_err());
        spec.sigma_factors = vec![f64::NAN];
        assert!(spec.validate().is_err());
        spec.sigma_factors = vec![0.0];
        spec.samples = 0;
        assert!(spec.validate().is_err());
        spec.samples = 10;
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn from_json_applies_defaults_and_reports_errors() {
        let spec = CampaignSpec::from_json(r#"{"circuits": ["tiny_demo:7"], "seed": 7}"#).unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.sigma_factors, vec![0.0, 1.0, 2.0]);
        assert_eq!(spec.samples, 1_000);
        assert!(CampaignSpec::from_json(r#"{"circuits": ["nope"]}"#).is_err());
        assert!(CampaignSpec::from_json(r#"{"circuits": "tiny_demo:7"}"#).is_err());
        assert!(CampaignSpec::from_json("{").is_err());
    }
}
