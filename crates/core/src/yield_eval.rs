//! Yield evaluation on fresh Monte-Carlo samples.
//!
//! A manufactured chip passes at clock period `T` iff the difference-
//! constraint system over the deployed (possibly grouped) buffers is
//! feasible.  Without buffers that reduces to "every floored slack is
//! non-negative".  Feasibility per chip is decided by
//! [`psbi_timing::DiffSolver`] in near-linear time, so yield evaluation
//! needs no ILP at all.
//!
//! The evaluator is batch-friendly: [`Deployment::chip_passes_view`] takes
//! a borrowed [`ConstraintsView`] (one row of a
//! [`psbi_timing::ConstraintBatch`]) and leans on the solver's warm-start
//! path — consecutive chips usually validate against the previous chip's
//! witness in a single `O(arcs)` sweep.

use crate::group::Grouping;
use psbi_timing::feasibility::{Arc, DiffSolver};
use psbi_timing::{ConstraintsView, IntegerConstraints, SequentialGraph};
use serde::{Deserialize, Serialize};

const NONE: u32 = u32::MAX;

/// The final buffer deployment: which FFs share which physical buffer and
/// the buffer windows (in steps).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deployment {
    /// Per FF: physical buffer (group) id, or none.
    pub var_of_ff: Vec<u32>,
    /// Window per physical buffer.
    pub bounds: Vec<(i64, i64)>,
}

impl Deployment {
    /// A deployment with no buffers at all.
    pub fn none(n_ffs: usize) -> Self {
        Self {
            var_of_ff: vec![NONE; n_ffs],
            bounds: Vec::new(),
        }
    }

    /// Builds the deployment from a grouping result.
    pub fn from_grouping(n_ffs: usize, grouping: &Grouping) -> Self {
        let mut var_of_ff = vec![NONE; n_ffs];
        let mut bounds = Vec::with_capacity(grouping.groups.len());
        for (g, group) in grouping.groups.iter().enumerate() {
            for &ff in &group.members {
                var_of_ff[ff] = g as u32;
            }
            bounds.push((group.lo, group.hi));
        }
        Self { var_of_ff, bounds }
    }

    /// Number of physical buffers.
    pub fn num_buffers(&self) -> usize {
        self.bounds.len()
    }

    /// Builds the constraint arcs of one sample.  Returns `false` when a
    /// constraint between two bufferless FFs is violated (chip dead).
    ///
    /// `k(a) − k(b) ≤ w` becomes an arc `b → a` of weight `w`; the root
    /// variable is `self.num_buffers()`.
    pub fn build_arcs(
        &self,
        sg: &SequentialGraph,
        ic: &IntegerConstraints,
        arcs: &mut Vec<Arc>,
    ) -> bool {
        self.build_arcs_view(sg, ic.as_view(), arcs)
    }

    /// As [`Deployment::build_arcs`], from a borrowed constraint view.
    pub fn build_arcs_view(
        &self,
        sg: &SequentialGraph,
        ic: ConstraintsView<'_>,
        arcs: &mut Vec<Arc>,
    ) -> bool {
        arcs.clear();
        let root = self.num_buffers() as u32;
        for (e, edge) in sg.edges.iter().enumerate() {
            let vf = self.var_of_ff[edge.from as usize];
            let vt = self.var_of_ff[edge.to as usize];
            let (vf, vt) = (
                if vf == NONE { root } else { vf },
                if vt == NONE { root } else { vt },
            );
            // Setup: k_from − k_to ≤ sb.
            let sb = ic.setup_bound[e];
            if vf == root && vt == root {
                if sb < 0 {
                    return false;
                }
            } else {
                arcs.push(Arc::new(vt, vf, sb));
            }
            // Hold: k_to − k_from ≤ hb.
            let hb = ic.hold_bound[e];
            if vf == root && vt == root {
                if hb < 0 {
                    return false;
                }
            } else {
                arcs.push(Arc::new(vf, vt, hb));
            }
        }
        true
    }

    /// Decides whether one sample chip can be configured.
    pub fn chip_passes(
        &self,
        sg: &SequentialGraph,
        ic: &IntegerConstraints,
        solver: &mut DiffSolver,
        arcs: &mut Vec<Arc>,
    ) -> bool {
        self.chip_passes_view(sg, ic.as_view(), solver, arcs)
    }

    /// As [`Deployment::chip_passes`], from a borrowed constraint view.
    ///
    /// Uses the solver's warm-start path: the witness that configured the
    /// previous chip is validated first and the SPFA only runs when that
    /// check fails, which makes evaluating a long stream of similar chips
    /// substantially cheaper than cold per-chip solves.
    pub fn chip_passes_view(
        &self,
        sg: &SequentialGraph,
        ic: ConstraintsView<'_>,
        solver: &mut DiffSolver,
        arcs: &mut Vec<Arc>,
    ) -> bool {
        if !self.build_arcs_view(sg, ic, arcs) {
            return false;
        }
        solver.feasible_bounded_warm(self.num_buffers(), arcs, &self.bounds)
    }
}

/// Aggregated yield over an evaluation stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct YieldReport {
    /// Chips evaluated.
    pub samples: usize,
    /// Chips passing without any buffer.
    pub baseline_pass: usize,
    /// Chips passing with the deployed buffers.
    pub buffered_pass: usize,
    /// Chips failing baseline but rescued by buffers.
    pub rescued: usize,
    /// Chips passing baseline but broken by buffers (possible when a
    /// window excludes zero).
    pub broken: usize,
}

impl YieldReport {
    /// Baseline yield in `[0, 1]`.
    pub fn yield_baseline(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.baseline_pass as f64 / self.samples as f64
    }

    /// Yield with buffers in `[0, 1]`.
    pub fn yield_buffered(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.buffered_pass as f64 / self.samples as f64
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &YieldReport) {
        self.samples += other.samples;
        self.baseline_pass += other.baseline_pass;
        self.buffered_pass += other.buffered_pass;
        self.rescued += other.rescued;
        self.broken += other.broken;
    }

    /// Records one chip outcome.
    pub fn record(&mut self, baseline: bool, buffered: bool) {
        self.samples += 1;
        if baseline {
            self.baseline_pass += 1;
        }
        if buffered {
            self.buffered_pass += 1;
        }
        if !baseline && buffered {
            self.rescued += 1;
        }
        if baseline && !buffered {
            self.broken += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::Group;
    use psbi_timing::seq::SeqEdge;
    use psbi_variation::CanonicalForm;

    fn graph(n: usize, edges: &[(u32, u32)]) -> SequentialGraph {
        SequentialGraph::from_parts(
            n,
            edges
                .iter()
                .map(|(a, b)| SeqEdge {
                    from: *a,
                    to: *b,
                    max_delay: CanonicalForm::constant(1.0),
                    min_delay: CanonicalForm::constant(1.0),
                })
                .collect(),
            vec![CanonicalForm::constant(1.0); n],
            vec![CanonicalForm::constant(1.0); n],
        )
    }

    fn ic(setup: &[i64], hold: &[i64]) -> IntegerConstraints {
        IntegerConstraints {
            setup_bound: setup.to_vec(),
            hold_bound: hold.to_vec(),
        }
    }

    #[test]
    fn no_buffers_chip_passes_iff_bounds_nonnegative() {
        let sg = graph(2, &[(0, 1)]);
        let dep = Deployment::none(2);
        let mut solver = DiffSolver::new();
        let mut arcs = Vec::new();
        assert!(dep.chip_passes(&sg, &ic(&[0], &[0]), &mut solver, &mut arcs));
        assert!(!dep.chip_passes(&sg, &ic(&[-1], &[0]), &mut solver, &mut arcs));
        assert!(!dep.chip_passes(&sg, &ic(&[3], &[-2]), &mut solver, &mut arcs));
    }

    #[test]
    fn buffer_rescues_setup_violation() {
        let sg = graph(2, &[(0, 1)]);
        let grouping = Grouping {
            groups: vec![Group {
                members: vec![1],
                lo: 0,
                hi: 5,
                usage: 1,
            }],
            dropped: vec![],
            correlated_pairs: 0,
            merged_pairs: 0,
        };
        let dep = Deployment::from_grouping(2, &grouping);
        let mut solver = DiffSolver::new();
        let mut arcs = Vec::new();
        // k0 − k1 ≤ −3: buffer on FF1 with window up to +5 fixes it.
        assert!(dep.chip_passes(&sg, &ic(&[-3], &[9]), &mut solver, &mut arcs));
        // But −7 is beyond the window.
        assert!(!dep.chip_passes(&sg, &ic(&[-7], &[9]), &mut solver, &mut arcs));
    }

    #[test]
    fn shared_buffer_cannot_fix_intra_group_violation() {
        // Both FFs in the same group: their relative shift is always 0.
        let sg = graph(2, &[(0, 1)]);
        let grouping = Grouping {
            groups: vec![Group {
                members: vec![0, 1],
                lo: -5,
                hi: 5,
                usage: 2,
            }],
            dropped: vec![],
            correlated_pairs: 1,
            merged_pairs: 1,
        };
        let dep = Deployment::from_grouping(2, &grouping);
        let mut solver = DiffSolver::new();
        let mut arcs = Vec::new();
        assert!(!dep.chip_passes(&sg, &ic(&[-1], &[9]), &mut solver, &mut arcs));
        assert!(dep.chip_passes(&sg, &ic(&[0], &[9]), &mut solver, &mut arcs));
    }

    #[test]
    fn window_excluding_zero_can_break_a_passing_chip() {
        // FF1's buffer window is [3, 5]: it ALWAYS delays FF1 by ≥ 3 steps.
        // Chip passes baseline (bounds 0) but hold on the edge then fails:
        // hold bound 2 < k1 − k0 = 3.
        let sg = graph(2, &[(0, 1)]);
        let grouping = Grouping {
            groups: vec![Group {
                members: vec![1],
                lo: 3,
                hi: 5,
                usage: 1,
            }],
            dropped: vec![],
            correlated_pairs: 0,
            merged_pairs: 0,
        };
        let dep = Deployment::from_grouping(2, &grouping);
        let mut solver = DiffSolver::new();
        let mut arcs = Vec::new();
        let c = ic(&[9], &[2]);
        let baseline = Deployment::none(2).chip_passes(&sg, &c, &mut solver, &mut arcs);
        assert!(baseline);
        assert!(!dep.chip_passes(&sg, &c, &mut solver, &mut arcs));
    }

    #[test]
    fn report_accounting() {
        let mut r = YieldReport::default();
        r.record(true, true);
        r.record(false, true);
        r.record(false, false);
        r.record(true, false);
        assert_eq!(r.samples, 4);
        assert_eq!(r.baseline_pass, 2);
        assert_eq!(r.buffered_pass, 2);
        assert_eq!(r.rescued, 1);
        assert_eq!(r.broken, 1);
        assert!((r.yield_baseline() - 0.5).abs() < 1e-12);
        let mut other = YieldReport::default();
        other.record(true, true);
        r.merge(&other);
        assert_eq!(r.samples, 5);
        assert_eq!(r.baseline_pass, 3);
    }
}
