//! Append-only campaign journal: the checkpoint/resume backbone.
//!
//! The journal is a line-oriented JSON file.  Line 0 is a header binding
//! the file to one campaign (spec fingerprint + job count); every further
//! line is the completed record of exactly one job, written **in job-index
//! order** regardless of which worker finished first (the runner holds
//! out-of-order completions back — a reorder buffer).  Consequences:
//!
//! * a journal's byte content is a pure function of (spec, number of
//!   completed jobs) — identical for any worker count;
//! * a killed campaign leaves a valid prefix plus at most one torn line,
//!   which [`Journal::open`] repairs by truncating to the last complete
//!   record, so resume continues exactly where the prefix ends;
//! * replay needs no sorting or deduplication — records ARE the prefix.
//!
//! Records deliberately exclude wall-clock times: they are the one
//! non-deterministic part of a result, and keeping them out is what makes
//! `journal bytes (interrupted + resumed) == journal bytes (uninterrupted)`
//! testable.  Timings live in the in-memory [`crate::runner::CampaignOutcome`]
//! and the report's optional (non-canonical) timing section.
//!
//! # Format v2: per-record checksums
//!
//! Every record line ends in `"crc":"<16 hex digits>"` — the FNV-1a hash
//! of the record body (the line with the crc member spliced out).  The
//! checksum lets replay distinguish the two ways a journal can be damaged:
//!
//! * **torn tail** — the *last* line(s) fail their checksum and nothing
//!   valid follows.  That is the signature of a kill mid-write; `open`
//!   truncates to the valid prefix and the campaign resumes.
//! * **mid-file corruption** — a record fails its checksum (or no longer
//!   parses) but a valid, checksummed record follows it.  No crash
//!   produces that shape; something rewrote history.  Replay refuses with
//!   [`FleetError::Corrupt`] naming the exact record and leaves the file
//!   untouched.
//!
//! The same refusal covers a record that checksums and parses but sits at
//! the wrong position: an out-of-sequence job index, or a sequenced record
//! beyond the spec's job grid.  A kill tears bytes — it cannot forge a
//! valid checksum over the wrong index — so both shapes are corruption
//! (or a spec/journal mix-up), never a torn tail, and are never silently
//! truncated.
//!
//! The header carries `"psbi_fleet_journal":2`; v1 journals (no
//! checksums) are refused through the usual header-mismatch path, so a
//! resumed campaign can never mix checksummed and unchecksummed records.
//!
//! Records for jobs that kept panicking past the retry budget are written
//! as **quarantined**: same line format, `"quarantined":true`, numeric
//! result fields zeroed, and the `fault` field carrying the deterministic
//! panic payload — so the journal stays byte-identical for any worker
//! count even when jobs fail.

use crate::error::FleetError;
use crate::json::{escape, fmt_f64, Json};
use crate::spec::{CampaignSpec, JobSpec};
use psbi_core::flow::InsertionResult;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The deterministic result of one campaign job — everything the
/// aggregated report needs, nothing wall-clock dependent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Global job index in the campaign grid.
    pub job: usize,
    /// Canonical circuit descriptor (see `CircuitRef::id`).
    pub circuit_id: String,
    /// Circuit display name.
    pub circuit: String,
    /// Flip-flop count.
    pub n_ffs: usize,
    /// Gate count.
    pub n_gates: usize,
    /// Sigma factor `k` of the target `T = µT + k·σT`.
    pub sigma_factor: f64,
    /// Calibrated mean of the unbuffered minimum period (ps).
    pub mu_t: f64,
    /// Calibrated std-dev of the unbuffered minimum period (ps).
    pub sigma_t: f64,
    /// Target clock period used (ps).
    pub period: f64,
    /// Buffer step δ (ps).
    pub step: f64,
    /// Physical buffers inserted (`Nb`).
    pub nb: usize,
    /// Average buffer range in steps (`Ab`).
    pub ab: f64,
    /// Yield without buffers (%, `Yo`).
    pub yield_baseline: f64,
    /// Yield with buffers (%, `Y`).
    pub yield_with_buffers: f64,
    /// Improvement in percentage points (`Yi`).
    pub improvement: f64,
    /// Chips rescued by the buffers in the evaluation stream.
    pub rescued: usize,
    /// Chips broken by the buffers.
    pub broken: usize,
    /// Buffer count before grouping.
    pub buffers_before_grouping: usize,
    /// Total delay elements of the deployed buffers (area proxy).
    pub delay_elements: u64,
    /// Total configuration register bits.
    pub config_bits: u64,
    /// Samples unfixable in the A1 pass.
    pub a1_infeasible: u64,
    /// Samples unfixable in the final pass.
    pub b2_infeasible: u64,
    /// Whether the step-2 refit pass ran.
    pub refit_ran: bool,
    /// Whether this job exhausted its retry budget and was quarantined
    /// instead of producing a result (numeric fields are zeroed).
    pub quarantined: bool,
    /// The deterministic fault description for a quarantined job (empty
    /// for successful jobs).
    pub fault: String,
}

/// FNV-1a over the record body — the per-record checksum (same hash the
/// spec fingerprint uses, so the journal depends on no extra machinery).
fn crc(body: &str) -> u64 {
    psbi_variation::seeding::fnv1a(body.as_bytes())
}

impl JobRecord {
    /// Distils one flow result into its deterministic record.
    pub fn from_result(job: &JobSpec, r: &InsertionResult) -> Self {
        let area = r.area();
        Self {
            job: job.index,
            circuit_id: job.circuit.id(),
            circuit: r.circuit.clone(),
            n_ffs: r.n_ffs,
            n_gates: r.n_gates,
            sigma_factor: job.sigma_factor,
            mu_t: r.mu_t,
            sigma_t: r.sigma_t,
            period: r.period,
            step: r.step,
            nb: r.nb,
            ab: r.ab,
            yield_baseline: r.yield_baseline,
            yield_with_buffers: r.yield_with_buffers,
            improvement: r.improvement,
            rescued: r.rescued,
            broken: r.broken,
            buffers_before_grouping: r.buffers_before_grouping,
            delay_elements: area.delay_elements,
            config_bits: area.config_bits,
            a1_infeasible: r.stats.a1_infeasible,
            b2_infeasible: r.stats.b2_infeasible,
            refit_ran: r.stats.refit_ran,
            quarantined: false,
            fault: String::new(),
        }
    }

    /// The record of a job that exhausted its retry budget: every result
    /// field is zeroed (a quarantined job produced no result) so the line
    /// is a pure function of the job spec and the fault text — identical
    /// for any worker count or retry timing.
    pub fn quarantined(job: &JobSpec, fault: String) -> Self {
        Self {
            job: job.index,
            circuit_id: job.circuit.id(),
            circuit: job.circuit.id(),
            n_ffs: 0,
            n_gates: 0,
            sigma_factor: job.sigma_factor,
            mu_t: 0.0,
            sigma_t: 0.0,
            period: 0.0,
            step: 0.0,
            nb: 0,
            ab: 0.0,
            yield_baseline: 0.0,
            yield_with_buffers: 0.0,
            improvement: 0.0,
            rescued: 0,
            broken: 0,
            buffers_before_grouping: 0,
            delay_elements: 0,
            config_bits: 0,
            a1_infeasible: 0,
            b2_infeasible: 0,
            refit_ran: false,
            quarantined: true,
            fault,
        }
    }

    /// Renders the record body — the line *without* its checksum member
    /// (stable key order, shortest round-trip floats).
    fn body(&self) -> String {
        format!(
            concat!(
                "{{\"job\":{},\"circuit_id\":\"{}\",\"circuit\":\"{}\",",
                "\"n_ffs\":{},\"n_gates\":{},\"sigma_factor\":{},",
                "\"mu_t\":{},\"sigma_t\":{},\"period\":{},\"step\":{},",
                "\"nb\":{},\"ab\":{},\"yield_baseline\":{},",
                "\"yield_with_buffers\":{},\"improvement\":{},",
                "\"rescued\":{},\"broken\":{},\"buffers_before_grouping\":{},",
                "\"delay_elements\":{},\"config_bits\":{},",
                "\"a1_infeasible\":{},\"b2_infeasible\":{},\"refit_ran\":{},",
                "\"quarantined\":{},\"fault\":\"{}\"}}"
            ),
            self.job,
            escape(&self.circuit_id),
            escape(&self.circuit),
            self.n_ffs,
            self.n_gates,
            fmt_f64(self.sigma_factor),
            fmt_f64(self.mu_t),
            fmt_f64(self.sigma_t),
            fmt_f64(self.period),
            fmt_f64(self.step),
            self.nb,
            fmt_f64(self.ab),
            fmt_f64(self.yield_baseline),
            fmt_f64(self.yield_with_buffers),
            fmt_f64(self.improvement),
            self.rescued,
            self.broken,
            self.buffers_before_grouping,
            self.delay_elements,
            self.config_bits,
            self.a1_infeasible,
            self.b2_infeasible,
            self.refit_ran,
            self.quarantined,
            escape(&self.fault),
        )
    }

    /// Renders the single-line JSON form: the body with the FNV-1a
    /// checksum of the body spliced in as the final `crc` member
    /// (byte-deterministic for identical results).
    pub fn to_json_line(&self) -> String {
        let body = self.body();
        format!(
            "{},\"crc\":\"{:016x}\"}}",
            &body[..body.len() - 1],
            crc(&body)
        )
    }

    /// Splits a record line into (body, claimed checksum).  `escape`
    /// backslash-escapes quotes inside string values, so the needle
    /// `,"crc":"` can only occur in the checksum splice itself.
    fn split_crc(line: &str) -> Option<(String, u64)> {
        let idx = line.rfind(",\"crc\":\"")?;
        let hex = line[idx + 8..].strip_suffix("\"}")?;
        if hex.len() != 16 {
            return None;
        }
        let claimed = u64::from_str_radix(hex, 16).ok()?;
        let mut body = line[..idx].to_string();
        body.push('}');
        Some((body, claimed))
    }

    /// Parses and checksum-verifies one journal line.
    ///
    /// # Errors
    ///
    /// [`FleetError::Journal`] on a missing/mismatched checksum or a
    /// malformed body.
    pub fn from_json_line(line: &str) -> Result<Self, FleetError> {
        let (body, claimed) = Self::split_crc(line)
            .ok_or_else(|| FleetError::Journal("record has no checksum member".into()))?;
        let actual = crc(&body);
        if actual != claimed {
            return Err(FleetError::Journal(format!(
                "record checksum mismatch (stored {claimed:016x}, computed {actual:016x})"
            )));
        }
        let parsed = Json::parse(&body)
            .map_err(|e| FleetError::Journal(format!("record is not valid JSON: {e}")))?;
        Self::from_json(&parsed)
    }

    /// Parses a record line previously written by
    /// [`JobRecord::to_json_line`].
    ///
    /// # Errors
    ///
    /// [`FleetError::Journal`] naming the missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<Self, FleetError> {
        let field = |key: &str| -> Result<&Json, FleetError> {
            v.get(key)
                .ok_or_else(|| FleetError::Journal(format!("record missing `{key}`")))
        };
        let usize_of = |key: &str| -> Result<usize, FleetError> {
            field(key)?
                .as_usize()
                .ok_or_else(|| FleetError::Journal(format!("`{key}` must be an integer")))
        };
        let u64_of = |key: &str| -> Result<u64, FleetError> {
            field(key)?
                .as_u64()
                .ok_or_else(|| FleetError::Journal(format!("`{key}` must be an integer")))
        };
        let f64_of = |key: &str| -> Result<f64, FleetError> {
            field(key)?
                .as_f64()
                .ok_or_else(|| FleetError::Journal(format!("`{key}` must be a number")))
        };
        let str_of = |key: &str| -> Result<String, FleetError> {
            Ok(field(key)?
                .as_str()
                .ok_or_else(|| FleetError::Journal(format!("`{key}` must be a string")))?
                .to_string())
        };
        Ok(Self {
            job: usize_of("job")?,
            circuit_id: str_of("circuit_id")?,
            circuit: str_of("circuit")?,
            n_ffs: usize_of("n_ffs")?,
            n_gates: usize_of("n_gates")?,
            sigma_factor: f64_of("sigma_factor")?,
            mu_t: f64_of("mu_t")?,
            sigma_t: f64_of("sigma_t")?,
            period: f64_of("period")?,
            step: f64_of("step")?,
            nb: usize_of("nb")?,
            ab: f64_of("ab")?,
            yield_baseline: f64_of("yield_baseline")?,
            yield_with_buffers: f64_of("yield_with_buffers")?,
            improvement: f64_of("improvement")?,
            rescued: usize_of("rescued")?,
            broken: usize_of("broken")?,
            buffers_before_grouping: usize_of("buffers_before_grouping")?,
            delay_elements: u64_of("delay_elements")?,
            config_bits: u64_of("config_bits")?,
            a1_infeasible: u64_of("a1_infeasible")?,
            b2_infeasible: u64_of("b2_infeasible")?,
            refit_ran: field("refit_ran")?
                .as_bool()
                .ok_or_else(|| FleetError::Journal("`refit_ran` must be a bool".into()))?,
            quarantined: field("quarantined")?
                .as_bool()
                .ok_or_else(|| FleetError::Journal("`quarantined` must be a bool".into()))?,
            fault: str_of("fault")?,
        })
    }
}

/// The append handle to a campaign journal (see the module docs for the
/// format and its guarantees).
pub struct Journal {
    file: File,
    path: PathBuf,
}

fn header_line(spec: &CampaignSpec) -> String {
    format!(
        "{{\"psbi_fleet_journal\":2,\"name\":\"{}\",\"fingerprint\":\"{}\",\"jobs\":{}}}",
        escape(&spec.name),
        spec.fingerprint(),
        spec.jobs().len()
    )
}

/// Parse result of an on-disk journal: the records of the valid prefix and
/// the byte length of that prefix.
struct Replayed {
    records: Vec<JobRecord>,
    valid_len: u64,
    total_len: u64,
}

fn replay_bytes(text: &str, spec: &CampaignSpec) -> Result<Replayed, FleetError> {
    let expected_header = header_line(spec);
    let total_len = text.len() as u64;
    let empty = |valid_len| {
        Ok(Replayed {
            records: Vec::new(),
            valid_len,
            total_len,
        })
    };
    if text.is_empty() {
        return empty(0);
    }
    let Some(header_end) = text.find('\n') else {
        // No complete first line.  A strict prefix of our own header is a
        // header write the kill tore — safe to rewrite.  Anything else is
        // some other file the caller pointed --journal at; refusing here
        // is what keeps open() from wiping it.
        if expected_header.as_bytes().starts_with(text.as_bytes()) {
            return empty(0);
        }
        return Err(FleetError::Journal(
            "file is not a journal for this campaign; refusing to overwrite it".into(),
        ));
    };
    let header = &text[..header_end];
    if header != expected_header {
        // A *complete* but different first line: another campaign's
        // journal (fingerprint mismatch) or a non-journal file.  Either
        // way, never silently truncate someone else's data.
        return Err(FleetError::Journal(format!(
            "file is not the journal of this campaign (expected header \
             with fingerprint {}, found `{header}`); refusing to overwrite it",
            spec.fingerprint()
        )));
    }
    let max_jobs = spec.jobs().len();
    let mut records = Vec::new();
    let mut valid_len = (header_end + 1) as u64;
    let mut offset = header_end + 1;
    let mut bad: Option<(usize, String)> = None;
    while let Some(nl) = text[offset..].find('\n') {
        let line = &text[offset..offset + nl];
        let line_end = offset + nl + 1;
        match JobRecord::from_json_line(line) {
            Ok(record) if record.job == records.len() && records.len() < max_jobs => {
                records.push(record);
                valid_len = line_end as u64;
                offset = line_end;
            }
            Ok(record) => {
                // A record that checksums and parses but sits at the wrong
                // position: either it claims an out-of-sequence job index,
                // or the grid is already full and it is a record the spec
                // has no job for.  A kill tears bytes — it cannot forge a
                // valid checksum over the wrong index — so this is
                // corruption (or a spec/journal mix-up), never a torn
                // tail.  Refuse outright; truncating would silently drop
                // what somebody committed.
                return Err(FleetError::Corrupt {
                    record: records.len(),
                    detail: if records.len() >= max_jobs {
                        format!("journal holds more records than the spec's {max_jobs}-job grid")
                    } else {
                        format!(
                            "record claims job {} where job {} was expected",
                            record.job,
                            records.len()
                        )
                    },
                });
            }
            Err(FleetError::Journal(m)) => {
                bad = Some((line_end, m));
                break;
            }
            Err(e) => {
                bad = Some((line_end, e.to_string()));
                break;
            }
        }
    }
    if let Some((after, detail)) = bad {
        // Torn tail or mid-file corruption?  A kill can only damage the
        // *end* of an append-only file; if any complete, checksummed,
        // parseable record follows the first bad line, the damage is in
        // the middle and truncating would silently drop committed
        // history.  Refuse and name the first bad record instead.
        let mut scan = after;
        while let Some(nl) = text[scan..].find('\n') {
            let line = &text[scan..scan + nl];
            scan += nl + 1;
            if JobRecord::from_json_line(line).is_ok() {
                return Err(FleetError::Corrupt {
                    record: records.len(),
                    detail,
                });
            }
        }
    }
    Ok(Replayed {
        records,
        valid_len,
        total_len,
    })
}

impl Journal {
    /// Opens (or creates) the journal for `spec` at `path`, repairing any
    /// torn tail left by a kill: the file is truncated to its longest
    /// valid prefix, whose records are returned for resume.
    ///
    /// # Errors
    ///
    /// IO failures, or [`FleetError::Journal`] when the file belongs to a
    /// different campaign.
    pub fn open(path: &Path, spec: &CampaignSpec) -> Result<(Self, Vec<JobRecord>), FleetError> {
        let existing = match std::fs::read(path) {
            Ok(bytes) => String::from_utf8(bytes)
                .map_err(|_| FleetError::Journal("journal is not valid UTF-8".into()))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e.into()),
        };
        let replayed = replay_bytes(&existing, spec)?;
        if replayed.valid_len < replayed.total_len {
            // Torn tail from a mid-write kill: cut back to the last
            // complete record so the resumed run appends exactly where an
            // uninterrupted run would have been.
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(replayed.valid_len)?;
        }
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        // Advisory exclusion: two runners appending to one journal would
        // interleave records and corrupt the prefix on the next replay.
        // The OS releases the lock when the handle drops.
        if file.try_lock().is_err() {
            return Err(FleetError::Journal(format!(
                "journal `{}` is locked by another psbi-fleet process",
                path.display()
            )));
        }
        if replayed.valid_len == 0 {
            file.write_all(format!("{}\n", header_line(spec)).as_bytes())?;
            file.flush()?;
        }
        Ok((
            Self {
                file,
                path: path.to_path_buf(),
            },
            replayed.records,
        ))
    }

    /// Replays a journal read-only (the `report` command): parses the
    /// valid prefix without repairing the file.
    ///
    /// # Errors
    ///
    /// As [`Journal::open`]; additionally when the file does not exist.
    pub fn replay(path: &Path, spec: &CampaignSpec) -> Result<Vec<JobRecord>, FleetError> {
        let bytes = std::fs::read(path)?;
        let text = String::from_utf8(bytes)
            .map_err(|_| FleetError::Journal("journal is not valid UTF-8".into()))?;
        Ok(replay_bytes(&text, spec)?.records)
    }

    /// Appends one completed job record and flushes it to the OS.  The
    /// whole line goes down in a single `write` call so an O_APPEND
    /// journal never interleaves fragments of two records.
    ///
    /// # Errors
    ///
    /// IO failures.
    pub fn append(&mut self, record: &JobRecord) -> Result<(), FleetError> {
        let _span =
            psbi_obs::Span::enter_with("fleet.journal.write", &[("job", record.job as u64)]);
        psbi_obs::metrics::counter_add("fleet.journal.writes", 1);
        let line = format!("{}\n", record.to_json_line());
        if psbi_fault::failpoint!("journal.write.torn", "record" = record.job) {
            // Simulate a kill mid-write: half the line reaches the file,
            // then the process "dies" (here: an IO error surfaces).  Specs
            // should pin this with `times=1` so the resumed run's rewrite
            // of the same record does not tear again.
            self.file.write_all(&line.as_bytes()[..line.len() / 2])?;
            self.file.flush()?;
            return Err(FleetError::Io(std::io::Error::other(
                "injected fault: journal.write.torn",
            )));
        }
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        Ok(())
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    fn record(job: usize) -> JobRecord {
        JobRecord {
            job,
            circuit_id: "tiny_demo:1".into(),
            circuit: "tiny_demo".into(),
            n_ffs: 24,
            n_gates: 220,
            sigma_factor: 1.0,
            mu_t: 1234.5678901,
            sigma_t: 56.25,
            period: 1290.8178901,
            step: 8.06761181,
            nb: 3,
            ab: 4.5,
            yield_baseline: 51.25,
            yield_with_buffers: 93.75,
            improvement: 42.5,
            rescued: 170,
            broken: 0,
            buffers_before_grouping: 5,
            delay_elements: 40,
            config_bits: 12,
            a1_infeasible: 1,
            b2_infeasible: 0,
            refit_ran: false,
            quarantined: false,
            fault: String::new(),
        }
    }

    #[test]
    fn record_line_round_trips_bit_exactly() {
        let r = record(7);
        let line = r.to_json_line();
        let back = JobRecord::from_json_line(&line).unwrap();
        assert_eq!(r, back);
        // Bit-exact floats survive the text round trip.
        assert_eq!(back.mu_t.to_bits(), r.mu_t.to_bits());
        assert_eq!(back.to_json_line(), line);
        // The whole line is also plain JSON (crc is just another member).
        assert!(Json::parse(&line).is_ok());
    }

    #[test]
    fn checksum_rejects_any_single_byte_flip() {
        let line = record(0).to_json_line();
        assert!(JobRecord::from_json_line(&line).is_ok());
        // Flip a digit inside a numeric field: still valid JSON, but the
        // checksum catches it.
        let tampered = line.replacen("\"rescued\":170", "\"rescued\":171", 1);
        assert_ne!(tampered, line);
        assert!(matches!(
            JobRecord::from_json_line(&tampered),
            Err(FleetError::Journal(m)) if m.contains("checksum mismatch")
        ));
        // A line with no crc member at all is rejected too.
        assert!(matches!(
            JobRecord::from_json_line("{\"job\":0}"),
            Err(FleetError::Journal(m)) if m.contains("no checksum")
        ));
    }

    #[test]
    fn quarantined_record_round_trips_and_is_flagged() {
        let spec = CampaignSpec::example();
        let job = &spec.jobs()[1];
        let r = JobRecord::quarantined(job, "injected fault: fleet.job.panic".into());
        assert!(r.quarantined);
        assert_eq!(r.job, job.index);
        assert_eq!(r.nb, 0);
        let back = JobRecord::from_json_line(&r.to_json_line()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.fault, "injected fault: fleet.job.panic");
    }

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "psbi_fleet_journal_test_{tag}_{}",
            std::process::id()
        ))
    }

    #[test]
    fn journal_repairs_torn_tail_and_resumes() {
        let spec = CampaignSpec::example();
        let path = tmp_path("torn");
        let _ = std::fs::remove_file(&path);

        // Write two records, then simulate a kill mid-write of the third.
        let (mut journal, existing) = Journal::open(&path, &spec).unwrap();
        assert!(existing.is_empty());
        journal.append(&record(0)).unwrap();
        journal.append(&record(1)).unwrap();
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        let full = bytes.clone();
        bytes.extend_from_slice(b"{\"job\":2,\"circuit_id\":\"tiny");
        std::fs::write(&path, &bytes).unwrap();

        let (journal, records) = Journal::open(&path, &spec).unwrap();
        drop(journal);
        assert_eq!(records.len(), 2);
        assert_eq!(records[1], record(1));
        // The torn line was cut: bytes equal the pre-kill journal exactly.
        assert_eq!(std::fs::read(&path).unwrap(), full);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_rejects_foreign_campaign() {
        let spec = CampaignSpec::example();
        let mut other = spec.clone();
        other.samples += 1;
        let path = tmp_path("foreign");
        let _ = std::fs::remove_file(&path);
        let (journal, _) = Journal::open(&path, &spec).unwrap();
        drop(journal);
        assert!(matches!(
            Journal::open(&path, &other),
            Err(FleetError::Journal(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn refuses_to_overwrite_non_journal_files() {
        let spec = CampaignSpec::example();
        let path = tmp_path("notajournal");
        // Complete non-journal first line.
        std::fs::write(&path, "precious data\nmore data\n").unwrap();
        assert!(matches!(
            Journal::open(&path, &spec),
            Err(FleetError::Journal(_))
        ));
        assert_eq!(std::fs::read(&path).unwrap(), b"precious data\nmore data\n");
        // Unterminated non-journal content.
        std::fs::write(&path, "no newline here").unwrap();
        assert!(Journal::open(&path, &spec).is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"no newline here");
        // A torn prefix of our own header IS repaired.
        let header = format!("{{\"psbi_fleet_journal\":2,\"name\":\"{}\"", spec.name);
        std::fs::write(&path, &header).unwrap();
        let (journal, records) = Journal::open(&path, &spec).unwrap();
        drop(journal);
        assert!(records.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_open_is_rejected_while_locked() {
        let spec = CampaignSpec::example();
        let path = tmp_path("locked");
        let _ = std::fs::remove_file(&path);
        let (journal, _) = Journal::open(&path, &spec).unwrap();
        assert!(matches!(
            Journal::open(&path, &spec),
            Err(FleetError::Journal(_))
        ));
        drop(journal);
        assert!(Journal::open(&path, &spec).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn multi_record_torn_tail_is_repaired() {
        let spec = CampaignSpec::example();
        let path = tmp_path("multitorn");
        let _ = std::fs::remove_file(&path);
        let (mut journal, _) = Journal::open(&path, &spec).unwrap();
        journal.append(&record(0)).unwrap();
        journal.append(&record(1)).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        journal.append(&record(2)).unwrap();
        journal.append(&record(3)).unwrap();
        drop(journal);

        // Damage BOTH tail records: chop record 3 mid-line and break
        // record 2's checksum — nothing valid follows either, so this is
        // still a (multi-line) torn tail and must repair back to record 1.
        let text = String::from_utf8(std::fs::read(&path).unwrap()).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        assert_eq!(lines.len(), 5); // header + 4 records
        lines[3] = lines[3].replacen("\"crc\":\"", "\"crc\":\"0", 1); // record 2
        let tail_len = lines[4].len() / 3;
        lines[4].truncate(tail_len); // record 3, torn mid-line
        std::fs::write(&path, format!("{}\n{}", lines[..4].join("\n"), lines[4])).unwrap();

        let (journal, records) = Journal::open(&path, &spec).unwrap();
        drop(journal);
        assert_eq!(records.len(), 2);
        assert_eq!(std::fs::read(&path).unwrap(), pristine);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interior_corruption_is_refused_and_file_untouched() {
        let spec = CampaignSpec::example();
        let path = tmp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        let (mut journal, _) = Journal::open(&path, &spec).unwrap();
        journal.append(&record(0)).unwrap();
        journal.append(&record(1)).unwrap();
        journal.append(&record(2)).unwrap();
        drop(journal);

        // Flip a byte inside record 1: records 0 and 2 still checksum,
        // so this is mid-file damage, not a torn tail.
        let text = String::from_utf8(std::fs::read(&path).unwrap()).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        assert_eq!(lines.len(), 4); // header + 3 records
        lines[2] = lines[2].replacen("\"yield_baseline\":51.25", "\"yield_baseline\":51.26", 1);
        let damaged = format!("{}\n", lines.join("\n"));
        assert_ne!(damaged, text);
        std::fs::write(&path, &damaged).unwrap();

        match Journal::open(&path, &spec) {
            Err(FleetError::Corrupt { record, .. }) => assert_eq!(record, 1),
            Err(other) => panic!("expected Corrupt, got {other}"),
            Ok(_) => panic!("expected Corrupt, got Ok"),
        }
        // Refusal must not modify the file.
        assert_eq!(std::fs::read(&path).unwrap(), damaged.as_bytes());
        // Read-only replay refuses identically.
        assert!(matches!(
            Journal::replay(&path, &spec),
            Err(FleetError::Corrupt { record: 1, .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn out_of_sequence_record_is_corruption_not_a_torn_tail() {
        let spec = CampaignSpec::example();
        let path = tmp_path("seq");
        let _ = std::fs::remove_file(&path);
        let (mut journal, _) = Journal::open(&path, &spec).unwrap();
        journal.append(&record(0)).unwrap();
        // A record claiming the wrong index (e.g. manual tampering, or two
        // journals spliced together).  A kill tears bytes; it cannot forge
        // a valid checksum over the wrong index — so replay must refuse,
        // not silently truncate committed-looking history.
        journal.append(&record(5)).unwrap();
        drop(journal);
        let damaged = std::fs::read(&path).unwrap();
        match Journal::open(&path, &spec) {
            Err(FleetError::Corrupt { record, detail }) => {
                assert_eq!(record, 1);
                assert!(detail.contains("claims job 5"), "{detail}");
            }
            Ok(_) => panic!("expected Corrupt, journal opened"),
            Err(e) => panic!("expected Corrupt, got {e}"),
        }
        // Refusal must not modify the file.
        assert_eq!(std::fs::read(&path).unwrap(), damaged);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_longer_than_the_job_grid_is_corrupt() {
        // Resume against a spec whose grid is *shorter* than the journal
        // (same fingerprint is impossible, but a record count beyond the
        // grid can be faked by appending sequenced records): the extra
        // records must be refused, not truncated into a "resumed" run.
        let spec = CampaignSpec::example();
        let total = spec.jobs().len();
        let path = tmp_path("overlong");
        let _ = std::fs::remove_file(&path);
        let (mut journal, _) = Journal::open(&path, &spec).unwrap();
        for job in 0..=total {
            journal.append(&record(job)).unwrap();
        }
        drop(journal);
        let damaged = std::fs::read(&path).unwrap();
        match Journal::open(&path, &spec) {
            Err(FleetError::Corrupt { record, detail }) => {
                assert_eq!(record, total);
                assert!(detail.contains("more records"), "{detail}");
            }
            Ok(_) => panic!("expected Corrupt, journal opened"),
            Err(e) => panic!("expected Corrupt, got {e}"),
        }
        assert_eq!(std::fs::read(&path).unwrap(), damaged);
        assert!(matches!(
            Journal::replay(&path, &spec),
            Err(FleetError::Corrupt { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }
}
