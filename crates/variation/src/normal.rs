//! Scalar normal-distribution math and standard-normal sampling.
//!
//! Everything here is self-contained (no external math crates): `erf` uses
//! the rational Chebyshev approximation from Numerical Recipes (fractional
//! error below `1.2e-7`), and [`probit`] uses Acklam's algorithm refined with
//! one Halley step, giving ~1e-9 absolute accuracy over `(0, 1)`.

use rand::Rng;

/// Probability density function of the standard normal distribution.
///
/// ```
/// let p = psbi_variation::normal::pdf(0.0);
/// assert!((p - 0.3989422804014327).abs() < 1e-12);
/// ```
#[inline]
pub fn pdf(x: f64) -> f64 {
    #[allow(clippy::excessive_precision)]
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Complementary error function, fractional error below `1.2e-7`.
///
/// ```
/// assert!((psbi_variation::normal::erfc(0.0) - 1.0).abs() < 1e-7);
/// ```
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x) = 1 - erfc(x)`.
///
/// ```
/// assert!(psbi_variation::normal::erf(1.0) > 0.8427 - 1e-4);
/// ```
#[inline]
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Cumulative distribution function Φ of the standard normal distribution.
///
/// ```
/// assert!((psbi_variation::normal::cdf(0.0) - 0.5).abs() < 1e-7);
/// ```
#[inline]
pub fn cdf(x: f64) -> f64 {
    0.5 * erfc(-x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Uses Acklam's rational approximation refined by one Halley iteration.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
///
/// ```
/// let x = psbi_variation::normal::probit(0.975);
/// assert!((x - 1.959964).abs() < 1e-4);
/// ```
pub fn probit(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit requires p in (0,1), got {p}");
    let x = probit_fast(p);
    // One Halley refinement step.
    let e = cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

/// Acklam's probit coefficients, exported so wide (SIMD) re-implementations
/// of the central branch can evaluate the *identical* expression tree as
/// [`probit_fast`] — the bit-parity contract between the scalar and
/// vectorised sampling kernels depends on both sides reading the same
/// constants.
pub mod acklam {
    /// Central-branch numerator coefficients.
    #[allow(clippy::excessive_precision)]
    pub const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    /// Central-branch denominator coefficients.
    pub const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    /// Tail-branch numerator coefficients.
    pub const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    /// Tail-branch denominator coefficients.
    pub const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    /// Branch threshold: `p < P_LOW` / `p > 1 − P_LOW` take the tails.
    pub const P_LOW: f64 = 0.024_25;
}

/// The central branch of [`probit_fast`] — Acklam's rational approximation
/// for `p ∈ [P_LOW, 1 − P_LOW]`, with no `ln`/`sqrt`.
///
/// Exposed separately because the SIMD sampling kernels vectorise exactly
/// this branch (it is branch-free and uses only exactly-rounded IEEE ops,
/// so a lane-wise evaluation is bit-identical to this scalar one) and
/// patch the rare tail lanes through [`probit_fast`].  Outside the central
/// interval the returned value is a smooth but *wrong* extrapolation.
#[inline]
pub fn probit_central(p: f64) -> f64 {
    use acklam::{A, B};
    let q = p - 0.5;
    let r = q * q;
    (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
        / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
}

/// Inverse of the standard normal CDF without the Halley refinement —
/// Acklam's raw rational approximation (relative error ≈ `1.15e-9`).
///
/// That accuracy is far beyond what Monte-Carlo estimation can resolve,
/// and skipping the refinement avoids an `exp` and an `erfc` per draw, so
/// this is the batch sampling kernels' inverse-transform workhorse: one
/// uniform in, one standard normal out, no rejection loop.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)` (debug assertions only).
#[inline]
pub fn probit_fast(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0, "probit_fast requires p in (0,1)");
    use acklam::{C, D, P_LOW};
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        probit_central(p)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Draws one standard-normal variate using the Marsaglia polar method.
///
/// Stateless: a fresh pair of uniforms is consumed per call (the spare value
/// is discarded), which keeps per-sample streams reproducible.
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = psbi_variation::normal::draw_standard_normal(&mut rng);
/// assert!(x.is_finite());
/// ```
pub fn draw_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Convenience: draws `N(mean, sigma^2)`.
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = psbi_variation::normal::draw_normal(&mut rng, 5.0, 0.0);
/// assert_eq!(x, 5.0);
/// ```
#[inline]
pub fn draw_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    mean + sigma * draw_standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erf_known_values() {
        // Reference values from tables.
        assert!((erf(0.0)).abs() < 2e-7);
        assert!((erf(0.5) - 0.520_499_877_8).abs() < 2e-7);
        assert!((erf(1.0) - 0.842_700_792_9).abs() < 2e-7);
        assert!((erf(2.0) - 0.995_322_265_0).abs() < 2e-7);
        assert!((erf(-1.0) + 0.842_700_792_9).abs() < 2e-7);
    }

    #[test]
    fn cdf_symmetry_and_known_points() {
        assert!((cdf(0.0) - 0.5).abs() < 2e-7);
        assert!((cdf(1.0) - 0.841_344_746_1).abs() < 2e-7);
        assert!((cdf(2.0) - 0.977_249_868_1).abs() < 2e-7);
        for &x in &[0.3, 1.2, 2.5, 4.0] {
            assert!((cdf(x) + cdf(-x) - 1.0).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn probit_is_inverse_of_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.5, 0.8413, 0.9772, 0.999] {
            let x = probit(p);
            assert!((cdf(x) - p).abs() < 1e-6, "p={p} x={x}");
        }
    }

    #[test]
    #[should_panic(expected = "probit requires")]
    fn probit_rejects_zero() {
        probit(0.0);
    }

    #[test]
    fn sampler_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = draw_standard_normal(&mut rng);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn sampler_tail_fraction() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let above = (0..n)
            .filter(|_| draw_standard_normal(&mut rng) > 1.0)
            .count() as f64
            / n as f64;
        // P(X > 1) = 0.1587
        assert!((above - 0.1587).abs() < 0.01, "above={above}");
    }
}
