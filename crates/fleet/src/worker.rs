//! The dispatch clients: `psbi-fleet worker` and `psbi-fleet submit`.
//!
//! # Worker
//!
//! [`run_worker`] connects to a dispatcher, requests leases and executes
//! them through the same [`crate::runner`] batch core the
//! single-process runner and the dispatcher's inline fallback use — the
//! determinism story needs exactly one implementation of "run job `i`".
//! The robustness machinery wraps around it:
//!
//! * **Capped exponential backoff** on connect/reconnect (reset after
//!   every successful session), so a dispatcher restart is survived
//!   without a thundering herd.
//! * **Heartbeats** per lease on a dedicated thread sharing the
//!   line-atomic writer, so a long solve does not look like a dead
//!   worker.  The `dispatch.worker.stall` failpoint suppresses beats —
//!   the deterministic test for the expiry/re-dispatch path.
//! * **An unacknowledged-result cache**: every computed record is kept
//!   until the dispatcher acknowledges it.  After a dropped connection
//!   the worker resumes from its last acknowledged record — re-leased
//!   jobs it already computed are *re-sent*, not re-computed (and if
//!   someone else committed them first, the dispatcher discards the
//!   duplicate; the bytes are identical either way).  The cache is
//!   keyed by **spec fingerprint**, never by dispatcher-assigned
//!   campaign id: ids restart when a dispatcher restarts, so an id can
//!   name a different campaign across sessions — the fingerprint
//!   cannot, and a cached record is valid for *any* campaign with the
//!   same fingerprint because it is a pure function of (spec, job).
//! * **Read/write timeouts** on the dispatcher socket, renewed from
//!   each lease's deadline: a stalled-but-alive dispatcher (or a
//!   half-open connection) surfaces as a lost connection and the
//!   reconnect path takes over, instead of wedging the worker forever.
//! * **`worker.result.torn`** tears the result line mid-write and drops
//!   the connection, exercising the dispatcher's framing rejection.
//!
//! # Submitter
//!
//! [`submit_campaign`] sends a spec, relays progress lines and maps the
//! dispatcher's terminal `error` message back onto the same
//! [`FleetError`] class (and exit code) a local `psbi-fleet run` would
//! have produced.

use crate::error::FleetError;
use crate::journal::JobRecord;
use crate::proto::{read_msg, write_msg, Msg};
use crate::runner::execute_batch;
use crate::spec::{CampaignSpec, JobSpec};
use psbi_core::flow::WorkspacePool;
use std::collections::HashMap;
use std::io::{BufReader, Write as _};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Knobs for one `psbi-fleet worker` process.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Dispatcher address (`PSBI_DISPATCH_ADDR` is the CLI default).
    pub addr: String,
    /// Display name sent in `hello` (diagnostics only).
    pub name: String,
    /// First reconnect delay.
    pub backoff_min_ms: u64,
    /// Backoff cap (doubles per failed attempt up to this).
    pub backoff_max_ms: u64,
    /// Exit cleanly after this long without reaching a dispatcher
    /// (`None` = retry forever; the dispatcher's `shutdown` message is
    /// the orderly exit path).
    pub max_idle_ms: Option<u64>,
    /// Echo per-lease activity to stderr.
    pub progress: bool,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        Self {
            addr: std::env::var("PSBI_DISPATCH_ADDR")
                .unwrap_or_else(|_| crate::dispatch::DEFAULT_ADDR.into()),
            name: format!("worker-{}", std::process::id()),
            backoff_min_ms: 100,
            backoff_max_ms: 5_000,
            max_idle_ms: None,
            progress: false,
        }
    }
}

/// How one connected session ended.
enum SessionEnd {
    /// Dispatcher said `shutdown`: exit the worker.
    Shutdown,
    /// Connection lost (EOF, IO error, protocol violation, injected
    /// tear): reconnect with backoff.
    ConnLost,
}

/// How one lease ended, from the session loop's point of view.
enum LeaseEnd {
    /// Lease fully delivered or expired under us: request more work on
    /// the same connection.
    Continue,
    /// Dispatcher said `shutdown`.
    Shutdown,
    /// Connection lost mid-lease.
    ConnLost,
}

/// Parsed specs retained at once (each with its unacked records).  A
/// long-running worker serves many campaigns; beyond this bound the
/// least-recently-leased spec is evicted together with its unacked
/// records — correctness never depends on the cache (an evicted record
/// is simply recomputed if its job is ever re-leased).
const MAX_CACHED_SPECS: usize = 8;

/// One parsed-spec cache entry: the spec, its expanded grid, the
/// fingerprint of its canonical text, and an LRU stamp.
struct SpecEntry {
    spec: CampaignSpec,
    grid: Vec<JobSpec>,
    fingerprint: String,
    stamp: u64,
}

/// Per-process worker state that must survive reconnects: the shared
/// workspace pool, parsed specs (keyed by their canonical text) and the
/// unacknowledged-result cache.
struct WorkerMemory {
    pool: Arc<WorkspacePool>,
    specs: HashMap<String, SpecEntry>,
    /// Computed but never acknowledged: `(spec fingerprint, job)` → the
    /// exact record line (+ verifier failure report) to re-send.  Keyed
    /// by fingerprint, not campaign id — see the module docs.
    unacked: HashMap<(String, usize), (String, String)>,
    /// Monotone LRU clock for [`SpecEntry::stamp`].
    clock: u64,
}

/// Looks up (or parses and caches) a lease's spec, returning the spec,
/// its grid and its fingerprint.  Keeps the cache LRU-bounded to
/// [`MAX_CACHED_SPECS`]: eviction drops the spec entry *and* every
/// unacked record computed under its fingerprint, so a long-running
/// worker never accumulates dead campaigns.
fn remember_spec(
    memory: &mut WorkerMemory,
    spec_text: &str,
) -> Result<(CampaignSpec, Vec<JobSpec>, String), FleetError> {
    memory.clock += 1;
    let clock = memory.clock;
    if let Some(entry) = memory.specs.get_mut(spec_text) {
        entry.stamp = clock;
        return Ok((
            entry.spec.clone(),
            entry.grid.clone(),
            entry.fingerprint.clone(),
        ));
    }
    let spec = CampaignSpec::from_json(spec_text)?;
    let grid = spec.jobs();
    let fingerprint = spec.fingerprint();
    if memory.specs.len() >= MAX_CACHED_SPECS {
        if let Some(oldest) = memory
            .specs
            .iter()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(text, _)| text.clone())
        {
            if let Some(evicted) = memory.specs.remove(&oldest) {
                memory
                    .unacked
                    .retain(|(fp, _), _| *fp != evicted.fingerprint);
            }
        }
    }
    memory.specs.insert(
        spec_text.to_string(),
        SpecEntry {
            spec: spec.clone(),
            grid: grid.clone(),
            fingerprint: fingerprint.clone(),
            stamp: clock,
        },
    );
    Ok((spec, grid, fingerprint))
}

/// Runs a worker until the dispatcher says `shutdown` (or `max_idle_ms`
/// passes without any dispatcher) — the `psbi-fleet worker` entry point.
///
/// # Errors
///
/// Only setup-class failures; connection loss and dispatcher restarts
/// are retried, not returned.
pub fn run_worker(opts: &WorkerOptions) -> Result<(), FleetError> {
    let mut memory = WorkerMemory {
        pool: Arc::new(WorkspacePool::new()),
        specs: HashMap::new(),
        unacked: HashMap::new(),
        clock: 0,
    };
    let mut backoff = Duration::from_millis(opts.backoff_min_ms.max(1));
    let mut last_contact = Instant::now();
    loop {
        if let Ok(stream) = TcpStream::connect(&opts.addr) {
            backoff = Duration::from_millis(opts.backoff_min_ms.max(1));
            match session(opts, stream, &mut memory) {
                Ok(SessionEnd::Shutdown) => {
                    if opts.progress {
                        eprintln!("psbi-fleet: worker `{}`: dispatcher shut down", opts.name);
                    }
                    return Ok(());
                }
                Ok(SessionEnd::ConnLost) => {}
                Err(e) => {
                    if opts.progress {
                        eprintln!("psbi-fleet: worker `{}`: session error: {e}", opts.name);
                    }
                }
            }
            last_contact = Instant::now();
        }
        if let Some(max) = opts.max_idle_ms {
            if last_contact.elapsed() >= Duration::from_millis(max) {
                if opts.progress {
                    eprintln!(
                        "psbi-fleet: worker `{}`: no dispatcher for {max} ms, exiting",
                        opts.name
                    );
                }
                return Ok(());
            }
        }
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(Duration::from_millis(opts.backoff_max_ms.max(1)));
    }
}

fn send(writer: &Arc<Mutex<TcpStream>>, msg: &Msg) -> Result<(), FleetError> {
    let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
    write_msg(&mut *w, msg).map_err(FleetError::Io)
}

/// Applies the session IO timeouts — `lease_ms.max(500) * 4`, mirroring
/// the dispatcher's own worker-read timeout.  A timed-out read or write
/// surfaces as an IO error, which every caller already treats as a lost
/// connection, so a stalled (not dead) dispatcher hands control to the
/// reconnect/backoff path instead of wedging the worker forever.
fn set_io_timeouts(stream: &TcpStream, lease_ms: u64) {
    let timeout = Duration::from_millis(lease_ms.max(500).saturating_mul(4));
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
}

/// One connected session: hello, then request/execute leases until the
/// connection ends.
fn session(
    opts: &WorkerOptions,
    stream: TcpStream,
    memory: &mut WorkerMemory,
) -> Result<SessionEnd, FleetError> {
    // Until a lease names its actual deadline, time IO out against the
    // configured (or default) lease window.
    set_io_timeouts(
        &stream,
        crate::dispatch::env_u64("PSBI_DISPATCH_LEASE_MS", 10_000),
    );
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer = Arc::new(Mutex::new(stream));
    send(
        &writer,
        &Msg::Hello {
            worker: opts.name.clone(),
        },
    )?;
    loop {
        send(&writer, &Msg::Request)?;
        let msg = match read_msg(&mut reader) {
            Ok(Some(msg)) => msg,
            Ok(None) | Err(_) => return Ok(SessionEnd::ConnLost),
        };
        match msg {
            Msg::Wait { ms } => std::thread::sleep(Duration::from_millis(ms.min(2_000))),
            Msg::Shutdown => return Ok(SessionEnd::Shutdown),
            Msg::Lease {
                lease,
                campaign,
                spec,
                jobs,
                deadline_ms,
                heartbeat_ms,
                retries,
                verify,
            } => {
                if opts.progress {
                    eprintln!(
                        "psbi-fleet: worker `{}`: lease {lease} (campaign {campaign}, {} job(s))",
                        opts.name,
                        jobs.len()
                    );
                }
                set_io_timeouts(reader.get_ref(), deadline_ms);
                let ctx = LeaseCtx {
                    lease,
                    campaign,
                    spec_text: spec,
                    jobs,
                    heartbeat_ms,
                    retries,
                    verify,
                };
                match run_lease(&mut reader, &writer, memory, ctx)? {
                    LeaseEnd::Continue => {}
                    LeaseEnd::Shutdown => return Ok(SessionEnd::Shutdown),
                    LeaseEnd::ConnLost => return Ok(SessionEnd::ConnLost),
                }
            }
            // Stale replies for an earlier (abandoned) lease.
            Msg::Ack { .. } | Msg::Expired { .. } => {}
            other => {
                return Err(FleetError::Dispatch(format!(
                    "unexpected dispatcher message {}",
                    other.to_line()
                )))
            }
        }
    }
}

struct LeaseCtx {
    lease: u64,
    campaign: u64,
    spec_text: String,
    jobs: Vec<usize>,
    heartbeat_ms: u64,
    retries: usize,
    verify: bool,
}

/// What the ack-wait loop decided for one delivered result.
enum AckWait {
    /// Record acknowledged; keep going.
    Acked,
    /// This lease expired under us; abandon its remaining jobs (cache
    /// intact — a re-lease re-sends instead of re-computing).
    Abandon,
    /// Dispatcher is going away.
    Shutdown,
    /// Connection lost.
    ConnLost,
}

/// Executes one lease: re-sends cached unacked records first, then
/// computes the rest, heartbeating throughout.
fn run_lease(
    reader: &mut BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
    memory: &mut WorkerMemory,
    ctx: LeaseCtx,
) -> Result<LeaseEnd, FleetError> {
    let (spec, grid, fingerprint) = remember_spec(memory, &ctx.spec_text)?;
    for &j in &ctx.jobs {
        if j >= grid.len() {
            return Err(FleetError::Dispatch(format!(
                "lease names job {j} outside the {}-job grid",
                grid.len()
            )));
        }
    }

    // Heartbeat thread: renews the lease while jobs compute.  The
    // `dispatch.worker.stall` failpoint suppresses beats so the
    // dispatcher-side expiry path can be tested deterministically.
    let stop = Arc::new(AtomicBool::new(false));
    let beat = {
        let stop = Arc::clone(&stop);
        let writer = Arc::clone(writer);
        let lease = ctx.lease;
        let interval = Duration::from_millis(ctx.heartbeat_ms.clamp(10, 60_000));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                if psbi_fault::failpoint!("dispatch.worker.stall", "lease" = lease) {
                    continue; // the worker "stalls": lease goes unrenewed
                }
                if send(&writer, &Msg::Heartbeat { lease }).is_err() {
                    break;
                }
            }
        })
    };
    let end = run_lease_inner(reader, writer, memory, &ctx, &fingerprint, &spec, &grid);
    stop.store(true, Ordering::Relaxed);
    beat.join().ok();
    end
}

/// The lease body, split out so the heartbeat thread is always stopped
/// and joined by the caller regardless of how delivery ends.
fn run_lease_inner(
    reader: &mut BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
    memory: &mut WorkerMemory,
    ctx: &LeaseCtx,
    fingerprint: &str,
    spec: &CampaignSpec,
    grid: &[JobSpec],
) -> Result<LeaseEnd, FleetError> {
    // Phase 1: re-send computed-but-unacked records for this lease's
    // jobs (resume from the last acknowledged record, no recompute).
    // The cache is fingerprint-keyed, so a record cached before a
    // dispatcher restart is only ever re-sent for a campaign with the
    // *same* spec — for which its bytes are correct by construction.
    let mut fresh: Vec<JobSpec> = Vec::new();
    for &j in &ctx.jobs {
        let key = (fingerprint.to_string(), j);
        if let Some((line, verify_failed)) = memory.unacked.get(&key).cloned() {
            match send_and_await(
                reader,
                writer,
                memory,
                ctx,
                fingerprint,
                j,
                &line,
                &verify_failed,
            )? {
                AckWait::Acked => {}
                AckWait::Abandon => return Ok(LeaseEnd::Continue),
                AckWait::Shutdown => return Ok(LeaseEnd::Shutdown),
                AckWait::ConnLost => return Ok(LeaseEnd::ConnLost),
            }
        } else {
            fresh.push(grid[j].clone());
        }
    }

    // Phase 2: compute the rest, delivering each record as it commits
    // locally.  `execute_batch` stops early when `emit` returns false.
    let mut end = LeaseEnd::Continue;
    let pool = Arc::clone(&memory.pool);
    let mut delivery: Result<(), FleetError> = Ok(());
    let mut emit = |record: JobRecord, verify_failed: Option<String>| -> Result<bool, FleetError> {
        let job = record.job;
        let line = record.to_json_line();
        let verify_failed = verify_failed.unwrap_or_default();
        memory.unacked.insert(
            (fingerprint.to_string(), job),
            (line.clone(), verify_failed.clone()),
        );
        match send_and_await(
            reader,
            writer,
            memory,
            ctx,
            fingerprint,
            job,
            &line,
            &verify_failed,
        ) {
            Ok(AckWait::Acked) => Ok(true),
            Ok(AckWait::Abandon) => Ok(false),
            Ok(AckWait::Shutdown) => {
                end = LeaseEnd::Shutdown;
                Ok(false)
            }
            Ok(AckWait::ConnLost) => {
                end = LeaseEnd::ConnLost;
                Ok(false)
            }
            Err(e) => {
                delivery = Err(e);
                Ok(false)
            }
        }
    };
    execute_batch(spec, &fresh, &pool, ctx.retries, ctx.verify, &mut emit)?;
    delivery?;
    Ok(end)
}

/// Sends one result line and blocks until the dispatcher's verdict.
/// Under `worker.result.torn`, half the line is written and the
/// connection killed instead.
#[allow(clippy::too_many_arguments)]
fn send_and_await(
    reader: &mut BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
    memory: &mut WorkerMemory,
    ctx: &LeaseCtx,
    fingerprint: &str,
    job: usize,
    line: &str,
    verify_failed: &str,
) -> Result<AckWait, FleetError> {
    let msg = Msg::Result {
        lease: ctx.lease,
        campaign: ctx.campaign,
        fingerprint: fingerprint.to_string(),
        record: line.to_string(),
        verify_failed: verify_failed.to_string(),
    };
    if psbi_fault::failpoint!("worker.result.torn", "job" = job) {
        // Tear the message mid-line and die: the dispatcher must reject
        // the fragment and re-dispatch; our cached copy is re-sent
        // intact after reconnect.
        let wire = format!("{}\n", msg.to_line());
        let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = w.write_all(&wire.as_bytes()[..wire.len() / 2]);
        let _ = w.flush();
        let _ = w.shutdown(Shutdown::Both);
        return Ok(AckWait::ConnLost);
    }
    if send(writer, &msg).is_err() {
        return Ok(AckWait::ConnLost);
    }
    loop {
        match read_msg(reader) {
            Ok(Some(Msg::Ack { campaign, job: j })) if campaign == ctx.campaign && j == job => {
                memory.unacked.remove(&(fingerprint.to_string(), job));
                return Ok(AckWait::Acked);
            }
            Ok(Some(Msg::Ack { .. })) => {} // stale ack from an earlier lease
            Ok(Some(Msg::Expired { lease })) if lease == ctx.lease => return Ok(AckWait::Abandon),
            Ok(Some(Msg::Expired { .. })) => {} // stale expiry notice
            Ok(Some(Msg::Shutdown)) => return Ok(AckWait::Shutdown),
            Ok(Some(_)) | Ok(None) | Err(_) => return Ok(AckWait::ConnLost),
        }
    }
}

/// Knobs for one `psbi-fleet submit` invocation.
#[derive(Debug, Clone)]
pub struct SubmitOptions {
    /// Dispatcher address.
    pub addr: String,
    /// Per-job retry budget the dispatcher hands to workers.
    pub retries: usize,
    /// Ask workers to run the independent verifier per job.
    pub verify: bool,
    /// Relay dispatcher progress messages to stderr.
    pub progress: bool,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        Self {
            addr: std::env::var("PSBI_DISPATCH_ADDR")
                .unwrap_or_else(|_| crate::dispatch::DEFAULT_ADDR.into()),
            retries: 2,
            verify: false,
            progress: false,
        }
    }
}

/// What a completed submission reported.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// Dispatcher-assigned campaign id.
    pub campaign: u64,
    /// Grid size.
    pub total: usize,
    /// Records resumed from the journal (not re-executed).
    pub resumed: usize,
    /// Records in the completed journal.
    pub committed: usize,
    /// Quarantined records among them.
    pub quarantined: u64,
}

/// Reconstructs the [`FleetError`] class behind a dispatcher `error`
/// message, so `psbi-fleet submit` exits with the code a local run
/// would have.
fn error_from_code(code: u8, message: String) -> FleetError {
    match code {
        3 => FleetError::Spec(message),
        4 => FleetError::Io(std::io::Error::other(message)),
        5 => FleetError::Journal(message),
        6 => FleetError::Circuit(message),
        7 => FleetError::Corrupt {
            record: 0,
            detail: message,
        },
        8 => FleetError::Worker(message),
        9 => FleetError::Verify(message),
        _ => FleetError::Dispatch(message),
    }
}

/// Submits a campaign and blocks until the dispatcher reports the
/// journal complete — the `psbi-fleet submit` entry point.  `spec_text`
/// is the campaign spec JSON; `journal` is a dispatcher-side path.
///
/// # Errors
///
/// Connection failures ([`FleetError::Dispatch`]) and whatever terminal
/// error the dispatcher reports, mapped back onto its local class.
pub fn submit_campaign(
    spec_text: &str,
    journal: &str,
    opts: &SubmitOptions,
) -> Result<SubmitOutcome, FleetError> {
    // Parse locally first: a malformed spec should fail fast with the
    // usual spec error, not a round trip.
    CampaignSpec::from_json(spec_text)?.validate()?;
    let stream = TcpStream::connect(&opts.addr).map_err(|e| {
        FleetError::Dispatch(format!("cannot reach dispatcher at `{}`: {e}", opts.addr))
    })?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    write_msg(
        &mut writer,
        &Msg::Submit {
            spec: spec_text.to_string(),
            journal: journal.to_string(),
            retries: opts.retries,
            verify: opts.verify,
        },
    )?;
    let (campaign, total, resumed) = match read_msg(&mut reader)? {
        Some(Msg::Accepted {
            campaign,
            total,
            resumed,
        }) => (campaign, total, resumed),
        Some(Msg::Error { code, message }) => return Err(error_from_code(code, message)),
        Some(other) => {
            return Err(FleetError::Dispatch(format!(
                "expected accepted, got {}",
                other.to_line()
            )))
        }
        None => {
            return Err(FleetError::Dispatch(
                "dispatcher closed the connection before accepting".into(),
            ))
        }
    };
    if opts.progress {
        eprintln!("psbi-fleet: submit: campaign {campaign} accepted ({resumed}/{total} resumed)");
    }
    loop {
        match read_msg(&mut reader)? {
            Some(Msg::Progress {
                committed,
                total,
                quarantined,
                workers,
                ..
            }) => {
                if opts.progress {
                    eprintln!(
                        "psbi-fleet: submit: {committed}/{total} committed \
                         ({quarantined} quarantined), {workers} worker(s)"
                    );
                }
            }
            Some(Msg::Done {
                committed,
                quarantined,
                ..
            }) => {
                return Ok(SubmitOutcome {
                    campaign,
                    total,
                    resumed,
                    committed,
                    quarantined,
                })
            }
            Some(Msg::Error { code, message }) => return Err(error_from_code(code, message)),
            Some(other) => {
                return Err(FleetError::Dispatch(format!(
                    "unexpected dispatcher message {}",
                    other.to_line()
                )))
            }
            None => {
                return Err(FleetError::Dispatch(
                    "dispatcher connection lost mid-campaign (the journal keeps \
                     its valid prefix; resubmit to resume)"
                        .into(),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_memory() -> WorkerMemory {
        WorkerMemory {
            pool: Arc::new(WorkspacePool::new()),
            specs: HashMap::new(),
            unacked: HashMap::new(),
            clock: 0,
        }
    }

    fn named_spec_text(name: &str) -> String {
        let mut spec = CampaignSpec::example();
        spec.name = name.into();
        spec.to_json()
    }

    #[test]
    fn spec_cache_is_lru_bounded_and_eviction_purges_unacked() {
        let mut memory = fresh_memory();
        let first = named_spec_text("lru_first");
        let (_, _, first_fp) = remember_spec(&mut memory, &first).unwrap();
        memory
            .unacked
            .insert((first_fp.clone(), 0), ("line".into(), String::new()));
        for i in 1..MAX_CACHED_SPECS {
            remember_spec(&mut memory, &named_spec_text(&format!("lru_{i}"))).unwrap();
        }
        assert_eq!(memory.specs.len(), MAX_CACHED_SPECS);

        // A re-lease bumps the first spec's stamp, so the next insert
        // evicts `lru_1` (now the oldest), not the first spec.
        remember_spec(&mut memory, &first).unwrap();
        remember_spec(&mut memory, &named_spec_text("lru_overflow")).unwrap();
        assert_eq!(memory.specs.len(), MAX_CACHED_SPECS);
        assert!(memory.specs.contains_key(&first));
        assert!(!memory.specs.contains_key(&named_spec_text("lru_1")));
        assert!(memory.unacked.contains_key(&(first_fp.clone(), 0)));

        // Push the first spec out: its unacked records go with it.
        for i in 0..MAX_CACHED_SPECS {
            remember_spec(&mut memory, &named_spec_text(&format!("flood_{i}"))).unwrap();
        }
        assert!(!memory.specs.contains_key(&first));
        assert!(memory.unacked.is_empty());
    }

    #[test]
    fn error_codes_round_trip_through_the_wire_mapping() {
        let cases: Vec<FleetError> = vec![
            FleetError::Spec("s".into()),
            FleetError::Io(std::io::Error::other("i")),
            FleetError::Journal("j".into()),
            FleetError::Circuit("c".into()),
            FleetError::Corrupt {
                record: 0,
                detail: "d".into(),
            },
            FleetError::Worker("w".into()),
            FleetError::Verify("v".into()),
            FleetError::Dispatch("n".into()),
        ];
        for e in cases {
            let code = e.code();
            assert_eq!(error_from_code(code, String::new()).code(), code);
        }
    }
}
