//! Sweep the grouping thresholds (paper §III-C): how the correlation
//! threshold `r_t` and the distance threshold `d_t` trade buffer count
//! against window size and yield.
//!
//! ```text
//! cargo run --release --example grouping_analysis
//! ```

use psbi::core::flow::{BufferInsertionFlow, FlowConfig, TargetPeriod};
use psbi::netlist::bench_suite;

fn main() {
    let circuit = bench_suite::small_demo(11);
    println!(
        "circuit {}: {} FFs / {} gates; sweeping grouping thresholds\n",
        circuit.name,
        circuit.num_ffs(),
        circuit.num_gates()
    );
    println!(
        "{:>5} {:>5} | {:>10} {:>4} {:>6} {:>7} {:>7}",
        "r_t", "d_t", "candidates", "Nb", "Ab", "Y(%)", "Yi(%)"
    );
    for (rt, dt) in [
        (0.95, 5.0),
        (0.8, 10.0), // the paper's setting
        (0.6, 20.0),
        (0.4, 40.0),
    ] {
        let mut cfg = FlowConfig {
            samples: 600,
            yield_samples: 2_000,
            target: TargetPeriod::SigmaFactor(0.0),
            ..FlowConfig::default()
        };
        cfg.grouping.correlation_threshold = rt;
        cfg.grouping.distance_factor = dt;
        let r = BufferInsertionFlow::builder(&circuit, cfg)
            .build()
            .expect("valid")
            .run();
        println!(
            "{rt:>5.2} {dt:>5.1} | {:>10} {:>4} {:>6.2} {:>7.2} {:>7.2}",
            r.buffers_before_grouping, r.nb, r.ab, r.yield_with_buffers, r.improvement
        );
    }
    println!();
    println!("looser thresholds merge more buffers (smaller Nb) but widen the shared");
    println!("windows and can cost yield when members' tunings diverge.");
}
