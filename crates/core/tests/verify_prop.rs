//! Property test: the independent insertion verifier passes on the full
//! flow over *random* generated netlists — not just the hand-picked demo
//! circuits the unit tests use.
//!
//! Each case runs the complete pipeline (calibration, A1/A3, prune,
//! refit, grouping, yield evaluation) with every cache layer enabled and
//! `verify` on, then requires the verifier's from-scratch re-check of
//! every claim to succeed.  A failure here means either a real flow bug
//! or a verifier false positive — both are release blockers.

use proptest::prelude::*;
use psbi_core::flow::{BufferInsertionFlow, FlowConfig};
use psbi_netlist::generator::GeneratorProfile;

proptest! {
    // The flow is expensive; a handful of random circuits is plenty —
    // variety comes from the generator's topology/seed space.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn verifier_passes_on_random_netlists(
        n_ffs in 8usize..28,
        ratio in 3u32..10,
        seed in 0u64..10_000,
    ) {
        let circuit = GeneratorProfile::sized("prop", n_ffs, n_ffs * ratio as usize)
            .generate(seed);
        let cfg = FlowConfig {
            samples: 80,
            yield_samples: 160,
            calibration_samples: 160,
            seed: seed ^ 0x9e37_79b9,
            verify: true,
            ..FlowConfig::default()
        };
        let result = BufferInsertionFlow::builder(&circuit, cfg).build()
            .expect("generated circuits are valid flow inputs")
            .run();
        let report = result.diagnostics.verify.as_ref().expect("verify report");
        prop_assert!(
            report.passed,
            "verifier flagged a random netlist (ffs={}, gates={}, seed={}): {}",
            n_ffs, n_ffs * ratio as usize, seed, report
        );
        prop_assert!(report.checks > 0);
        prop_assert_eq!(report.mismatches, 0);
    }
}
