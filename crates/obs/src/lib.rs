#![warn(missing_docs)]
//! Zero-dependency observability for the PSBI workspace.
//!
//! Two subsystems, both disarmed by default and both costing a single
//! relaxed atomic load per site when disarmed (the `psbi_fault` fast-path
//! pattern):
//!
//! * [`trace`] — span-based tracing.  RAII [`Span`] guards bracket named
//!   regions of work; armed via `PSBI_TRACE=<path>` (or programmatically,
//!   e.g. `psbi-fleet run --trace`), the buffered events flush as a
//!   Chrome trace-event JSON array loadable in Perfetto.
//! * [`metrics`] — a process-wide registry of named counters, gauges and
//!   log-bucketed histograms.  Armed via `PSBI_METRICS=<path>` (or
//!   programmatically); snapshots export as JSON and Prometheus text.
//!
//! Span and metric names follow a `layer.noun[.verb]` scheme
//! (`sample.batch.fill`, `flow.pass.a1`, `solve.stage.search`,
//! `fleet.job`); the README's Observability section tabulates them.
//!
//! # Determinism contract
//!
//! Observability writes only to its own output files.  Canonical outputs
//! (journals, canonical reports, results) are byte-identical with tracing
//! and metrics armed or disarmed — `tests/obs.rs` pins this.  Wall-time
//! metric *values* are non-canonical like wall times everywhere else in
//! the repo; event *counts* on deterministic code paths are reproducible
//! across worker counts.
//!
//! This crate is deliberately dependency-free (not even the vendored
//! shims): the observability layer must never perturb what it observes,
//! and it sits below every other workspace crate.

pub mod metrics;
pub mod trace;

pub use trace::Span;

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serialises tests that arm the process-global trace sink or metrics
/// registry: [`trace::with_trace`], [`metrics::with_metrics`] and
/// [`test_lock`] all queue on this one gate.
static TEST_GATE: Mutex<()> = Mutex::new(());

pub(crate) fn test_gate() -> MutexGuard<'static, ()> {
    TEST_GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Acquires the process-global observability test gate directly — for
/// tests that need to sequence *both* an unarmed reference run and armed
/// runs under one critical section (byte-neutrality comparisons).  While
/// the guard is held, call [`trace::arm`] / [`metrics::arm`] /
/// [`trace::disarm`] / [`metrics::disarm`] manually; do **not** call
/// [`trace::with_trace`] or [`metrics::with_metrics`], which would
/// deadlock on the same (non-reentrant) gate.
pub fn test_lock() -> MutexGuard<'static, ()> {
    test_gate()
}
